"""NetworkFaultProxy behavior, one fault action at a time: a sink
server records exactly the bytes the proxy let through, so each
action's on-the-wire effect is asserted directly — and replayed, since
the fault plan is seeded."""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.chaos import FaultConfig, FaultProxyThread
from repro.errors import ConfigError
from repro.server.protocol import FrameDecoder, encode_frame


def _frames(count):
    return [encode_frame({"id": i, "verb": "ping", "args": {}})
            for i in range(count)]


class _Sink:
    """Accept one connection; record every byte until EOF."""

    def __init__(self):
        self._server = socket.create_server(("127.0.0.1", 0))
        self.address = self._server.getsockname()
        self.data = b""
        self.closed = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        try:
            conn, _ = self._server.accept()
        except OSError:
            return
        with conn:
            while True:
                chunk = conn.recv(65536)
                if not chunk:
                    break
                self.data += chunk
        self.closed.set()

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._server.close()


def _push(config, frames, chunk_gap_s=0.0):
    """Send ``frames`` through a proxy into a sink; return what the
    sink received and the proxy's counters."""
    with _Sink() as sink:
        with FaultProxyThread(*sink.address, config=config) as proxy:
            sock = socket.create_connection(proxy.proxy.address)
            for frame in frames:
                sock.sendall(frame)
                if chunk_gap_s:
                    time.sleep(chunk_gap_s)
            sock.close()
            if not sink.closed.wait(timeout=5.0):
                # a blackhole/truncate plan may keep the sink open
                # until the proxy itself tears down
                pass
        sink.closed.wait(timeout=5.0)
        return sink.data, proxy.proxy.stats()


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------

def test_fault_probabilities_validated():
    with pytest.raises(ConfigError):
        FaultConfig(drop_p=1.5)
    with pytest.raises(ConfigError):
        FaultConfig(corrupt_p=-0.1)
    with pytest.raises(ConfigError):
        FaultConfig(delay_s=(0.01, 0.001))
    assert FaultConfig(drop_p=0.25,
                       delay_p=0.5).total_fault_p() == pytest.approx(0.75)


# ----------------------------------------------------------------------
# One action at a time
# ----------------------------------------------------------------------

def test_clean_config_forwards_everything_intact():
    frames = _frames(5)
    data, stats = _push(FaultConfig(), frames)
    assert data == b"".join(frames)
    assert stats["forward"] == 5
    assert stats["connections"] == 1


def test_drop_swallows_frames():
    frames = _frames(4)
    data, stats = _push(FaultConfig(drop_p=1.0), frames)
    assert data == b""
    assert stats["drop"] == 4


def test_delay_forwards_late_but_intact():
    frames = _frames(3)
    data, stats = _push(
        FaultConfig(delay_p=1.0, delay_s=(0.001, 0.002)), frames)
    assert data == b"".join(frames)
    assert stats["delay"] == 3


def test_duplicate_doubles_each_frame():
    frames = _frames(3)
    data, stats = _push(FaultConfig(duplicate_p=1.0), frames)
    assert data == b"".join(frame + frame for frame in frames)
    assert stats["duplicate"] == 3
    # The duplicated stream still decodes: framing was preserved.
    assert len(FrameDecoder().feed(data)) == 6


def test_corrupt_mangles_the_body_not_the_framing():
    frames = _frames(1)
    data, stats = _push(FaultConfig(corrupt_p=1.0), frames)
    assert stats["corrupt"] == 1
    assert len(data) == len(frames[0])
    assert data[:4] == frames[0][:4]        # length prefix intact
    assert data != frames[0]                # body mangled


def test_truncate_cuts_mid_frame():
    frames = _frames(1)
    data, stats = _push(FaultConfig(truncate_p=1.0), frames)
    assert stats["truncate"] == 1
    assert 0 < len(data) < len(frames[0])   # a strict prefix
    decoder = FrameDecoder()
    assert decoder.feed(data) == []         # never a complete frame
    with pytest.raises(Exception):
        decoder.eof()                       # truncated, says the peer


def test_blackhole_opens_a_one_way_partition():
    frames = _frames(4)
    data, stats = _push(FaultConfig(blackhole_p=1.0), frames,
                        chunk_gap_s=0.01)
    assert data == b""
    assert stats["blackhole"] == 1          # the frame that tripped it
    assert stats["blackholed"] == 3         # everything after


# ----------------------------------------------------------------------
# Determinism
# ----------------------------------------------------------------------

def test_fault_plan_replays_for_a_fixed_seed():
    config = FaultConfig(seed=99, drop_p=0.4, duplicate_p=0.3)
    frames = _frames(20)
    first_data, first_stats = _push(config, frames)
    second_data, second_stats = _push(config, frames)
    assert first_data == second_data
    assert first_stats == second_stats
    # ...and a different seed draws a different plan.
    other_data, _ = _push(
        FaultConfig(seed=100, drop_p=0.4, duplicate_p=0.3), frames)
    assert other_data != first_data
