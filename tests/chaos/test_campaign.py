"""The chaos campaign end to end, kept small enough for tier-1: a
fault-free run must account for every transaction exactly, and a
faulted run with a nemesis crash cycle must hold every invariant the
oracle checks."""

from __future__ import annotations

import dataclasses

from repro.chaos import ChaosConfig, ChaosReport, FaultConfig, \
    run_chaos_campaign


def _small(**overrides) -> ChaosConfig:
    base = dict(clients=2, txns_per_client=6, keys=8, seed=1234,
                crash_cycles=0, crash_interval_s=0.2,
                recover_after_s=0.05, session_lease_s=2.0,
                max_wall_s=60.0)
    base.update(overrides)
    return ChaosConfig(**base)


def test_fault_free_campaign_accounts_exactly():
    """No faults, no crashes: every commit acks, nothing is ambiguous,
    and the final counter total equals the committed count."""
    report = run_chaos_campaign(
        _small(faults=FaultConfig()))
    assert report.ok, report.violations
    assert report.committed == 2 * 6
    assert report.ambiguous == 0
    assert report.final_total == report.committed
    assert report.keys_checked == 8
    assert report.crashes == 0


def test_faulted_campaign_with_nemesis_holds_invariants():
    report = run_chaos_campaign(_small(
        clients=2, txns_per_client=8, crash_cycles=1,
        faults=FaultConfig(seed=5, drop_p=0.03, delay_p=0.05,
                           delay_s=(0.0005, 0.002), truncate_p=0.01,
                           corrupt_p=0.01, duplicate_p=0.03)))
    assert report.ok, report.violations
    assert report.crashes == 1
    assert report.recoveries == 1
    assert report.committed > 0
    # Every transaction is accounted for: acked + ambiguous-at-most.
    low = report.committed + report.resolved_durable
    high = low + report.still_ambiguous
    assert low <= report.final_total <= high


def test_report_round_trips_and_flags_violations():
    report = ChaosReport(config={"seed": 1})
    assert report.ok
    report.violations.append("key 3: final value 9 outside [0, 2]")
    assert not report.ok
    as_dict = report.to_dict()
    assert as_dict["ok"] is False
    assert as_dict["violations"] == report.violations
    # dataclasses round-trip cleanly into the JSON report the CLI emits
    assert dataclasses.is_dataclass(report)
