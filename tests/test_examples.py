"""Smoke tests: the shipped examples must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "recovered in" in out
    assert "aborted as expected" in out


def test_recovery_comparison():
    out = run_example("recovery_comparison.py")
    assert "faster than InP" in out
    assert "NO" not in out  # every engine's state intact


@pytest.mark.slow
def test_engine_comparison():
    out = run_example("engine_comparison.py", "balanced", "low")
    assert "nvm-inp vs inp" in out


@pytest.mark.slow
def test_tpcc_order_entry():
    out = run_example("tpcc_order_entry.py")
    assert "invariants verified" in out


@pytest.mark.slow
def test_wear_analysis():
    out = run_example("wear_analysis.py")
    assert "lifetime extension" in out
