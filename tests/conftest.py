"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import (CacheConfig, EngineConfig, LatencyProfile,
                          PlatformConfig)
from repro.nvm.platform import Platform


@pytest.fixture
def platform() -> Platform:
    """A small deterministic platform with DRAM-latency NVM."""
    config = PlatformConfig(
        latency=LatencyProfile.dram(),
        cache=CacheConfig(capacity_bytes=256 * 1024),
        nvm_capacity_bytes=32 * 1024 * 1024,
        seed=1234,
    )
    return Platform(config)


@pytest.fixture
def engine_config() -> EngineConfig:
    """Engine tunables scaled down for fast tests."""
    return EngineConfig(
        group_commit_size=4,
        checkpoint_interval_txns=200,
        memtable_threshold_bytes=8 * 1024,
    )
