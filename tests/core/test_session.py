"""The Session lifecycle state machine (docs/server.md):

    open --begin()--> active-txn --commit()/abort()--> open
      |                                                  |
      +------------------close()<------------------------+

and the error taxonomy each transition raises when misused."""

from __future__ import annotations

import pytest

from repro import (Column, ColumnType, CrashedError, Database,
                   DatabaseClosedError, Schema, SessionClosedError,
                   SessionState, SessionStateError)

KV = Schema.build(
    "kv", [Column("k", ColumnType.INT),
           Column("v", ColumnType.STRING, capacity=32)],
    primary_key=["k"])


@pytest.fixture()
def db():
    database = Database("nvm-inp")
    database.create_table(KV)
    return database


# ----------------------------------------------------------------------
# The happy path walks the state machine
# ----------------------------------------------------------------------

def test_lifecycle_states(db):
    session = db.session("walker")
    assert session.state is SessionState.OPEN
    assert not session.in_transaction and not session.closed
    assert session.partition_id is None and session.context is None

    context = session.begin()
    assert session.state is SessionState.ACTIVE
    assert session.in_transaction
    assert session.partition_id == 0
    assert session.context is context

    txn_id = session.commit()
    assert txn_id == context.txn.txn_id
    assert session.state is SessionState.OPEN
    assert session.context is None
    assert session.txns_committed == 1

    session.begin()
    session.abort()
    assert session.state is SessionState.OPEN
    assert session.txns_aborted == 1

    session.close()
    assert session.state is SessionState.CLOSED
    assert session.closed


def test_session_ops_and_commit_visibility(db):
    with db.session() as session:
        session.begin()
        session.insert("kv", {"k": 1, "v": "one"})
        session.update("kv", 1, {"v": "uno"})
        assert session.get("kv", 1)["v"] == "uno"
        session.commit()

        session.begin()
        assert [row["v"] for _, row in session.scan("kv")] == ["uno"]
        session.delete("kv", 1)
        session.abort()

        session.begin()
        assert session.get("kv", 1)["v"] == "uno"   # delete rolled back
        session.commit()


def test_abort_rolls_back_effects(db):
    with db.session() as session:
        session.begin()
        session.insert("kv", {"k": 5, "v": "ghost"})
        session.abort()
    assert db.get("kv", 5) is None


# ----------------------------------------------------------------------
# Illegal transitions raise SessionStateError / SessionClosedError
# ----------------------------------------------------------------------

def test_wrong_state_raises(db):
    session = db.session()
    with pytest.raises(SessionStateError):
        session.commit()                # no active transaction
    with pytest.raises(SessionStateError):
        session.abort()
    with pytest.raises(SessionStateError):
        session.get("kv", 1)            # ops need an active txn
    session.begin()
    with pytest.raises(SessionStateError):
        session.begin()                 # nested begin
    session.abort()


def test_closed_session_raises(db):
    session = db.session()
    session.close()
    session.close()                     # idempotent
    for verb in (session.begin, session.commit, session.abort):
        with pytest.raises(SessionClosedError):
            verb()
    with pytest.raises(SessionClosedError):
        session.insert("kv", {"k": 1, "v": "x"})
    with pytest.raises(SessionClosedError):
        with session:
            pass


def test_close_aborts_active_transaction(db):
    session = db.session()
    session.begin()
    session.insert("kv", {"k": 7, "v": "dropped"})
    session.close()
    assert session.closed
    assert session.txns_aborted == 1
    assert db.get("kv", 7) is None


# ----------------------------------------------------------------------
# One-shot execute shares the path with Database.execute
# ----------------------------------------------------------------------

def test_execute_commits_on_return(db):
    def put(ctx, key, value):
        ctx.insert("kv", {"k": key, "v": value})
        return value

    with db.session() as session:
        assert session.execute(put, 3, "three") == "three"
        assert session.txns_committed == 1
    assert db.get("kv", 3)["v"] == "three"
    # Database.execute is the same path, one-shot.
    assert db.execute(put, 4, "four") == "four"
    assert db.get("kv", 4)["v"] == "four"


def test_execute_aborts_on_exception(db):
    def explode(ctx):
        ctx.insert("kv", {"k": 8, "v": "doomed"})
        raise ValueError("boom")

    with db.session() as session:
        with pytest.raises(ValueError):
            session.execute(explode)
        assert session.state is SessionState.OPEN   # reusable
        assert session.txns_aborted == 1
    assert db.get("kv", 8) is None


# ----------------------------------------------------------------------
# Database-level taxonomy: closed vs crashed
# ----------------------------------------------------------------------

def test_closed_database_raises_database_closed(db):
    session = db.session()
    db.close()
    with pytest.raises(DatabaseClosedError):
        session.begin()
    with pytest.raises(DatabaseClosedError):
        db.session()


def test_crashed_database_raises_crashed_error(db):
    session = db.session()
    db.crash()
    with pytest.raises(CrashedError):
        session.begin()
    db.recover()
    session.begin()                     # usable again after recovery
    session.abort()


def test_invalidate_drops_txn_without_engine_rollback(db):
    session = db.session()
    session.begin()
    assert session.invalidate() is True
    assert session.state is SessionState.OPEN
    assert session.txns_aborted == 1
    assert session.invalidate() is False    # idempotent when idle


def test_crash_mid_session_then_close_is_safe(db):
    session = db.session()
    session.begin()
    session.insert("kv", {"k": 9, "v": "in-flight"})
    db.crash()
    session.close()                     # must not touch the dead engine
    assert session.closed
    db.recover()
    assert db.get("kv", 9) is None      # uncommitted work gone


def test_session_ids_are_unique(db):
    ids = {db.session().session_id for _ in range(5)}
    assert len(ids) == 5
    assert db.session("named").name == "named"
