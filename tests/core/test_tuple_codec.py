"""Unit and property tests for tuple serialization."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.schema import Column, ColumnType, Schema
from repro.core.tuple_codec import (STATE_ALLOCATED, decode_fields,
                                    decode_inlined, decode_key,
                                    decode_slotted, encode_fields,
                                    encode_inlined, encode_key,
                                    encode_slotted, inlined_record_size,
                                    slot_state)


@pytest.fixture
def schema():
    return Schema.build("t", [
        Column("id", ColumnType.INT),
        Column("short", ColumnType.STRING, capacity=6),
        Column("long", ColumnType.STRING, capacity=64),
        Column("ratio", ColumnType.FLOAT),
    ], primary_key=["id"])


class FakeVarlenPool:
    def __init__(self):
        self.slots = {}
        self.next = 1000

    def write(self, data):
        addr = self.next
        self.next += 8
        self.slots[addr] = data
        return addr

    def read(self, addr):
        return self.slots[addr]


def test_slotted_roundtrip(schema):
    pool = FakeVarlenPool()
    values = {"id": 42, "short": "abc", "long": "z" * 50, "ratio": 2.5}
    slot, pointers = encode_slotted(schema, values, pool.write)
    assert len(slot) == schema.fixed_slot_size
    assert len(pointers) == 1  # only the long string spilled
    assert decode_slotted(schema, slot, pool.read) == values


def test_slotted_short_value_in_long_column_still_varlen(schema):
    # Layout is decided by the column, not the value, so decode works.
    pool = FakeVarlenPool()
    values = {"id": 1, "short": "a", "long": "b", "ratio": 0.0}
    slot, pointers = encode_slotted(schema, values, pool.write)
    assert len(pointers) == 1
    assert decode_slotted(schema, slot, pool.read)["long"] == "b"


def test_slot_state_byte(schema):
    pool = FakeVarlenPool()
    slot, __ = encode_slotted(
        schema, {"id": 1, "short": "", "long": "", "ratio": 1.0},
        pool.write, state=STATE_ALLOCATED)
    assert slot_state(slot) == STATE_ALLOCATED


def test_slotted_wrong_size_rejected(schema):
    from repro.errors import SchemaError
    with pytest.raises(SchemaError):
        decode_slotted(schema, b"\x00" * 10, lambda addr: b"")


def test_inlined_roundtrip(schema):
    values = {"id": -7, "short": "xy", "long": "hello " * 8,
              "ratio": -0.125}
    data = encode_inlined(schema, values)
    assert len(data) == inlined_record_size(schema)
    assert len(data) == schema.inlined_size
    assert decode_inlined(schema, data) == values


def test_inlined_unicode(schema):
    values = {"id": 1, "short": "é", "long": "ü" * 20, "ratio": 1.0}
    assert decode_inlined(schema, encode_inlined(schema, values)) == values


def test_fields_roundtrip(schema):
    changes = {"ratio": 3.5, "long": "patched"}
    data = encode_fields(schema, changes)
    assert decode_fields(schema, data) == changes


def test_fields_int(schema):
    assert decode_fields(schema, encode_fields(schema, {"id": 9})) \
        == {"id": 9}


def test_fields_empty(schema):
    assert decode_fields(schema, encode_fields(schema, {})) == {}


@pytest.mark.parametrize("key", [
    0, -1, 2 ** 62, "hello", "", (1, 2), ("a", 3), ((1, "x"), 2),
])
def test_key_roundtrip(key):
    data = encode_key(key)
    decoded, consumed = decode_key(data)
    assert decoded == key
    assert consumed == len(data)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-(2 ** 63), max_value=2 ** 63 - 1),
       st.text(max_size=6), st.text(max_size=20),
       st.floats(allow_nan=False, allow_infinity=False))
def test_property_slotted_roundtrip(id_value, short, long, ratio):
    from hypothesis import assume
    assume(len(short.encode("utf-8")) <= 6)
    assume(len(long.encode("utf-8")) <= 64)
    schema = Schema.build("t", [
        Column("id", ColumnType.INT),
        Column("short", ColumnType.STRING, capacity=6),
        Column("long", ColumnType.STRING, capacity=64),
        Column("ratio", ColumnType.FLOAT),
    ], primary_key=["id"])
    pool = FakeVarlenPool()
    values = {"id": id_value, "short": short, "long": long,
              "ratio": ratio}
    slot, __ = encode_slotted(schema, values, pool.write)
    assert decode_slotted(schema, slot, pool.read) == values
    assert decode_inlined(schema, encode_inlined(schema, values)) \
        == values
