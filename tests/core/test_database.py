"""Unit tests for the Database facade and transaction execution."""

import pytest

from repro import (Column, ColumnType, Database, EngineConfig, Schema,
                   TransactionAborted)
from repro.errors import ConfigError, CrashedError, DuplicateKeyError


def make_db(engine="nvm-inp", partitions=1):
    return Database(engine=engine, partitions=partitions,
                    engine_config=EngineConfig(group_commit_size=2),
                    seed=11)


@pytest.fixture
def db():
    database = make_db()
    database.create_table(Schema.build(
        "accounts",
        [Column("id", ColumnType.INT),
         Column("owner", ColumnType.STRING, capacity=20),
         Column("balance", ColumnType.FLOAT)],
        primary_key=["id"],
        secondary_indexes={"by_owner": ["owner"]}))
    return database


def test_insert_and_get(db):
    db.insert("accounts", {"id": 1, "owner": "ada", "balance": 10.0})
    row = db.get("accounts", 1)
    assert row == {"id": 1, "owner": "ada", "balance": 10.0}


def test_get_missing_returns_none(db):
    assert db.get("accounts", 404) is None


def test_update(db):
    db.insert("accounts", {"id": 1, "owner": "ada", "balance": 10.0})
    db.update("accounts", 1, {"balance": 99.5})
    assert db.get("accounts", 1)["balance"] == 99.5


def test_delete(db):
    db.insert("accounts", {"id": 1, "owner": "ada", "balance": 10.0})
    db.delete("accounts", 1)
    assert db.get("accounts", 1) is None


def test_duplicate_insert_raises(db):
    db.insert("accounts", {"id": 1, "owner": "a", "balance": 0.0})
    with pytest.raises(DuplicateKeyError):
        db.insert("accounts", {"id": 1, "owner": "b", "balance": 0.0})


def test_multi_op_transaction(db):
    def transfer(ctx, src, dst, amount):
        a = ctx.get("accounts", src)
        b = ctx.get("accounts", dst)
        ctx.update("accounts", src, {"balance": a["balance"] - amount})
        ctx.update("accounts", dst, {"balance": b["balance"] + amount})

    db.insert("accounts", {"id": 1, "owner": "a", "balance": 100.0})
    db.insert("accounts", {"id": 2, "owner": "b", "balance": 0.0})
    db.execute(transfer, 1, 2, 30.0)
    assert db.get("accounts", 1)["balance"] == 70.0
    assert db.get("accounts", 2)["balance"] == 30.0


def test_abort_rolls_back_everything(db):
    db.insert("accounts", {"id": 1, "owner": "a", "balance": 100.0})

    def doomed(ctx):
        ctx.update("accounts", 1, {"balance": 0.0})
        ctx.insert("accounts", {"id": 2, "owner": "b", "balance": 5.0})
        ctx.abort("changed my mind")

    with pytest.raises(TransactionAborted):
        db.execute(doomed)
    assert db.get("accounts", 1)["balance"] == 100.0
    assert db.get("accounts", 2) is None
    assert db.aborted_txns == 1


def test_exception_in_procedure_aborts(db):
    db.insert("accounts", {"id": 1, "owner": "a", "balance": 1.0})

    def broken(ctx):
        ctx.update("accounts", 1, {"balance": 2.0})
        raise ValueError("oops")

    with pytest.raises(ValueError):
        db.execute(broken)
    assert db.get("accounts", 1)["balance"] == 1.0


def test_secondary_lookup(db):
    for i, owner in enumerate(["ada", "bob", "ada"]):
        db.insert("accounts",
                  {"id": i, "owner": owner, "balance": 0.0})
    keys = db.execute(
        lambda ctx: ctx.get_secondary("accounts", "by_owner", "ada"))
    assert keys == [0, 2]


def test_scan(db):
    for i in range(10):
        db.insert("accounts",
                  {"id": i, "owner": f"o{i}", "balance": float(i)})
    rows = db.scan("accounts", lo=3, hi=7)
    assert [key for key, __ in rows] == [3, 4, 5, 6]


def test_crash_blocks_operations_until_recover(db):
    db.insert("accounts", {"id": 1, "owner": "a", "balance": 1.0})
    db.flush()
    db.crash()
    with pytest.raises(CrashedError):
        db.get("accounts", 1)
    db.recover()
    assert db.get("accounts", 1)["balance"] == 1.0


def test_multiple_partitions_route_consistently():
    db = make_db(partitions=4)
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("v", ColumnType.INT)], primary_key=["k"]))
    for key in range(40):
        db.insert("t", {"k": key, "v": key})
    for key in range(40):
        assert db.get("t", key)["v"] == key
    assert db.committed_txns == 80


def test_zero_partitions_rejected():
    with pytest.raises(ConfigError):
        Database(partitions=0)


def test_unknown_engine_rejected():
    with pytest.raises(ConfigError):
        Database(engine="fancy-db")


def test_now_ns_advances(db):
    before = db.now_ns
    db.insert("accounts", {"id": 1, "owner": "a", "balance": 0.0})
    assert db.now_ns > before


def test_nvm_counters_accumulate(db):
    db.insert("accounts", {"id": 1, "owner": "a", "balance": 0.0})
    counters = db.nvm_counters()
    assert counters["loads"] > 0
    assert counters["stores"] > 0


def test_storage_breakdown_components(db):
    db.insert("accounts", {"id": 1, "owner": "a", "balance": 0.0})
    breakdown = db.storage_breakdown()
    assert set(breakdown) == {"table", "index", "log", "checkpoint",
                              "other"}
    assert breakdown["table"] > 0


def test_time_breakdown_fractions(db):
    for i in range(20):
        db.insert("accounts", {"id": i, "owner": "a", "balance": 0.0})
    breakdown = db.time_breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["storage"] > 0
