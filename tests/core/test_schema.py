"""Unit tests for schemas and columns."""

import pytest

from repro.core.schema import Column, ColumnType, Schema
from repro.errors import SchemaError


def make_schema(**kwargs):
    defaults = dict(
        table="t",
        columns=[Column("id", ColumnType.INT),
                 Column("name", ColumnType.STRING, capacity=40),
                 Column("score", ColumnType.FLOAT)],
        primary_key=["id"],
    )
    defaults.update(kwargs)
    return Schema.build(**defaults)


def test_basic_schema():
    schema = make_schema()
    assert schema.column_names == ["id", "name", "score"]
    assert schema.column("name").capacity == 40


def test_fixed_slot_size():
    schema = make_schema()
    # 8-byte header + 8 bytes per field
    assert schema.fixed_slot_size == 8 + 3 * 8


def test_inlined_size_accounts_string_capacity():
    schema = make_schema()
    assert schema.inlined_size == 8 + 8 + (4 + 40) + 8


def test_duplicate_columns_rejected():
    with pytest.raises(SchemaError):
        make_schema(columns=[Column("x", ColumnType.INT),
                             Column("x", ColumnType.INT)],
                    primary_key=["x"])


def test_unknown_primary_key_rejected():
    with pytest.raises(SchemaError):
        make_schema(primary_key=["nope"])


def test_empty_primary_key_rejected():
    with pytest.raises(SchemaError):
        make_schema(primary_key=[])


def test_secondary_index_unknown_column_rejected():
    with pytest.raises(SchemaError):
        make_schema(secondary_indexes={"bad": ["ghost"]})


def test_key_of_single_and_composite():
    single = make_schema()
    assert single.key_of({"id": 5, "name": "a", "score": 1.0}) == 5
    composite = make_schema(primary_key=["id", "name"])
    assert composite.key_of({"id": 5, "name": "a", "score": 1.0}) \
        == (5, "a")


def test_validate_accepts_good_tuple():
    make_schema().validate({"id": 1, "name": "bob", "score": 2.5})


def test_validate_rejects_missing_column():
    with pytest.raises(SchemaError):
        make_schema().validate({"id": 1, "name": "bob"})


def test_validate_rejects_extra_column():
    with pytest.raises(SchemaError):
        make_schema().validate(
            {"id": 1, "name": "b", "score": 1.0, "zzz": 0})


def test_validate_rejects_wrong_types():
    schema = make_schema()
    with pytest.raises(SchemaError):
        schema.validate({"id": "one", "name": "b", "score": 1.0})
    with pytest.raises(SchemaError):
        schema.validate({"id": 1, "name": 7, "score": 1.0})
    with pytest.raises(SchemaError):
        schema.validate({"id": True, "name": "b", "score": 1.0})


def test_validate_rejects_oversized_string():
    with pytest.raises(SchemaError):
        make_schema().validate(
            {"id": 1, "name": "x" * 41, "score": 1.0})


def test_validate_rejects_int_overflow():
    with pytest.raises(SchemaError):
        make_schema().validate(
            {"id": 2 ** 63, "name": "b", "score": 1.0})


def test_validate_partial_rejects_pk_change():
    with pytest.raises(SchemaError):
        make_schema().validate_partial({"id": 9})


def test_validate_partial_rejects_empty():
    with pytest.raises(SchemaError):
        make_schema().validate_partial({})


def test_column_capacity_on_non_string_rejected():
    with pytest.raises(SchemaError):
        Column("n", ColumnType.INT, capacity=16)


def test_inline_detection():
    assert Column("a", ColumnType.INT).inline
    assert Column("b", ColumnType.STRING, capacity=8).inline
    assert not Column("c", ColumnType.STRING, capacity=9).inline
