"""Tests for Database lifecycle: keyword-only options, close(), and
context-manager support."""

import pytest

from repro import Column, ColumnType, Database, Schema
from repro.errors import DatabaseClosedError

ACCOUNTS = Schema.build(
    "accounts",
    [Column("id", ColumnType.INT),
     Column("balance", ColumnType.FLOAT)],
    primary_key=["id"])


def test_options_are_keyword_only():
    with pytest.raises(TypeError):
        Database("inp", 2)


def test_context_manager_closes_on_exit():
    with Database(engine="nvm-inp") as db:
        db.create_table(ACCOUNTS)
        db.insert("accounts", {"id": 1, "balance": 10.0})
        assert db.get("accounts", 1)["balance"] == 10.0
        assert not db.closed
    assert db.closed
    with pytest.raises(DatabaseClosedError):
        db.get("accounts", 1)


def test_close_is_idempotent():
    db = Database(engine="inp")
    db.close()
    db.close()
    assert db.closed


def test_entering_a_closed_database_fails():
    db = Database(engine="inp")
    db.close()
    with pytest.raises(DatabaseClosedError):
        with db:
            pass


def test_crash_on_closed_database_fails():
    db = Database(engine="inp")
    db.close()
    with pytest.raises(DatabaseClosedError):
        db.crash()


def test_recover_on_closed_database_fails():
    db = Database(engine="inp")
    db.crash()
    db.close()
    with pytest.raises(DatabaseClosedError):
        db.recover()


def test_recover_without_crash_is_a_noop():
    db = Database(engine="inp")
    db.create_table(ACCOUNTS)
    db.insert("accounts", {"id": 1, "balance": 10.0})
    assert db.recover() == 0.0
    assert db.get("accounts", 1)["balance"] == 10.0
