"""Tests for the compute-cost charges of the execution layer."""

from repro import Column, ColumnType, Database, EngineConfig, Schema


def make_db(**config):
    db = Database(engine="nvm-inp", engine_config=EngineConfig(**config),
                  seed=9)
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("v", ColumnType.INT)], primary_key=["k"]))
    return db


def test_ops_charge_cpu_time():
    cheap = make_db(op_cpu_ns=0.0, txn_cpu_ns=0.0)
    costly = make_db(op_cpu_ns=5000.0, txn_cpu_ns=0.0)
    for db in (cheap, costly):
        db.insert("t", {"k": 1, "v": 1})
    start_cheap, start_costly = cheap.now_ns, costly.now_ns
    cheap.get("t", 1)
    costly.get("t", 1)
    cheap_cost = cheap.now_ns - start_cheap
    costly_cost = costly.now_ns - start_costly
    assert costly_cost - cheap_cost >= 5000.0


def test_txn_overhead_charged_per_transaction():
    db = make_db(op_cpu_ns=0.0, txn_cpu_ns=1000.0)
    start = db.now_ns

    def procedure(ctx):
        pass  # empty transaction

    db.execute(procedure)
    assert db.now_ns - start >= 1000.0


def test_cpu_costs_make_latency_scaling_sublinear():
    """The compute-bound share does not scale with NVM latency, which
    is what bounds the Fig. 7 throughput drop."""
    from repro.config import LatencyProfile
    from repro.harness.runner import run
    from repro.harness.spec import ExperimentSpec

    drops = {}
    for op_cpu in (0.0, 400.0):
        config = EngineConfig(op_cpu_ns=op_cpu, txn_cpu_ns=op_cpu)
        fast = run(ExperimentSpec.ycsb(
            "inp", "read-only", "low", latency=LatencyProfile.dram(),
            num_tuples=300, num_txns=300, engine_config=config,
            cache_bytes=32 * 1024))
        slow = run(ExperimentSpec.ycsb(
            "inp", "read-only", "low",
            latency=LatencyProfile.high_nvm(),
            num_tuples=300, num_txns=300, engine_config=config,
            cache_bytes=32 * 1024))
        drops[op_cpu] = fast.throughput / slow.throughput
    assert drops[400.0] < drops[0.0]
