"""Edge cases across the core: empty tables, unicode, boundary sizes."""

import pytest

from repro import (Column, ColumnType, Database, EngineConfig, Schema)
from repro.core.tuple_codec import decode_key, encode_key
from repro.engines.base import ENGINE_NAMES
from repro.errors import SchemaError


@pytest.fixture(params=list(ENGINE_NAMES.ALL))
def db(request):
    database = Database(engine=request.param, seed=3,
                        engine_config=EngineConfig(
                            group_commit_size=2,
                            nvm_cow_node_size=512))
    database.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("s", ColumnType.STRING, capacity=64),
              Column("f", ColumnType.FLOAT)],
        primary_key=["k"]))
    return database


def test_empty_table_scan(db):
    assert db.scan("t") == []


def test_empty_table_crash_recovery(db):
    db.flush()
    db.crash()
    db.recover()
    assert db.scan("t") == []
    db.insert("t", {"k": 1, "s": "post", "f": 1.0})
    assert db.get("t", 1)["s"] == "post"


def test_unicode_round_trip(db):
    values = {"k": 1, "s": "héllo wörld — ünïcode ✓", "f": 0.5}
    db.insert("t", values)
    db.flush()
    db.crash()
    db.recover()
    assert db.get("t", 1) == values


def test_empty_string_field(db):
    db.insert("t", {"k": 1, "s": "", "f": 0.0})
    assert db.get("t", 1)["s"] == ""


def test_string_at_exact_capacity(db):
    value = "x" * 64
    db.insert("t", {"k": 1, "s": value, "f": 0.0})
    assert db.get("t", 1)["s"] == value


def test_extreme_numeric_values(db):
    db.insert("t", {"k": 2 ** 63 - 1, "s": "max", "f": 1e308})
    db.insert("t", {"k": -(2 ** 63), "s": "min", "f": -1e-308})
    assert db.get("t", 2 ** 63 - 1)["f"] == 1e308
    assert db.get("t", -(2 ** 63))["s"] == "min"


def test_negative_keys_sort_correctly(db):
    for key in (5, -3, 0, -10, 7):
        db.insert("t", {"k": key, "s": "v", "f": 0.0})
    assert [key for key, __ in db.scan("t")] == [-10, -3, 0, 5, 7]


def test_update_to_same_value(db):
    db.insert("t", {"k": 1, "s": "same", "f": 1.0})
    db.update("t", 1, {"s": "same"})
    assert db.get("t", 1)["s"] == "same"


def test_bad_key_encoding_rejected():
    with pytest.raises(SchemaError):
        encode_key(1.5)
    with pytest.raises(SchemaError):
        encode_key(True)
    with pytest.raises(SchemaError):
        decode_key(b"z" + b"\x00" * 8)


def test_many_small_transactions_then_recover(db):
    for i in range(150):
        db.insert("t", {"k": i, "s": f"s{i}", "f": float(i)})
    db.flush()
    db.crash()
    db.recover()
    assert len(db.scan("t")) == 150
