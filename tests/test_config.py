"""Unit tests for configuration objects."""

import pytest

from repro.config import (CacheConfig, EngineConfig, FilesystemConfig,
                          LatencyProfile, PlatformConfig)
from repro.errors import ConfigError


def test_latency_profiles():
    dram = LatencyProfile.dram()
    low = LatencyProfile.low_nvm()
    high = LatencyProfile.high_nvm()
    assert dram.read_latency_ns == 160
    assert low.read_latency_ns == 2 * dram.read_latency_ns
    assert high.read_latency_ns == 8 * dram.read_latency_ns


def test_latency_by_name():
    assert LatencyProfile.by_name("low-nvm").name == "low-nvm"
    with pytest.raises(ConfigError):
        LatencyProfile.by_name("warp-speed")


def test_latency_scaled():
    scaled = LatencyProfile.dram().scaled(4)
    assert scaled.read_latency_ns == 640
    assert "x4" in scaled.name


def test_invalid_latency_rejected():
    with pytest.raises(ConfigError):
        LatencyProfile("bad", read_latency_ns=0, write_latency_ns=10)
    with pytest.raises(ConfigError):
        LatencyProfile("bad", read_latency_ns=10, write_latency_ns=10,
                       bandwidth_bytes_per_ns=0)


def test_cache_config_validation():
    assert CacheConfig().capacity_lines > 0
    with pytest.raises(ConfigError):
        CacheConfig(capacity_bytes=32, line_size=64)
    with pytest.raises(ConfigError):
        CacheConfig(crash_eviction_probability=2.0)


def test_filesystem_config_validation():
    assert FilesystemConfig().copies_per_write == 1
    with pytest.raises(ConfigError):
        FilesystemConfig(copies_per_write=0)


def test_platform_config_with_latency():
    config = PlatformConfig().with_latency(LatencyProfile.high_nvm())
    assert config.latency.name == "high-nvm"


def test_engine_config_validation():
    with pytest.raises(ConfigError):
        EngineConfig(btree_node_size=16)
    with pytest.raises(ConfigError):
        EngineConfig(cow_btree_node_size=64)
    with pytest.raises(ConfigError):
        EngineConfig(group_commit_size=0)
    with pytest.raises(ConfigError):
        EngineConfig(lsm_growth_factor=1)


def test_engine_config_defaults_match_paper():
    config = EngineConfig()
    assert config.btree_node_size == 512       # STX B+tree (Section 5)
    assert config.cow_btree_node_size == 4096  # CoW B+tree (Section 5)
