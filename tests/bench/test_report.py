"""Tests for BENCH payload schema, baseline discovery, and gating."""

import copy
import json
import os

import pytest

from repro.bench.harness import BenchResult
from repro.bench.report import (DEFAULT_THRESHOLD, SCHEMA_NAME,
                                compare_payloads, find_baseline,
                                load_payload, make_payload,
                                validate_payload, write_payload)


def _result(name="macro/ycsb_balanced/inp", wall=0.5, sim=1_000.0,
            ops=1000, counters=None, extra=None):
    return BenchResult(
        name=name, kind="macro", ops=ops, wall_s=wall, sim_time_ns=sim,
        peak_rss_kb=1024, counters=dict(counters or {"nvm.loads": 7}),
        extra=dict(extra or {"seed": 31, "load_wall_s": 0.1}))


def _payload(**kwargs):
    return make_payload([_result(**kwargs)], quick=True)


def test_make_payload_is_schema_valid():
    payload = make_payload([_result()], quick=True)
    assert payload["schema"] == SCHEMA_NAME
    assert validate_payload(payload) == []


def test_validate_rejects_missing_keys_and_non_finite():
    payload = make_payload([_result()], quick=True)
    del payload["results"][0]["wall_s"]
    assert any("wall_s" in p for p in validate_payload(payload))
    bad = make_payload([_result()], quick=True)
    bad["results"][0]["sim_time_ns"] = float("nan")
    assert any("sim_time_ns" in p for p in validate_payload(bad))
    assert validate_payload([]) == ["payload is not a JSON object"]


def test_write_and_load_roundtrip(tmp_path):
    payload = make_payload([_result()], quick=True)
    path = write_payload(payload, str(tmp_path))
    assert os.path.basename(path).startswith("BENCH_")
    assert load_payload(path)["results"] == payload["results"]


def test_load_payload_raises_on_invalid(tmp_path):
    path = tmp_path / "BENCH_bad.json"
    path.write_text(json.dumps({"schema": "nope"}))
    with pytest.raises(ValueError):
        load_payload(str(path))


def test_find_baseline_skips_committed_baseline_and_exclude(tmp_path):
    (tmp_path / "BENCH_baseline.json").write_text("{}")
    assert find_baseline(str(tmp_path)) is None
    (tmp_path / "BENCH_20260101T000000Z.json").write_text("{}")
    (tmp_path / "BENCH_20260201T000000Z.json").write_text("{}")
    newest = str(tmp_path / "BENCH_20260201T000000Z.json")
    assert find_baseline(str(tmp_path)) == newest
    # The run being compared must not be its own baseline.
    assert find_baseline(str(tmp_path), exclude=newest) == \
        str(tmp_path / "BENCH_20260101T000000Z.json")


def test_compare_flags_regression_beyond_threshold():
    old = _payload(wall=0.5)
    slower = _payload(wall=0.5 / (1.0 - DEFAULT_THRESHOLD) * 1.01)
    findings = compare_payloads(slower, old)
    assert [f.kind for f in findings] == ["regression"]
    barely = _payload(wall=0.5 * 1.1)     # 10% slower: under threshold
    assert [f.kind for f in compare_payloads(barely, old)] == ["ok"]


def test_compare_flags_sim_divergence_on_fingerprint_change():
    old = _payload(sim=1_000.0)
    drifted = _payload(sim=1_001.0)
    assert [f.kind for f in compare_payloads(drifted, old)] == \
        ["sim-divergence"]
    recounted = _payload(counters={"nvm.loads": 8})
    assert [f.kind for f in compare_payloads(recounted, old)] == \
        ["sim-divergence"]


def test_compare_ignores_wall_time_in_configuration():
    """``load_wall_s`` is a measurement, not configuration: two runs
    that differ only there must still be fingerprint-compared."""
    old = _payload(extra={"seed": 31, "load_wall_s": 0.10})
    new = _payload(extra={"seed": 31, "load_wall_s": 0.25}, sim=999.0)
    assert [f.kind for f in compare_payloads(new, old)] == \
        ["sim-divergence"]


def test_compare_skips_fingerprint_on_config_change():
    old = _payload(extra={"seed": 31, "load_wall_s": 0.1})
    rescaled = _payload(extra={"seed": 32, "load_wall_s": 0.1},
                        sim=999.0)
    # Different seed -> different workload: sim change is expected and
    # only the wall-clock comparison applies.
    assert [f.kind for f in compare_payloads(rescaled, old)] == ["ok"]


def test_compare_ignores_benches_missing_from_baseline():
    old = make_payload([_result(name="a")], quick=True)
    new = make_payload([_result(name="a"), _result(name="b")],
                       quick=True)
    findings = compare_payloads(new, old)
    assert [f.name for f in findings] == ["a"]


def test_finding_failed_property():
    old = _payload()
    ok = compare_payloads(copy.deepcopy(old), old)[0]
    assert not ok.failed
    bad = compare_payloads(_payload(sim=2.0), old)[0]
    assert bad.failed
