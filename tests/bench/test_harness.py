"""Smoke tests for the wall-clock bench harness.

These keep the benches runnable and deterministic without asserting
anything about wall time itself (a loaded CI host is not a benchmark
machine): simulated fingerprints must be reproducible run to run.
"""

from repro.bench.harness import (run_bench, run_macro_benches,
                                 run_micro_benches)
from repro.bench.report import make_payload, validate_payload


def test_micro_benches_emit_fingerprints():
    results = run_micro_benches(quick=True, repeats=1,
                                only="micro/load_single_line")
    assert len(results) == 1
    result = results[0]
    assert result.kind == "micro"
    assert result.wall_s > 0
    assert result.sim_time_ns > 0
    assert result.counters.get("nvm.loads", 0) > 0


def test_micro_fingerprint_is_deterministic_across_repeats():
    one = run_micro_benches(quick=True, repeats=1,
                            only="micro/mixed_store_load_sync")[0]
    two = run_micro_benches(quick=True, repeats=2,
                            only="micro/mixed_store_load_sync")[0]
    assert one.sim_time_ns == two.sim_time_ns
    assert one.counters == two.counters


def test_macro_bench_runs_one_engine():
    results = run_macro_benches(quick=True, engines=["inp"],
                                only="ycsb", repeats=1)
    assert [r.name for r in results] == ["macro/ycsb_balanced/inp"]
    result = results[0]
    assert result.ops == 1000
    assert result.sim_time_ns > 0
    assert result.counters.get("nvm.loads", 0) > 0
    assert "load_wall_s" in result.extra


def test_macro_fingerprint_is_deterministic():
    first = run_macro_benches(quick=True, engines=["inp"],
                              only="ycsb", repeats=1)[0]
    again = run_macro_benches(quick=True, engines=["inp"],
                              only="ycsb", repeats=2)[0]
    assert first.sim_time_ns == again.sim_time_ns
    assert first.counters == again.counters


def test_run_bench_filters_and_validates():
    results = run_bench(quick=True, engines=["inp"],
                        only="micro/store_single_line", repeats=1)
    assert [r.name for r in results] == ["micro/store_single_line"]
    payload = make_payload(results, quick=True)
    assert validate_payload(payload) == []
