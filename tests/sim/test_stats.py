"""Unit tests for the statistics collector."""

import pytest

from repro.sim.clock import SimClock
from repro.sim.stats import Category, StatsCollector


@pytest.fixture
def stats_and_clock():
    clock = SimClock()
    return StatsCollector(clock), clock


def test_counters_start_at_zero(stats_and_clock):
    stats, __ = stats_and_clock
    assert stats.counter("nvm.loads") == 0


def test_bump_accumulates(stats_and_clock):
    stats, __ = stats_and_clock
    stats.bump("x")
    stats.bump("x", 4)
    assert stats.counter("x") == 5


def test_time_defaults_to_other(stats_and_clock):
    stats, clock = stats_and_clock
    clock.advance(100)
    assert stats.category_ns(Category.OTHER) == pytest.approx(100)


def test_category_stack_attributes_innermost(stats_and_clock):
    stats, clock = stats_and_clock
    with stats.category(Category.STORAGE):
        clock.advance(10)
        with stats.category(Category.INDEX):
            clock.advance(5)
        clock.advance(1)
    assert stats.category_ns(Category.STORAGE) == pytest.approx(11)
    assert stats.category_ns(Category.INDEX) == pytest.approx(5)


def test_breakdown_sums_to_one(stats_and_clock):
    stats, clock = stats_and_clock
    with stats.category(Category.RECOVERY):
        clock.advance(30)
    clock.advance(70)
    breakdown = stats.category_breakdown()
    assert sum(breakdown.values()) == pytest.approx(1.0)
    assert breakdown["recovery"] == pytest.approx(0.3)


def test_breakdown_empty_is_all_zero(stats_and_clock):
    stats, __ = stats_and_clock
    assert all(v == 0.0 for v in stats.category_breakdown().values())


def test_snapshot_subtraction(stats_and_clock):
    stats, clock = stats_and_clock
    stats.bump("a", 3)
    clock.advance(10)
    before = stats.snapshot()
    stats.bump("a", 2)
    stats.bump("b")
    clock.advance(5)
    delta = stats.snapshot() - before
    assert delta.counter("a") == 2
    assert delta.counter("b") == 1
    assert delta.elapsed_ns == pytest.approx(5)


def test_deep_category_nesting_unwinds_correctly(stats_and_clock):
    stats, clock = stats_and_clock
    with stats.category(Category.STORAGE):
        with stats.category(Category.RECOVERY):
            with stats.category(Category.STORAGE):
                clock.advance(2)
            clock.advance(3)
        clock.advance(4)
    clock.advance(5)
    assert stats.category_ns(Category.STORAGE) == pytest.approx(6)
    assert stats.category_ns(Category.RECOVERY) == pytest.approx(3)
    assert stats.category_ns(Category.OTHER) == pytest.approx(5)


def test_category_stack_unwinds_on_exception(stats_and_clock):
    stats, clock = stats_and_clock
    with pytest.raises(RuntimeError):
        with stats.category(Category.INDEX):
            raise RuntimeError("boom")
    clock.advance(7)
    assert stats.category_ns(Category.INDEX) == pytest.approx(0)
    assert stats.category_ns(Category.OTHER) == pytest.approx(7)


def test_snapshot_subtraction_includes_earlier_only_keys(
        stats_and_clock):
    stats, clock = stats_and_clock
    stats.bump("a", 3)
    clock.advance(10)
    before = stats.snapshot()
    stats.reset()  # "a" vanishes from later snapshots
    stats.bump("b", 2)
    delta = stats.snapshot() - before
    # Keys only present in the earlier snapshot must still appear.
    assert delta.counter("a") == -3
    assert delta.counter("b") == 2
    assert set(delta.counters) == {"a", "b"}


def test_snapshot_subtraction_category_union(stats_and_clock):
    stats, clock = stats_and_clock
    with stats.category(Category.STORAGE):
        clock.advance(10)
    before = stats.snapshot()
    del before.category_ns[Category.RECOVERY]  # simulate missing key
    with stats.category(Category.RECOVERY):
        clock.advance(4)
    delta = stats.snapshot() - before
    assert delta.category_ns[Category.RECOVERY] == pytest.approx(4)
    assert delta.category_ns[Category.STORAGE] == pytest.approx(0)


def test_snapshot_subtraction_zero_elapsed(stats_and_clock):
    stats, __ = stats_and_clock
    before = stats.snapshot()
    delta = stats.snapshot() - before
    assert delta.elapsed_ns == 0
    assert all(value == 0 for value in delta.counters.values())


def test_reset_clears_counters_and_time(stats_and_clock):
    stats, clock = stats_and_clock
    stats.bump("a")
    clock.advance(10)
    stats.reset()
    assert stats.counter("a") == 0
    assert stats.category_ns(Category.OTHER) == 0.0
