"""Unit tests for the simulated clock."""

import pytest

from repro.sim.clock import SimClock


def test_clock_starts_at_zero():
    clock = SimClock()
    assert clock.now_ns == 0.0
    assert clock.now_seconds == 0.0


def test_advance_accumulates():
    clock = SimClock()
    clock.advance(100)
    clock.advance(50.5)
    assert clock.now_ns == pytest.approx(150.5)


def test_advance_zero_is_noop():
    clock = SimClock()
    calls = []
    clock.subscribe(calls.append)
    clock.advance(0)
    assert clock.now_ns == 0.0
    assert calls == []


def test_negative_advance_rejected():
    clock = SimClock()
    with pytest.raises(ValueError):
        clock.advance(-1)


def test_listeners_see_every_charge():
    clock = SimClock()
    seen = []
    clock.subscribe(seen.append)
    clock.advance(10)
    clock.advance(20)
    assert seen == [10, 20]


def test_unsubscribe_stops_notifications():
    clock = SimClock()
    seen = []
    clock.subscribe(seen.append)
    clock.advance(5)
    clock.unsubscribe(seen.append)
    clock.advance(5)
    assert seen == [5]


def test_elapsed_since():
    clock = SimClock()
    clock.advance(100)
    mark = clock.now_ns
    clock.advance(42)
    assert clock.elapsed_since(mark) == pytest.approx(42)


def test_now_seconds_conversion():
    clock = SimClock()
    clock.advance(2.5e9)
    assert clock.now_seconds == pytest.approx(2.5)


def test_reset_keeps_listeners():
    clock = SimClock()
    seen = []
    clock.subscribe(seen.append)
    clock.advance(10)
    clock.reset()
    assert clock.now_ns == 0.0
    clock.advance(7)
    assert seen == [10, 7]
