"""Unit tests for deterministic RNG derivation."""

from repro.sim.rng import derive_rng


def test_same_seed_same_stream():
    a = derive_rng(42, "workload")
    b = derive_rng(42, "workload")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_labels_differ():
    a = derive_rng(42, "workload")
    b = derive_rng(42, "crash")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = derive_rng(1, "x")
    b = derive_rng(2, "x")
    assert a.random() != b.random()


def test_multiple_labels_supported():
    rng = derive_rng(7, "a", "b", "c")
    value = rng.random()
    assert 0.0 <= value < 1.0
    assert derive_rng(7, "a", "b", "c").random() == value
