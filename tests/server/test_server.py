"""End-to-end tests of the network tier: a loopback ServerThread
driven through ReproClient. Covers session lifecycle over the wire,
error taxonomy propagation, concurrent-session isolation, admission
control, crash/recover mid-session, and the group-commit lost-commit
contract."""

from __future__ import annotations

import socket
import struct
import threading
import time

import pytest

from repro.core.schema import Column, ColumnType, Schema
from repro.client import ReproClient
from repro.errors import (CrashedError, DatabaseClosedError,
                          ProtocolError, ServerError, SessionStateError,
                          TupleNotFoundError)
from repro.server import (GroupCommitConfig, ProcedureRegistry,
                          ServerConfig, ServerThread)
from repro.server.protocol import PROTOCOL_VERSION, FrameDecoder

KV = Schema.build(
    "kv", [Column("k", ColumnType.INT),
           Column("v", ColumnType.STRING, capacity=64)],
    primary_key=["k"])

#: Fast timer backstop so single-session commits return promptly.
_GC = GroupCommitConfig(batch_size=8, max_hold_ns=1e18,
                        max_hold_wall_s=0.005)


def _registry() -> ProcedureRegistry:
    registry = ProcedureRegistry()

    @registry.procedure("put")
    def put(ctx, key, value):
        ctx.insert("kv", {"k": key, "v": value})
        return key

    @registry.procedure("bump")
    def bump(ctx, key):
        row = ctx.get("kv", key)
        ctx.update("kv", key, {"v": row["v"] + "!"})
        return ctx.get("kv", key)["v"]

    @registry.procedure("explode")
    def explode(ctx, key):
        ctx.insert("kv", {"k": key, "v": "doomed"})
        raise ValueError("procedure bug")

    return registry


@pytest.fixture()
def server():
    config = ServerConfig(engine="nvm-inp", group_commit=_GC)
    with ServerThread(config, procedures=_registry()) as thread:
        yield thread.server


@pytest.fixture()
def client(server):
    with ReproClient(*server.address) as c:
        c.create_table(KV)
        yield c


# ----------------------------------------------------------------------
# Handshake and basic lifecycle
# ----------------------------------------------------------------------

def test_hello_banner(server):
    with ReproClient(*server.address) as c:
        info = c.server_info
        assert info["protocol"] == PROTOCOL_VERSION
        assert info["engine"] == "nvm-inp"
        assert info["group_commit"]["enabled"] is True
        assert c.ping()["now_ns"] >= 0


def test_session_round_trip(client):
    with client.session("alice") as session:
        session.begin()
        session.insert("kv", {"k": 1, "v": "hello"})
        session.insert("kv", {"k": 2, "v": "world"})
        assert session.get("kv", 1)["v"] == "hello"
        session.commit()

        session.begin()
        rows = session.scan("kv")
        assert [row["v"] for _, row in rows] == ["hello", "world"]
        session.update("kv", 2, {"v": "there"})
        session.delete("kv", 1)
        session.commit()

        session.begin()
        assert session.get("kv", 1) is None
        assert session.get("kv", 2)["v"] == "there"
        session.abort()


def test_schema_round_trip_over_wire(client):
    schema = client.schema("kv")
    assert schema.table == "kv"
    assert [c.name for c in schema.columns] == ["k", "v"]


def test_abort_rolls_back(client):
    with client.session() as session:
        session.begin()
        session.insert("kv", {"k": 9, "v": "ghost"})
        session.abort()
        session.begin()
        assert session.get("kv", 9) is None
        session.commit()


# ----------------------------------------------------------------------
# Error taxonomy over the wire
# ----------------------------------------------------------------------

def test_session_state_errors_propagate(client):
    with client.session() as session:
        with pytest.raises(SessionStateError):
            session.commit()            # no active transaction
        session.begin()
        with pytest.raises(SessionStateError):
            session.begin()             # already active
        session.abort()
        with pytest.raises(SessionStateError):
            session.abort()


def test_engine_errors_propagate_with_type(client):
    with client.session() as session:
        session.begin()
        with pytest.raises(TupleNotFoundError):
            session.update("kv", 404, {"v": "x"})
        session.abort()


def test_unknown_session_rejected(client):
    with pytest.raises(ProtocolError, match="no open session"):
        client.call("begin", session=987654, partition=0)


def test_closed_session_rejected(client):
    session = client.session("gone")
    session.close()
    with pytest.raises(ProtocolError, match="no open session"):
        client.call("begin", session=session.session_id, partition=0)


def test_unknown_verb_rejected(client):
    with pytest.raises(ProtocolError, match="unknown verb"):
        client.call("frobnicate")


def test_bad_partition_rejected(client):
    with client.session() as session:
        with pytest.raises(ProtocolError, match="no such partition"):
            session.begin(partition=7)


def test_corrupt_frame_gets_error_then_disconnect(server):
    """A garbage length prefix earns one structured error frame, then
    the server drops the connection (no resynchronization)."""
    with socket.create_connection(server.address, timeout=5.0) as sock:
        sock.sendall(struct.pack(">I", 0xFFFFFFFF))
        decoder = FrameDecoder()
        frames = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            frames.extend(decoder.feed(data))
        assert len(frames) == 1
        assert frames[0]["ok"] is False
        assert frames[0]["error"]["code"] == "ProtocolError"


# ----------------------------------------------------------------------
# Stored procedures
# ----------------------------------------------------------------------

def test_stored_procedure_call(client):
    with client.session() as session:
        assert session.call("put", 10, "stored") == 10
        assert session.call("bump", 10) == "stored!"
        session.begin()
        assert session.get("kv", 10)["v"] == "stored!"
        session.abort()
    assert set(client.procedures()) == {"put", "bump", "explode"}


def test_unknown_procedure_rejected(client):
    with client.session() as session:
        with pytest.raises(ServerError, match="unknown procedure"):
            session.call("nope")


def test_failing_procedure_aborts_and_reports(client):
    with client.session() as session:
        with pytest.raises(ServerError, match="procedure bug"):
            session.call("explode", 11)
        # The abort rolled the insert back and the session is reusable.
        session.begin()
        assert session.get("kv", 11) is None
        session.commit()


# ----------------------------------------------------------------------
# Concurrent-session isolation (execution is serial per partition)
# ----------------------------------------------------------------------

def test_concurrent_sessions_serialize_on_the_partition(server):
    """B's begin must wait until A's transaction finishes, so B can
    only ever observe A's committed state."""
    with ReproClient(*server.address) as admin:
        admin.create_table(KV)
    a_client = ReproClient(*server.address)
    a_client.connect()
    b_client = ReproClient(*server.address)
    b_client.connect()
    try:
        a = a_client.session("a")
        a.begin()
        a.insert("kv", {"k": 100, "v": "from-a"})

        b_saw = {}
        b_started = threading.Event()

        def b_txn():
            b = b_client.session("b")
            b_started.set()
            b.begin()                   # parks behind A's lock
            row = b.get("kv", 100)
            b_saw["row"] = row
            b.commit()
            b.close()

        thread = threading.Thread(target=b_txn, daemon=True)
        thread.start()
        b_started.wait(timeout=10.0)
        time.sleep(0.2)                 # B is parked in begin
        assert thread.is_alive()
        a.commit()                      # releases the partition
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert b_saw["row"]["v"] == "from-a"
        a.close()
    finally:
        a_client.close()
        b_client.close()


def test_aborted_work_invisible_to_next_session(server):
    with ReproClient(*server.address) as admin:
        admin.create_table(KV)
        with admin.session("a") as a:
            a.begin()
            a.insert("kv", {"k": 200, "v": "doomed"})
            a.abort()
    with ReproClient(*server.address) as c:
        with c.session("b") as b:
            b.begin()
            assert b.get("kv", 200) is None
            b.commit()


def test_admission_control_bounds_inflight(server=None):
    config = ServerConfig(engine="nvm-inp", max_inflight=1,
                          group_commit=_GC)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
        a_client = ReproClient(host, port)
        a_client.connect()
        b_client = ReproClient(host, port)
        b_client.connect()
        try:
            a = a_client.session("a")
            a.begin()

            b_done = threading.Event()

            def b_txn():
                b = b_client.session("b")
                b.begin()               # parks on the admission sem
                b.commit()
                b.close()
                b_done.set()

            thread_b = threading.Thread(target=b_txn, daemon=True)
            thread_b.start()
            time.sleep(0.2)
            assert not b_done.is_set()  # bounded: only one in flight
            a.commit()
            assert b_done.wait(timeout=10.0)
            a.close()
            assert a_client.stats()["admission"]["waits"] >= 1
        finally:
            a_client.close()
            b_client.close()


# ----------------------------------------------------------------------
# Crash / recover mid-session
# ----------------------------------------------------------------------

def test_crash_recover_mid_session(server):
    with ReproClient(*server.address) as admin:
        admin.create_table(KV)
        with admin.session("writer") as w:
            w.begin()
            w.insert("kv", {"k": 1, "v": "durable"})
            w.commit()                  # durable before the crash

        victim = admin.session("victim")
        victim.begin()
        victim.insert("kv", {"k": 2, "v": "in-flight"})

        result = admin.crash()
        assert result["crashed"] is True
        assert result["lost_commits"] == 0      # nothing awaiting

        # The victim's transaction died with the power.
        with pytest.raises(SessionStateError):
            client_commit = victim.commit()     # noqa: F841
        # A crashed database refuses new transactions until recovery.
        with pytest.raises(CrashedError):
            victim.begin()

        admin.recover()

        # Committed data survived; the in-flight insert did not.
        victim.begin()
        assert victim.get("kv", 1)["v"] == "durable"
        assert victim.get("kv", 2) is None
        victim.insert("kv", {"k": 3, "v": "post-recovery"})
        victim.commit()
        victim.begin()
        assert victim.get("kv", 3)["v"] == "post-recovery"
        victim.commit()
        victim.close()

        stats = admin.stats()
        assert stats["crashed"] is False


def test_lost_commit_contract(server):
    """The group-commit contract: a power failure between the logical
    commit and the batch's durable point loses the transaction, and
    the committer is told so (CrashedError), never a false durable.

    Uses the WAL-based ``inp`` engine: its durable point is the WAL
    fsync, so an unflushed commit genuinely rolls back at recovery
    (the NVM-aware engines persist at the logical commit and have
    nothing to lose — that is their whole point)."""
    config = ServerConfig(
        engine="inp",
        group_commit=GroupCommitConfig(batch_size=64, max_hold_ns=1e18,
                                       max_hold_wall_s=3600.0))
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
            committer_error = {}

            def commit_then_lose():
                with ReproClient(host, port) as c:
                    with c.session("loser") as s:
                        s.begin()
                        s.insert("kv", {"k": 5, "v": "lost"})
                        try:
                            s.commit()  # parks awaiting the batch
                        except Exception as exc:
                            committer_error["exc"] = exc

            t = threading.Thread(target=commit_then_lose, daemon=True)
            t.start()
            # Wait until the commit is parked on the stage.
            for _ in range(200):
                pending = sum(s["pending"] for s in
                              admin.stats()["group_commit"])
                if pending:
                    break
                time.sleep(0.02)
            assert pending == 1

            assert admin.crash()["lost_commits"] == 1
            t.join(timeout=10.0)
            assert isinstance(committer_error["exc"], CrashedError)

            admin.recover()
            with admin.session("reader") as r:
                r.begin()
                assert r.get("kv", 5) is None   # the commit was lost
                # abort: a commit would park on the (huge) batch again
                r.abort()


def test_flush_verb_forces_durability(server):
    config = ServerConfig(
        engine="nvm-inp",
        group_commit=GroupCommitConfig(batch_size=64, max_hold_ns=1e18,
                                       max_hold_wall_s=3600.0))
    with ServerThread(config) as thread:
        host, port = thread.server.address
        admin = ReproClient(host, port)
        admin.connect()
        admin.create_table(KV)
        done = threading.Event()

        def committer():
            with ReproClient(host, port) as c:
                with c.session() as s:
                    s.begin()
                    s.insert("kv", {"k": 7, "v": "flushed"})
                    s.commit()
            done.set()

        t = threading.Thread(target=committer, daemon=True)
        t.start()
        for _ in range(200):
            if sum(s["pending"] for s in
                   admin.stats()["group_commit"]):
                break
            time.sleep(0.02)
        admin.flush()                   # resolves the parked commit
        assert done.wait(timeout=10.0)
        admin.close()


# ----------------------------------------------------------------------
# Stats and shutdown
# ----------------------------------------------------------------------

def test_stats_shape(client):
    with client.session("measured") as session:
        for key in range(3):
            session.begin()
            session.insert("kv", {"k": 50 + key, "v": "x"})
            session.commit()
    stats = client.stats()
    assert stats["engine"] == "nvm-inp"
    assert stats["committed_txns"] >= 3
    gc = stats["group_commit"][0]
    assert gc["txns"] >= 3 and gc["batches"] >= 1
    assert gc["rounds_per_txn"] >= 0
    latency = stats["latency_ns"]["measured"]
    assert set(latency) >= {"p50", "p95", "p99"}
    assert latency["p50"] > 0
    assert stats["frames"] > 0


def test_multi_partition_sessions(tmp_path):
    config = ServerConfig(engine="nvm-inp", partitions=2,
                          group_commit=_GC)
    with ServerThread(config) as thread:
        with ReproClient(*thread.server.address) as c:
            c.create_table(KV)
            with c.session() as s:
                s.begin(partition=1)
                s.insert("kv", {"k": 1, "v": "p1"})
                s.commit()
                s.begin(partition=0)
                # Partitions are independent stores.
                assert s.get("kv", 1) is None
                s.commit()
                s.begin(partition=1)
                assert s.get("kv", 1)["v"] == "p1"
                s.commit()
            assert len(c.stats()["group_commit"]) == 2


def test_shutdown_verb_stops_server():
    config = ServerConfig(engine="nvm-inp", group_commit=_GC)
    thread = ServerThread(config)
    thread.start()
    with ReproClient(*thread.server.address) as c:
        c.shutdown_server()
    thread._thread.join(timeout=10.0)
    assert not thread._thread.is_alive()


def test_crash_on_closed_database_is_refused(server):
    """Driving the verb surface after stop() reports a closed DB."""
    with ReproClient(*server.address) as c:
        c.ping()
    server.database.close()
    with ReproClient(*server.address) as c2:
        with pytest.raises(DatabaseClosedError):
            c2.call("crash")
