"""Client retry mechanics: seeded full-jitter backoff, the per-call
wall-clock deadline, and commit-token generation."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.client import RETRYABLE_VERBS, ReproClient
from repro.errors import DeadlineExceededError


def test_full_jitter_backoff_is_seeded_and_bounded():
    first = ReproClient("127.0.0.1", 1, retry_backoff_s=0.1,
                        jitter_seed=42)
    second = ReproClient("127.0.0.1", 1, retry_backoff_s=0.1,
                         jitter_seed=42)
    first_draws = [first._backoff(i) for i in range(6)]
    assert first_draws == [second._backoff(i) for i in range(6)]
    for attempt, draw in enumerate(first_draws):
        assert 0 <= draw < 0.1 * 2 ** attempt   # full jitter: [0, cap)
    other = ReproClient("127.0.0.1", 1, retry_backoff_s=0.1,
                        jitter_seed=43)
    assert first_draws != [other._backoff(i) for i in range(6)]


def test_commit_tokens_are_monotonic_and_client_unique():
    client = ReproClient("127.0.0.1", 1)
    tokens = [client.commit_token() for _ in range(3)]
    nonces = {token.rpartition(":")[0] for token in tokens}
    assert len(nonces) == 1
    seqs = [int(token.rpartition(":")[2]) for token in tokens]
    assert seqs == sorted(seqs) and len(set(seqs)) == 3
    assert ReproClient("127.0.0.1", 1).commit_token() \
        .rpartition(":")[0] not in nonces


def test_commit_and_commit_status_are_retryable():
    """The exactly-once machinery only works if a disconnected commit
    is replayed at all — both verbs must be in the retryable set."""
    assert "commit" in RETRYABLE_VERBS
    assert "commit_status" in RETRYABLE_VERBS
    assert "begin" not in RETRYABLE_VERBS       # never blindly retried
    assert "insert" not in RETRYABLE_VERBS


class _SilentListener:
    """Accepts connections and never answers: every request times out,
    which is what drives the retry loop into its deadline."""

    def __init__(self):
        self._server = socket.create_server(("127.0.0.1", 0))
        self.address = self._server.getsockname()
        self._conns = []
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        while True:
            try:
                conn, _ = self._server.accept()
            except OSError:
                return
            self._conns.append(conn)    # hold it open, say nothing

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._server.close()
        for conn in self._conns:
            conn.close()


def test_deadline_caps_the_retry_loop():
    with _SilentListener() as listener:
        client = ReproClient(*listener.address, timeout=0.05,
                             retries=100, retry_backoff_s=0.01,
                             jitter_seed=1)
        started = time.monotonic()
        with pytest.raises(DeadlineExceededError):
            client.call("ping", deadline=0.3)
        elapsed = time.monotonic() - started
        assert elapsed < 5.0            # gave up, did not spend retries
        client.close()


def test_client_wide_deadline_default_applies():
    with _SilentListener() as listener:
        client = ReproClient(*listener.address, timeout=0.05,
                             retries=100, retry_backoff_s=0.01,
                             deadline_s=0.3, jitter_seed=1)
        with pytest.raises(DeadlineExceededError):
            client.call("ping")
        client.close()
