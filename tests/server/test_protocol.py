"""Frame codec and wire-value round trips, including hostile input:
oversized, truncated, and garbage frames must raise ProtocolError, not
crash or desynchronize the stream."""

from __future__ import annotations

import asyncio
import json
import struct

import pytest

from repro.core.schema import Column, ColumnType, Schema
from repro.errors import (ProtocolError, ServerError, SessionStateError,
                          TupleNotFoundError)
from repro.server.protocol import (MAX_FRAME_BYTES, FrameDecoder,
                                   encode_frame, error_response,
                                   error_to_exception, ok_response,
                                   read_frame, request, schema_from_wire,
                                   schema_to_wire, unwire_value,
                                   wire_value)


# ----------------------------------------------------------------------
# encode_frame / FrameDecoder round trips
# ----------------------------------------------------------------------

def test_encode_decode_round_trip():
    payload = {"id": 7, "verb": "get", "args": {"table": "kv", "key": 3}}
    decoder = FrameDecoder()
    assert decoder.feed(encode_frame(payload)) == [payload]
    assert decoder.buffered_bytes == 0


def test_decoder_handles_many_frames_in_one_chunk():
    payloads = [{"id": i, "verb": "ping", "args": {}} for i in range(5)]
    blob = b"".join(encode_frame(p) for p in payloads)
    assert FrameDecoder().feed(blob) == payloads


def test_decoder_reassembles_byte_at_a_time():
    payload = {"id": 1, "ok": True, "result": {"rows": list(range(50))}}
    blob = encode_frame(payload)
    decoder = FrameDecoder()
    out = []
    for i in range(len(blob)):
        out.extend(decoder.feed(blob[i:i + 1]))
    assert out == [payload]
    decoder.eof()               # clean boundary: no partial frame


def test_decoder_split_across_header_boundary():
    payload = {"id": 2, "verb": "hello", "args": {}}
    blob = encode_frame(payload)
    decoder = FrameDecoder()
    assert decoder.feed(blob[:2]) == []          # half a header
    assert decoder.feed(blob[2:6]) == []         # header + 2 body bytes
    assert decoder.feed(blob[6:]) == [payload]


def test_zero_length_frame_rejected():
    with pytest.raises(ProtocolError, match="zero-length"):
        FrameDecoder().feed(struct.pack(">I", 0))


def test_oversized_length_prefix_rejected():
    decoder = FrameDecoder(max_frame_bytes=1024)
    with pytest.raises(ProtocolError, match="exceeds"):
        decoder.feed(struct.pack(">I", 1025))


def test_oversized_body_rejected_on_encode():
    payload = {"blob": "x" * 2048}
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_frame(payload, max_frame_bytes=1024)


def test_garbage_body_rejected():
    body = b"\xff\xfenot json at all"
    with pytest.raises(ProtocolError, match="not valid JSON"):
        FrameDecoder().feed(struct.pack(">I", len(body)) + body)


def test_non_object_payload_rejected():
    body = json.dumps([1, 2, 3]).encode()
    with pytest.raises(ProtocolError, match="JSON object"):
        FrameDecoder().feed(struct.pack(">I", len(body)) + body)


def test_truncated_stream_rejected_at_eof():
    blob = encode_frame({"id": 1, "verb": "ping", "args": {}})
    decoder = FrameDecoder()
    decoder.feed(blob[:-3])
    assert decoder.buffered_bytes == len(blob) - 3
    with pytest.raises(ProtocolError, match="truncated"):
        decoder.eof()


def test_truncated_length_prefix_rejected_at_eof():
    """A stream that dies inside the 4-byte header is still a
    truncated frame, not a clean close."""
    decoder = FrameDecoder()
    assert decoder.feed(struct.pack(">I", 8)[:2]) == []
    with pytest.raises(ProtocolError, match="truncated"):
        decoder.eof()


def test_frame_exactly_at_limit_accepted():
    """The size limit is inclusive: a body of exactly
    ``max_frame_bytes`` decodes."""
    body = b'{"pad":"' + b"x" * (1024 - 10) + b'"}'
    assert len(body) == 1024
    decoder = FrameDecoder(max_frame_bytes=1024)
    (payload,) = decoder.feed(struct.pack(">I", len(body)) + body)
    assert payload == {"pad": "x" * (1024 - 10)}
    decoder.eof()


def test_frame_one_byte_over_limit_rejected():
    body = b'{"pad":"' + b"x" * (1024 - 9) + b'"}'
    assert len(body) == 1025
    decoder = FrameDecoder(max_frame_bytes=1024)
    with pytest.raises(ProtocolError, match="exceeds"):
        decoder.feed(struct.pack(">I", len(body)) + body)


def test_garbage_after_valid_frame_still_poisons_the_stream():
    """A well-framed garbage body following a good frame must raise —
    the good frame decodes, but the stream is then unrecoverable (the
    client maps this to a dead connection and relies on commit tokens,
    never on resynchronization)."""
    good = encode_frame({"id": 1, "ok": True, "result": None})
    garbage = struct.pack(">I", 9) + b"\x00\xffnotjson"
    decoder = FrameDecoder()
    assert decoder.feed(good) == [{"id": 1, "ok": True, "result": None}]
    with pytest.raises(ProtocolError, match="not valid JSON"):
        decoder.feed(garbage)


def test_decoder_stays_in_sync_after_good_frames():
    good = encode_frame({"id": 1, "verb": "ping", "args": {}})
    decoder = FrameDecoder()
    decoder.feed(good + good)
    with pytest.raises(ProtocolError):
        decoder.feed(struct.pack(">I", 0))


# ----------------------------------------------------------------------
# Async read_frame (server side) shares the same checks
# ----------------------------------------------------------------------

def _read_from(blob: bytes, **kwargs):
    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(blob)
        reader.feed_eof()
        return await read_frame(reader, **kwargs)
    return asyncio.run(scenario())


def test_read_frame_round_trip():
    payload = {"id": 9, "verb": "stats", "args": {}}
    assert _read_from(encode_frame(payload)) == payload


def test_read_frame_oversized_rejected():
    blob = struct.pack(">I", 4096) + b"x" * 4096
    with pytest.raises(ProtocolError, match="exceeds"):
        _read_from(blob, max_frame_bytes=1024)


def test_read_frame_truncated_raises_incomplete_read():
    blob = encode_frame({"id": 1, "verb": "ping", "args": {}})
    with pytest.raises(asyncio.IncompleteReadError):
        _read_from(blob[:-2])


# ----------------------------------------------------------------------
# Request / response / error frames
# ----------------------------------------------------------------------

def test_request_and_ok_response_shape():
    assert request(3, "get", table="kv", key=1) == {
        "id": 3, "verb": "get", "args": {"table": "kv", "key": 1}}
    assert ok_response(3, {"row": None}) == {
        "id": 3, "ok": True, "result": {"row": None}}


def test_error_frame_round_trips_exception_type():
    frame = error_response(5, SessionStateError("no active transaction"))
    assert frame["ok"] is False
    assert frame["error"]["code"] == "SessionStateError"
    exc = error_to_exception(frame["error"])
    assert isinstance(exc, SessionStateError)
    assert "no active transaction" in str(exc)


def test_error_round_trip_preserves_subclasses():
    for original in (TupleNotFoundError("kv[9]"), ProtocolError("bad"),
                     ServerError("boom")):
        rebuilt = error_to_exception(
            error_response(1, original)["error"])
        assert type(rebuilt) is type(original)


def test_unknown_error_code_degrades_to_server_error():
    exc = error_to_exception({"code": "NoSuchError", "message": "?"})
    assert isinstance(exc, ServerError)


def test_malformed_error_frame_degrades_to_server_error():
    assert isinstance(error_to_exception(None), ServerError)
    assert isinstance(error_to_exception("nope"), ServerError)


# ----------------------------------------------------------------------
# Value codec: tuples survive JSON
# ----------------------------------------------------------------------

def test_tuple_round_trip():
    value = (1, "a", (2, 3))
    assert unwire_value(wire_value(value)) == value


def test_nested_structures_round_trip():
    value = {"rows": [((1, 2), {"v": "x"}), ((3, 4), {"v": "y"})],
             "plain": [1, 2, 3], "none": None}
    wired = wire_value(value)
    json.dumps(wired)           # must be JSON-encodable as-is
    assert unwire_value(wired) == value


def test_plain_dicts_pass_through_unchanged():
    value = {"k": 1, "v": "hello"}
    assert wire_value(value) == value
    assert unwire_value(value) == value


# ----------------------------------------------------------------------
# Schema codec
# ----------------------------------------------------------------------

def _schema():
    return Schema.build(
        "orders",
        [Column("id", ColumnType.INT),
         Column("who", ColumnType.STRING, capacity=32),
         Column("qty", ColumnType.INT)],
        primary_key=["id"],
        secondary_indexes={"by_who": ["who"]})


def test_schema_round_trip():
    schema = _schema()
    rebuilt = schema_from_wire(schema_to_wire(schema))
    assert rebuilt.table == schema.table
    assert [c.name for c in rebuilt.columns] == \
        [c.name for c in schema.columns]
    assert list(rebuilt.primary_key) == list(schema.primary_key)
    assert set(rebuilt.secondary_indexes) == {"by_who"}
    json.dumps(schema_to_wire(schema))  # wire form is pure JSON


def test_malformed_schema_rejected():
    with pytest.raises(ProtocolError):
        schema_from_wire("not a dict")
    with pytest.raises(ProtocolError):
        schema_from_wire({"table": "t"})            # missing columns
    with pytest.raises(ProtocolError):
        schema_from_wire({"table": "t", "columns": [{"name": "k"}],
                          "primary_key": ["k"]})    # missing type
