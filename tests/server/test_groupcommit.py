"""Group-commit batch boundaries under a deterministic workload.

These drive a :class:`GroupCommitStage` directly on an event loop
against a real engine (auto-flush disabled, as the server builds it),
so batch boundaries depend only on the configured triggers and the
simulated clock — no sockets, no wall-clock races except where the
wall timer itself is under test.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.config import EngineConfig
from repro.core.database import Database
from repro.core.schema import Column, ColumnType, Schema
from repro.errors import CrashedError, SimulatedCrash
from repro.server.groupcommit import GroupCommitConfig, GroupCommitStage

_NO_AUTO_FLUSH = 1 << 30

_FAR = dict(max_hold_ns=1e18, max_hold_wall_s=3600.0)


def _database() -> Database:
    db = Database("inp", engine_config=EngineConfig(
        group_commit_size=_NO_AUTO_FLUSH))
    db.create_table(Schema.build(
        "kv", [Column("k", ColumnType.INT), Column("v", ColumnType.INT)],
        primary_key=["k"]))
    return db


def _commit_one(db: Database, key: int) -> None:
    """One logical commit (engine durable point deferred)."""
    session = db.session()
    session.begin()
    session.insert("kv", {"k": key, "v": key})
    session.commit()
    session.close()


def _run(scenario):
    return asyncio.run(scenario())


# ----------------------------------------------------------------------
# Trigger: size
# ----------------------------------------------------------------------

def test_size_trigger_flushes_exactly_at_batch_size():
    async def scenario():
        db = _database()
        stage = GroupCommitStage(
            db.partitions[0],
            GroupCommitConfig(batch_size=3, **_FAR),
            asyncio.get_running_loop())
        futures = []
        for key in range(3):
            _commit_one(db, key)
            futures.append(stage.enqueue())
            if key < 2:
                assert not futures[-1].done()
        await asyncio.gather(*futures)
        return stage.stats()

    stats = _run(scenario)
    assert stats["txns"] == 3
    assert stats["batches"] == 1
    assert stats["max_batch"] == 3
    assert stats["mean_batch"] == 3.0
    assert stats["flush_reasons"] == {"size": 1}
    assert stats["pending"] == 0
    # One batched durable point is cheaper than three solo ones.
    assert 1 <= stats["durability_rounds"] <= 2
    assert stats["rounds_per_txn"] < 1.0


def test_deterministic_boundaries_across_runs():
    def boundaries():
        async def scenario():
            db = _database()
            stage = GroupCommitStage(
                db.partitions[0],
                GroupCommitConfig(batch_size=4, **_FAR),
                asyncio.get_running_loop())
            futures = [stage.enqueue()
                       for key in range(10) if _commit_one(db, key) is None]
            stage.flush("explicit")     # drain the final partial batch
            await asyncio.gather(*futures)
            return (stage.stats()["batches"],
                    stage.stats()["flush_reasons"],
                    stage.stats()["durability_rounds"])
        return _run(scenario)

    first, second = boundaries(), boundaries()
    assert first == second
    batches, reasons, _rounds = first
    assert batches == 3                 # 4 + 4 + 2 (explicit drain)
    assert reasons == {"size": 2, "explicit": 1}


# ----------------------------------------------------------------------
# Trigger: simulated-clock hold
# ----------------------------------------------------------------------

def test_hold_trigger_uses_simulated_clock():
    async def scenario():
        db = _database()
        stage = GroupCommitStage(
            db.partitions[0],
            GroupCommitConfig(batch_size=1000, max_hold_ns=1.0,
                              max_hold_wall_s=3600.0),
            asyncio.get_running_loop())
        _commit_one(db, 0)
        first = stage.enqueue()         # opens the batch
        assert not first.done()
        _commit_one(db, 1)              # advances the simulated clock
        second = stage.enqueue()        # now > 1ns past the batch open
        await asyncio.gather(first, second)
        return stage.stats()

    stats = _run(scenario)
    assert stats["batches"] == 1
    assert stats["max_batch"] == 2
    assert stats["flush_reasons"] == {"hold": 1}


# ----------------------------------------------------------------------
# Trigger: wall-clock backstop timer
# ----------------------------------------------------------------------

def test_wall_timer_drains_the_final_batch():
    async def scenario():
        db = _database()
        stage = GroupCommitStage(
            db.partitions[0],
            GroupCommitConfig(batch_size=1000, max_hold_ns=1e18,
                              max_hold_wall_s=0.02),
            asyncio.get_running_loop())
        _commit_one(db, 0)
        future = stage.enqueue()
        await asyncio.wait_for(future, timeout=5.0)
        return stage.stats()

    stats = _run(scenario)
    assert stats["flush_reasons"] == {"timer": 1}
    assert stats["txns"] == stats["max_batch"] == 1


# ----------------------------------------------------------------------
# Batching disabled: one durable point per transaction
# ----------------------------------------------------------------------

def test_disabled_flushes_every_commit():
    async def scenario():
        db = _database()
        stage = GroupCommitStage(
            db.partitions[0],
            GroupCommitConfig(enabled=False),
            asyncio.get_running_loop())
        for key in range(4):
            _commit_one(db, key)
            future = stage.enqueue()
            assert future.done()        # resolved synchronously
            await future
        return stage.stats()

    stats = _run(scenario)
    assert stats["txns"] == stats["batches"] == 4
    assert stats["max_batch"] == 1
    assert stats["flush_reasons"] == {"immediate": 4}
    assert stats["rounds_per_txn"] >= 1.0


def test_batching_reduces_durability_rounds_per_txn():
    """The acceptance comparison in miniature: same workload, same
    engine, batched vs unbatched durable points."""
    def rounds_per_txn(enabled):
        async def scenario():
            db = _database()
            config = GroupCommitConfig(enabled=enabled, batch_size=8,
                                       **_FAR) if enabled else \
                GroupCommitConfig(enabled=False)
            stage = GroupCommitStage(db.partitions[0], config,
                                     asyncio.get_running_loop())
            futures = []
            for key in range(16):
                _commit_one(db, key)
                futures.append(stage.enqueue())
            stage.flush("explicit")
            await asyncio.gather(*futures)
            return stage.stats()["rounds_per_txn"]
        return _run(scenario)

    assert rounds_per_txn(True) < rounds_per_txn(False)


# ----------------------------------------------------------------------
# Power failure during the durable point
# ----------------------------------------------------------------------

def test_crash_during_flush_fails_waiters_with_crashed_error():
    async def scenario():
        db = _database()
        crashes = []
        stage = GroupCommitStage(
            db.partitions[0],
            GroupCommitConfig(batch_size=2, **_FAR),
            asyncio.get_running_loop(),
            on_crash=lambda: crashes.append(True))

        def exploding_flush():
            raise SimulatedCrash("power failed in the WAL fsync")

        _commit_one(db, 0)
        first = stage.enqueue()
        _commit_one(db, 1)
        db.partitions[0].engine.flush_commits = exploding_flush
        second = stage.enqueue()        # size trigger -> crash
        results = await asyncio.gather(first, second,
                                       return_exceptions=True)
        return crashes, results, stage.stats()

    crashes, results, stats = _run(scenario)
    assert crashes == [True]
    assert all(isinstance(r, CrashedError) for r in results)
    assert stats["batches"] == 0        # a lost batch is not a batch
    assert stats["pending"] == 0


def test_fail_pending_fails_every_waiter():
    async def scenario():
        db = _database()
        stage = GroupCommitStage(
            db.partitions[0],
            GroupCommitConfig(batch_size=1000, **_FAR),
            asyncio.get_running_loop())
        _commit_one(db, 0)
        _commit_one(db, 1)
        futures = [stage.enqueue(), stage.enqueue()]
        failed = stage.fail_pending("power failure")
        results = await asyncio.gather(*futures, return_exceptions=True)
        return failed, results

    failed, results = _run(scenario)
    assert failed == 2
    assert all(isinstance(r, CrashedError) for r in results)


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------

def test_config_rejects_nonsense():
    with pytest.raises(ValueError):
        GroupCommitConfig(batch_size=0)
    with pytest.raises(ValueError):
        GroupCommitConfig(max_hold_ns=-1.0)
    with pytest.raises(ValueError):
        GroupCommitConfig(max_hold_wall_s=0.0)
