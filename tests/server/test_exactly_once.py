"""Exactly-once commits: the bounded commit ledger, the
``commit_status`` verb, and the full client retry path — a commit
whose ack the proxy dropped is replayed across a reconnect and applied
exactly once. Also documents, as a regression test, the ambiguity the
tokens close: a tokenless commit retried after a dropped ack cannot
learn its own fate."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.chaos import FaultProxyThread, NetworkFaultProxy
from repro.client import ReproClient
from repro.core.schema import Column, ColumnType, Schema
from repro.errors import (CrashedError, ProtocolError, RetryAfterError,
                          ServerDisconnected)
from repro.server import (CommitLedger, GroupCommitConfig, ServerConfig,
                          ServerThread)

KV = Schema.build(
    "kv", [Column("k", ColumnType.INT), Column("v", ColumnType.INT)],
    primary_key=["k"])

#: Fast timer backstop so single-session commits return promptly.
_GC = GroupCommitConfig(batch_size=8, max_hold_ns=1e18,
                        max_hold_wall_s=0.005)


# ----------------------------------------------------------------------
# CommitLedger unit behavior
# ----------------------------------------------------------------------

def test_ledger_lifecycle_pending_to_durable():
    ledger = CommitLedger(capacity=4)
    ledger.begin("n:1")
    assert ledger.status("n:1")["status"] == "pending"
    ledger.resolve_durable("n:1", {"txn": 7, "durable": True})
    status = ledger.status("n:1")
    assert status["status"] == "durable"
    assert status["result"]["txn"] == 7


def test_ledger_failed_keeps_the_reason():
    ledger = CommitLedger(capacity=4)
    ledger.begin("n:1")
    ledger.resolve_failed("n:1", "power failed mid-batch")
    status = ledger.status("n:1")
    assert status["status"] == "failed"
    assert "power failed" in status["reason"]


def test_ledger_unrecorded_tokens_are_unknown():
    """Never-recorded = the commit verb never started = certainly not
    applied. Both a fresh seq on a known nonce and a fresh nonce."""
    ledger = CommitLedger(capacity=4)
    ledger.begin("n:1")
    ledger.resolve_durable("n:1", {"txn": 1})
    assert ledger.status("n:2")["status"] == "unknown"
    assert ledger.status("other:9")["status"] == "unknown"


def test_ledger_eviction_is_forgotten_not_unknown():
    """A recorded-but-evicted token must answer ``forgotten`` (genuine
    ambiguity), never ``unknown`` (safe to re-run): the per-nonce
    high-water mark survives entry eviction."""
    ledger = CommitLedger(capacity=2)
    for seq in range(1, 6):
        ledger.begin(f"n:{seq}")
        ledger.resolve_durable(f"n:{seq}", {"txn": seq})
    assert ledger.status("n:1")["status"] == "forgotten"
    assert ledger.status("n:5")["status"] == "durable"
    assert ledger.status("n:99")["status"] == "unknown"
    assert ledger.stats()["evicted"] == 3


def test_ledger_never_evicts_pending_entries():
    """A pending entry's commit coroutine is still running and will
    resolve it; eviction only ages out completed entries."""
    ledger = CommitLedger(capacity=1)
    ledger.begin("n:1")                 # stays pending
    for seq in range(2, 5):
        ledger.begin(f"n:{seq}")
        ledger.resolve_durable(f"n:{seq}", {"txn": seq})
    assert ledger.status("n:1")["status"] == "pending"
    assert ledger.stats()["pending"] == 1


def test_ledger_evicted_nonce_window_degrades_to_forgotten():
    """Once the nonce-tracking window overflows, an unseen nonce can
    no longer prove ``unknown`` — the safe answer is ``forgotten``."""
    ledger = CommitLedger(capacity=1, nonce_capacity=2)
    for nonce in ("a", "b", "c"):
        ledger.begin(f"{nonce}:1")
        ledger.resolve_durable(f"{nonce}:1", {"txn": 1})
    assert ledger.status("a:1")["status"] == "forgotten"
    assert ledger.status("never-seen:1")["status"] == "forgotten"


def test_ledger_rejects_malformed_tokens():
    ledger = CommitLedger()
    for bad in ("", "noseq", ":1", "n:x"):
        with pytest.raises(ProtocolError):
            ledger.status(bad)
    ledger.begin("n:1")
    with pytest.raises(ProtocolError):
        ledger.begin("n:1")             # duplicate begin


# ----------------------------------------------------------------------
# The commit_status verb and server-side token replay
# ----------------------------------------------------------------------

@pytest.fixture()
def server():
    config = ServerConfig(engine="nvm-inp", group_commit=_GC)
    with ServerThread(config) as thread:
        yield thread.server


def _seed(client, key=1, value=0):
    client.create_table(KV)
    with client.session("seed") as session:
        session.begin()
        session.insert("kv", {"k": key, "v": value})
        session.commit()


def test_commit_status_verb_reports_token_fate(server):
    with ReproClient(*server.address) as client:
        _seed(client)
        token = client.commit_token()
        assert client.commit_status(token)["status"] == "unknown"
        session = client.session("writer")
        session.begin()
        session.update("kv", 1, {"v": 1})
        txn = session.commit(token=token)
        status = client.commit_status(token)
        assert status["status"] == "durable"
        assert status["result"]["txn"] == txn
        session.close()


def test_replayed_commit_token_answers_from_the_ledger(server):
    """A second ``commit`` frame with the same token returns the
    recorded result without touching the engine."""
    with ReproClient(*server.address) as client:
        _seed(client)
        session = client.session("writer")
        session.begin()
        session.update("kv", 1, {"v": 1})
        token = client.commit_token()
        first = client.call("commit", session=session.session_id,
                            token=token)
        replay = client.call("commit", session=session.session_id,
                             token=token)
        assert replay == first
        session.begin()
        assert session.get("kv", 1)["v"] == 1   # applied exactly once
        session.abort()
        session.close()
        ledger = client.stats()["ledger"]
        assert ledger["dedup_hits"] >= 1
        assert ledger["recorded"] >= 1


def test_commit_lost_to_a_crash_resolves_failed():
    """A tokened commit parked on group commit when the power fails is
    recorded ``failed`` — a retry gets CrashedError, never a silent
    re-run, and ``commit_status`` agrees."""
    config = ServerConfig(
        engine="inp",
        group_commit=GroupCommitConfig(batch_size=64, max_hold_ns=1e18,
                                       max_hold_wall_s=3600.0))
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
            outcome = {}

            def commit_then_lose():
                with ReproClient(host, port) as c:
                    token = c.commit_token()
                    outcome["token"] = token
                    with c.session("loser") as s:
                        s.begin()
                        s.insert("kv", {"k": 5, "v": 1})
                        try:
                            s.commit(token=token)
                        except Exception as exc:
                            outcome["exc"] = exc

            t = threading.Thread(target=commit_then_lose, daemon=True)
            t.start()
            for _ in range(200):
                if sum(s["pending"] for s in
                       admin.stats()["group_commit"]):
                    break
                time.sleep(0.02)
            assert admin.crash()["lost_commits"] == 1
            t.join(timeout=10.0)
            assert isinstance(outcome["exc"], CrashedError)
            admin.recover()
            status = admin.commit_status(outcome["token"])
            assert status["status"] == "failed"


# ----------------------------------------------------------------------
# The acceptance test: ack dropped by the proxy, retried, applied once
# ----------------------------------------------------------------------

class _AckDropProxy(NetworkFaultProxy):
    """Deterministic fault plan: swallow the first server->client
    response to a ``commit`` request, forward everything else."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._commit_ids = set()
        self.dropped_acks = 0

    async def _apply(self, frame, writer, rng):
        payload = json.loads(frame[4:])
        if payload.get("verb") == "commit":
            self._commit_ids.add(payload.get("id"))
        elif payload.get("id") in self._commit_ids \
                and self.dropped_acks == 0:
            self.dropped_acks += 1
            self.counters["drop"] += 1
            return False
        writer.write(frame)
        self.counters["forward"] += 1
        return False


def _ack_drop_proxy(host, port):
    thread = FaultProxyThread(host, port)
    thread.proxy = _AckDropProxy(host, port)
    return thread


def test_dropped_commit_ack_is_applied_exactly_once(server):
    """The satellite acceptance test: the client commits through a
    proxy that eats the ack, times out, reconnects, and replays the
    commit with its token — the server answers from the ledger and the
    increment lands exactly once."""
    host, port = server.address
    with ReproClient(host, port) as admin:
        _seed(admin)
        with _ack_drop_proxy(host, port) as proxy:
            client = ReproClient(*proxy.proxy.address, timeout=0.3,
                                 retries=6, retry_backoff_s=0.01,
                                 jitter_seed=7)
            client.connect()
            session = client.session("retrier")
            session.begin()
            row = session.get("kv", 1)
            session.update("kv", 1, {"v": row["v"] + 1})
            assert session.commit() > 0     # survives the dropped ack
            assert proxy.proxy.dropped_acks == 1
            assert client.reconnects >= 2   # connect + the retry
            client.close()
        with admin.session("check") as check:
            check.begin()
            assert check.get("kv", 1)["v"] == 1     # exactly once
            check.abort()
        assert admin.stats()["ledger"]["dedup_hits"] >= 1


def test_tokenless_commit_ack_drop_is_ambiguous(server):
    """Regression documentation: before commit tokens, a dropped ack
    left the client unable to learn the commit's fate — the bare retry
    lands on a fresh connection with no session and dies with
    ProtocolError, while the transaction WAS applied. Tokens
    (the test above) close exactly this window."""
    host, port = server.address
    with ReproClient(host, port) as admin:
        _seed(admin)
        with _ack_drop_proxy(host, port) as proxy:
            client = ReproClient(*proxy.proxy.address, timeout=0.3,
                                 retries=6, retry_backoff_s=0.01,
                                 jitter_seed=7)
            client.connect()
            session = client.session("legacy")
            session.begin()
            row = session.get("kv", 1)
            session.update("kv", 1, {"v": row["v"] + 1})
            with pytest.raises((ProtocolError, ServerDisconnected)):
                client.call("commit", session=session.session_id)
            assert proxy.proxy.dropped_acks == 1
            client.close()
        with admin.session("check") as check:
            check.begin()
            # The commit the client could not confirm was applied.
            assert check.get("kv", 1)["v"] == 1
            check.abort()


def test_pending_replay_answers_retry_after():
    """A commit replayed while the original is still parked on group
    commit gets a RetryAfterError hint, not a hang and not a re-run."""
    config = ServerConfig(
        engine="nvm-inp",
        group_commit=GroupCommitConfig(batch_size=64, max_hold_ns=1e18,
                                       max_hold_wall_s=3600.0))
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
            token_box = {}

            def committer():
                with ReproClient(host, port) as c:
                    token_box["token"] = token = c.commit_token()
                    with c.session("parked") as s:
                        s.begin()
                        s.insert("kv", {"k": 9, "v": 9})
                        try:
                            s.commit(token=token)
                        except Exception:
                            pass

            t = threading.Thread(target=committer, daemon=True)
            t.start()
            for _ in range(200):
                if sum(s["pending"] for s in
                       admin.stats()["group_commit"]):
                    break
                time.sleep(0.02)
            with pytest.raises(RetryAfterError):
                # shed_retries=0 surfaces the hint instead of honoring it
                probe = ReproClient(host, port, shed_retries=0)
                probe.connect()
                try:
                    probe.call("commit", session=0,
                               token=token_box["token"])
                finally:
                    probe.close()
            assert admin.commit_status(
                token_box["token"])["status"] == "pending"
            admin.flush()
            t.join(timeout=10.0)
