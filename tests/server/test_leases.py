"""Session leases, load shedding, the crash watchdog, and leak
accounting: whatever way a client vanishes — idle, mid-transaction, or
parked on group commit — the server must release its partition lock
and admission slot, and ``stats`` must prove it."""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.client import ReproClient
from repro.core.schema import Column, ColumnType, Schema
from repro.errors import (LeaseExpiredError, RetryAfterError,
                          ServerDisconnected)
from repro.server import GroupCommitConfig, ServerConfig, ServerThread

KV = Schema.build(
    "kv", [Column("k", ColumnType.INT),
           Column("v", ColumnType.STRING, capacity=64)],
    primary_key=["k"])

#: Fast timer backstop so single-session commits return promptly.
_GC = GroupCommitConfig(batch_size=8, max_hold_ns=1e18,
                        max_hold_wall_s=0.005)

#: Huge hold: commits park on the stage until an explicit flush.
_GC_PARKED = GroupCommitConfig(batch_size=64, max_hold_ns=1e18,
                               max_hold_wall_s=3600.0)


def _poll(predicate, timeout=5.0, interval=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


def _no_leaks(stats):
    return (stats["admission"]["in_flight"] == 0
            and stats["admission"]["queue"] == 0
            and stats["locks_held"] == []
            and not stats["sessions"]
            and all(stage["pending"] == 0
                    for stage in stats["group_commit"]))


# ----------------------------------------------------------------------
# Session leases (the reaper)
# ----------------------------------------------------------------------

def test_reaper_expires_idle_in_txn_session():
    """An abandoned in-transaction session is reaped past its lease:
    the transaction aborts, the partition lock and admission slot come
    back, and the owner's next verb gets LeaseExpiredError."""
    config = ServerConfig(engine="nvm-inp", group_commit=_GC,
                          max_inflight=1, session_lease_s=0.2,
                          reaper_interval_s=0.02)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
        zombie_client = ReproClient(host, port)
        zombie_client.connect()
        zombie = zombie_client.session("zombie")
        zombie.begin()
        zombie.insert("kv", {"k": 1, "v": "doomed"})
        # ...and the client goes silent, holding the only slot.
        with ReproClient(host, port) as other:
            assert _poll(lambda: other.stats()["reaper"]["expired"] >= 1)
            stats = other.stats()
            assert stats["admission"]["in_flight"] == 0
            assert stats["locks_held"] == []
            # The freed slot admits new work (max_inflight=1).
            with other.session("heir") as heir:
                heir.begin()
                heir.insert("kv", {"k": 2, "v": "alive"})
                heir.commit()
                heir.begin()
                # The zombie's in-flight insert was aborted with it.
                assert heir.get("kv", 1) is None
                heir.abort()
        with pytest.raises(LeaseExpiredError):
            zombie.commit()
        zombie_client.close()


def test_reaper_never_reaps_awaiting_commits():
    """A commit parked on group commit is server-side progress, not
    client idleness: the reaper must leave it alone no matter how
    stale its lease looks."""
    config = ServerConfig(engine="nvm-inp", group_commit=_GC_PARKED,
                          session_lease_s=0.1, reaper_interval_s=0.02)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
            done = {}

            def committer():
                with ReproClient(host, port) as c:
                    with c.session("parked") as s:
                        s.begin()
                        s.insert("kv", {"k": 3, "v": "patient"})
                        done["txn"] = s.commit()

            t = threading.Thread(target=committer, daemon=True)
            t.start()
            assert _poll(lambda: sum(
                s["pending"] for s in admin.stats()["group_commit"]))
            time.sleep(0.4)             # several leases and reaper ticks
            sessions = {s["name"]: s for s in admin.stats()["sessions"]}
            assert sessions["parked"]["awaiting"] is True
            assert admin.stats()["reaper"]["expired"] == 0
            admin.flush()
            t.join(timeout=10.0)
            assert done["txn"] > 0


# ----------------------------------------------------------------------
# Load shedding
# ----------------------------------------------------------------------

def test_full_admission_queue_sheds_with_retry_after():
    """With the queue bounded at zero, a begin that would park is
    refused up front with the server's configured backoff hint."""
    config = ServerConfig(engine="nvm-inp", group_commit=_GC,
                          max_inflight=1, max_admission_queue=0,
                          retry_after_s=0.07)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
        holder_client = ReproClient(host, port)
        holder_client.connect()
        holder = holder_client.session("holder")
        holder.begin()
        try:
            shed_probe = ReproClient(host, port, shed_retries=0)
            shed_probe.connect()
            probe_session = shed_probe.session("probe")
            with pytest.raises(RetryAfterError) as info:
                probe_session.begin()
            assert info.value.retry_after_s == pytest.approx(0.07)
            assert shed_probe.stats()["admission"]["shed"] >= 1
            shed_probe.close()
        finally:
            holder.commit()
            holder_client.close()


def test_client_honors_retry_after_and_succeeds():
    """The default client treats RetryAfterError as backpressure, not
    failure: it backs off with jitter and retries until admitted."""
    config = ServerConfig(engine="nvm-inp", group_commit=_GC,
                          max_inflight=1, max_admission_queue=0,
                          retry_after_s=0.02)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
        holder_client = ReproClient(host, port)
        holder_client.connect()
        holder = holder_client.session("holder")
        holder.begin()
        committed = threading.Event()

        def patient():
            with ReproClient(host, port, jitter_seed=5) as c:
                with c.session("patient") as s:
                    s.begin()           # shed until the holder commits
                    s.insert("kv", {"k": 4, "v": "eventually"})
                    s.commit()
                    committed.set()

        t = threading.Thread(target=patient, daemon=True)
        t.start()
        time.sleep(0.15)
        assert not committed.is_set()
        holder.commit()
        assert committed.wait(timeout=10.0)
        t.join(timeout=10.0)
        assert holder_client.stats()["admission"]["shed"] >= 1
        holder_client.close()


# ----------------------------------------------------------------------
# Crash watchdog
# ----------------------------------------------------------------------

def test_watchdog_auto_recovers_after_a_crash():
    config = ServerConfig(engine="nvm-inp", group_commit=_GC,
                          watchdog_recover_s=0.05,
                          reaper_interval_s=0.02)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
            with admin.session("writer") as w:
                w.begin()
                w.insert("kv", {"k": 5, "v": "survivor"})
                w.commit()
            admin.flush()
            assert admin.crash()["crashed"] is True
            assert _poll(lambda: not admin.stats()["crashed"])
            assert admin.stats()["watchdog"]["recoveries"] >= 1
            with admin.session("reader") as r:
                r.begin()
                assert r.get("kv", 5)["v"] == "survivor"
                r.abort()


# ----------------------------------------------------------------------
# Leak accounting across abrupt disconnects
# ----------------------------------------------------------------------

def test_abrupt_disconnect_idle_session_leaks_nothing():
    config = ServerConfig(engine="nvm-inp", group_commit=_GC)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
            client = ReproClient(host, port)
            client.connect()
            client.session("vanisher")
            client.close()              # no session close, no goodbye
            assert _poll(lambda: _no_leaks(admin.stats()))


def test_abrupt_disconnect_in_txn_aborts_and_releases():
    config = ServerConfig(engine="nvm-inp", group_commit=_GC,
                          max_inflight=1)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
            client = ReproClient(host, port)
            client.connect()
            session = client.session("vanisher")
            session.begin()
            session.insert("kv", {"k": 6, "v": "orphan"})
            client.close()              # dies holding lock + slot
            assert _poll(lambda: _no_leaks(admin.stats()))
            with admin.session("reader") as r:
                r.begin()               # the only slot is free again
                assert r.get("kv", 6) is None   # txn aborted
                r.abort()


def test_abrupt_disconnect_parked_on_group_commit_drains_clean():
    """The nastiest state: the client dies while its commit awaits the
    batch's durable point. The durability waiter must still resolve
    (on the next flush) and every resource must come back."""
    config = ServerConfig(engine="nvm-inp", group_commit=_GC_PARKED)
    with ServerThread(config) as thread:
        host, port = thread.server.address
        with ReproClient(host, port) as admin:
            admin.create_table(KV)
            client = ReproClient(host, port, retries=0)
            client.connect()
            outcome = {}

            def committer():
                with client.session("parked") as s:
                    s.begin()
                    s.insert("kv", {"k": 7, "v": "headless"})
                    try:
                        s.commit()
                    except Exception as exc:
                        outcome["exc"] = exc

            t = threading.Thread(target=committer, daemon=True)
            t.start()
            assert _poll(lambda: sum(
                s["pending"] for s in admin.stats()["group_commit"]))
            client._sock.shutdown(socket.SHUT_RDWR)   # abrupt death
            t.join(timeout=10.0)
            assert isinstance(outcome["exc"], ServerDisconnected)
            admin.flush()               # resolves the headless waiter
            assert _poll(lambda: _no_leaks(admin.stats()))
            client.close()
            # The commit itself was applied: it reached the engine
            # before the client died; only the ack had nowhere to go.
            with admin.session("reader") as r:
                r.begin()
                assert r.get("kv", 7)["v"] == "headless"
                r.abort()
