"""Unit tests for the LSM components (MemTable, SSTable, compaction)."""

import pytest

from repro.engines.lsm.compaction import (chain_has_base, coalesce_entries,
                                          merge_entry_chains)
from repro.engines.lsm.memtable import MemTable
from repro.engines.lsm.sstable import SSTable


# ----------------------------------------------------------------------
# MemTable
# ----------------------------------------------------------------------

@pytest.fixture
def memtable(platform):
    return MemTable(platform.allocator, platform.memory), platform


def test_memtable_add_and_get(memtable):
    table, __ = memtable
    table.add(1, "put", b"image")
    chain = table.get_chain(1)
    assert [(entry.kind, entry.data) for entry in chain] \
        == [("put", b"image")]


def test_memtable_chain_order(memtable):
    table, __ = memtable
    table.add(1, "put", b"v0")
    table.add(1, "delta", b"v1")
    table.add(1, "tombstone", b"")
    assert [entry.kind for entry in table.get_chain(1)] \
        == ["put", "delta", "tombstone"]


def test_memtable_remove_entry(memtable):
    table, __ = memtable
    entry = table.add(1, "put", b"x")
    table.remove_entry(1, entry)
    assert table.get_chain(1) == []
    assert 1 not in table
    assert len(table) == 0


def test_memtable_size_accounting(memtable):
    table, __ = memtable
    assert table.size_bytes == 0
    entry = table.add(1, "put", b"x" * 100)
    assert table.size_bytes == entry.size_bytes
    table.remove_entry(1, entry)
    assert table.size_bytes == 0


def test_memtable_immutable_blocks_writes(memtable):
    table, __ = memtable
    table.add(1, "put", b"x")
    table.mark_immutable()
    with pytest.raises(RuntimeError):
        table.add(2, "put", b"y")


def test_memtable_bloom_filters_absent_keys(memtable):
    table, platform = memtable
    for key in range(50):
        table.add(key, "put", b"v")
    table.mark_immutable()
    loads_before = platform.device.loads
    assert table.get_chain(10_000) == []
    # The Bloom filter answered without touching entry allocations.
    assert platform.device.loads == loads_before


def test_memtable_keys_sorted(memtable):
    table, __ = memtable
    for key in [5, 1, 9, 3]:
        table.add(key, "put", b"")
    assert list(table.keys()) == [1, 3, 5, 9]
    assert list(table.keys_in_range(2, 6)) == [3, 5]


def test_memtable_destroy_frees_allocations(platform):
    live_before = platform.allocator.live_allocations
    table = MemTable(platform.allocator, platform.memory)
    for key in range(20):
        table.add(key, "put", b"payload")
    table.destroy()
    assert platform.allocator.live_allocations == live_before


def test_persistent_memtable_survives_crash(platform):
    table = MemTable(platform.allocator, platform.memory,
                     persistent=True)
    table.add(1, "put", b"durable")
    platform.crash()
    chain = table.get_chain(1)
    assert [(entry.kind, entry.data) for entry in chain] \
        == [("put", b"durable")]


def test_volatile_memtable_allocations_reclaimed_on_crash(platform):
    live_before = platform.allocator.live_allocations
    table = MemTable(platform.allocator, platform.memory,
                     persistent=False)
    table.add(1, "put", b"gone")
    platform.crash()  # reclaims index root + entry (all unpersisted)
    assert platform.allocator.live_allocations == live_before


# ----------------------------------------------------------------------
# Compaction helpers
# ----------------------------------------------------------------------

def test_merge_keeps_since_last_base():
    chains = [
        [("put", b"v0"), ("delta", b"d0")],
        [("put", b"v1")],
        [("delta", b"d1")],
    ]
    assert merge_entry_chains(chains) == [("put", b"v1"), ("delta", b"d1")]


def test_merge_tombstone_masks_history():
    chains = [[("put", b"v0")], [("tombstone", b"")]]
    assert merge_entry_chains(chains) == [("tombstone", b"")]


def test_merge_no_base_keeps_deltas():
    chains = [[("delta", b"d0")], [("delta", b"d1")]]
    assert merge_entry_chains(chains) == [("delta", b"d0"),
                                          ("delta", b"d1")]


def test_chain_has_base():
    assert chain_has_base([("put", b"")])
    assert chain_has_base([("delta", b""), ("tombstone", b"")])
    assert not chain_has_base([("delta", b"")])


def test_coalesce_applies_deltas():
    values = coalesce_entries(
        [("put", b"base"), ("delta", b"one"), ("delta", b"two")],
        decode_full=lambda data: {"base": data.decode(), "n": 0},
        decode_delta=lambda data: {"n": data.decode()})
    assert values == {"base": "base", "n": "two"}


def test_coalesce_tombstone_returns_none():
    assert coalesce_entries(
        [("put", b"x"), ("tombstone", b"")],
        decode_full=lambda data: {}, decode_delta=lambda data: {}) is None


def test_coalesce_no_base_returns_none():
    assert coalesce_entries(
        [("delta", b"x")],
        decode_full=lambda data: {}, decode_delta=lambda data: {}) is None


# ----------------------------------------------------------------------
# SSTable
# ----------------------------------------------------------------------

def test_sstable_roundtrip(platform):
    rows = [(key, [("put", bytes([key]))]) for key in range(20)]
    table = SSTable.write(platform.filesystem, "sstable/test/0", rows)
    assert table.get_chain(7) == [("put", bytes([7]))]
    assert table.get_chain(99) == []
    assert table.keys() == list(range(20))


def test_sstable_survives_crash_and_reopen(platform):
    rows = [(key, [("put", b"v")]) for key in range(10)]
    table = SSTable.write(platform.filesystem, "sstable/test/1", rows)
    platform.crash()
    table.open()  # rebuild volatile index + bloom from the file
    assert table.get_chain(5) == [("put", b"v")]


def test_sstable_bloom_avoids_reads(platform):
    rows = [(key, [("put", b"v")]) for key in range(100)]
    table = SSTable.write(platform.filesystem, "sstable/test/2", rows)
    reads_before = platform.stats.counter("fs.reads")
    assert table.get_chain(12345) == []
    assert platform.stats.counter("fs.reads") == reads_before


def test_sstable_rows_in_key_order(platform):
    rows = [(key, [("put", bytes([key % 250]))]) for key in range(30)]
    table = SSTable.write(platform.filesystem, "sstable/test/3", rows)
    assert [key for key, __ in table.rows()] == list(range(30))


def test_sstable_delete_file(platform):
    table = SSTable.write(platform.filesystem, "sstable/test/4",
                          [(1, [("put", b"v")])])
    assert platform.filesystem.exists("sstable/test/4")
    table.delete_file()
    assert not platform.filesystem.exists("sstable/test/4")
    assert table.size_bytes == 0
