"""Failure injection: adversarial crash-model settings.

The platform's crash lottery decides which dirty cache lines reached
NVM before the power failed. These tests pin the lottery to its
extremes (nothing survives / everything survives) and crash at nasty
moments, checking that every engine's recovery still converges to a
consistent committed state.
"""

import pytest

from repro import Column, ColumnType, Database, EngineConfig, Schema
from repro.config import CacheConfig, PlatformConfig
from repro.engines.base import ENGINE_NAMES

#: The six paper engines plus the MVCC extension.
ENGINES = list(ENGINE_NAMES.ALL) + ["nvm-mvcc"]


def make_db(engine, crash_probability, seed=77):
    platform_config = PlatformConfig(
        cache=CacheConfig(capacity_bytes=128 * 1024,
                          crash_eviction_probability=crash_probability),
        seed=seed)
    db = Database(engine=engine, platform_config=platform_config,
                  engine_config=EngineConfig(
                      group_commit_size=5,
                      memtable_threshold_bytes=8 * 1024,
                      nvm_cow_node_size=512), seed=seed)
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("v", ColumnType.INT),
              Column("blob", ColumnType.STRING, capacity=90)],
        primary_key=["k"]))
    return db


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("crash_probability", [0.0, 0.3, 1.0])
def test_acked_commits_survive_any_lottery(engine, crash_probability):
    db = make_db(engine, crash_probability)
    for i in range(80):
        db.insert("t", {"k": i, "v": i, "blob": f"b{i}" * 10})
    for i in range(0, 80, 2):
        db.update("t", i, {"v": -i})
    db.flush()
    db.crash()
    db.recover()
    for i in range(80):
        row = db.get("t", i)
        assert row is not None, (engine, crash_probability, i)
        assert row["v"] == (-i if i % 2 == 0 else i)


@pytest.mark.parametrize("engine", ENGINES)
def test_uncommitted_txn_invisible_under_full_eviction(engine):
    """Even if *every* dirty line reached NVM before the crash, an
    uncommitted transaction must be rolled back."""
    db = make_db(engine, crash_probability=1.0)
    for i in range(20):
        db.insert("t", {"k": i, "v": i, "blob": "x" * 20})
    db.flush()
    partition = db.partitions[0]
    txn = partition.engine.begin()
    partition.engine.insert(txn, "t",
                            {"k": 500, "v": 1, "blob": "dirty"})
    partition.engine.update(txn, "t", 3, {"v": 999})
    db.crash()
    db.recover()
    assert db.get("t", 500) is None
    assert db.get("t", 3)["v"] == 3


@pytest.mark.parametrize("engine", ENGINES)
def test_repeated_crashes_between_every_batch(engine):
    db = make_db(engine, crash_probability=0.5)
    expected = {}
    for batch in range(5):
        for i in range(batch * 10, batch * 10 + 10):
            db.insert("t", {"k": i, "v": i, "blob": "y" * 30})
            expected[i] = i
        db.flush()
        db.crash()
        db.recover()
        for key, value in expected.items():
            row = db.get("t", key)
            assert row is not None and row["v"] == value, \
                (engine, batch, key)


@pytest.mark.parametrize("engine", list(ENGINE_NAMES.NVM_AWARE) + ["nvm-mvcc"])
def test_double_recovery_is_idempotent(engine):
    """Recovering twice (e.g. a crash immediately after recovery) must
    not corrupt anything."""
    db = make_db(engine, crash_probability=0.5)
    for i in range(30):
        db.insert("t", {"k": i, "v": i, "blob": "z" * 10})
    db.flush()
    db.crash()
    db.recover()
    db.crash()
    db.recover()
    for i in range(30):
        assert db.get("t", i)["v"] == i


@pytest.mark.parametrize("engine", ENGINES)
def test_crash_with_interleaved_deletes(engine):
    db = make_db(engine, crash_probability=0.0)
    for i in range(40):
        db.insert("t", {"k": i, "v": i, "blob": "d" * 15})
    for i in range(0, 40, 3):
        db.delete("t", i)
    for i in range(0, 40, 6):  # re-insert a subset of deleted keys
        db.insert("t", {"k": i, "v": 1000 + i, "blob": "re" * 5})
    db.flush()
    db.crash()
    db.recover()
    for i in range(40):
        row = db.get("t", i)
        if i % 6 == 0:
            assert row["v"] == 1000 + i
        elif i % 3 == 0:
            assert row is None
        else:
            assert row["v"] == i
