"""Unit tests for the gzip checkpointer."""

import pytest

from repro.core.schema import Column, ColumnType, Schema
from repro.engines.checkpoint import Checkpointer


@pytest.fixture
def schema():
    return Schema.build("t", [
        Column("k", ColumnType.INT),
        Column("text", ColumnType.STRING, capacity=64),
    ], primary_key=["k"])


def rows(schema, count):
    return [{"k": i, "text": f"row-{i}"} for i in range(count)]


def test_write_read_roundtrip(platform, schema):
    checkpointer = Checkpointer(platform.filesystem, platform.clock)
    data = rows(schema, 50)
    checkpointer.write({"t": (schema, iter(data))})
    recovered = [values for __, values in
                 checkpointer.read({"t": schema})]
    assert recovered == data


def test_multiple_tables(platform, schema):
    other = Schema.build("u", [Column("k", ColumnType.INT),
                               Column("n", ColumnType.INT)],
                         primary_key=["k"])
    checkpointer = Checkpointer(platform.filesystem, platform.clock)
    checkpointer.write({
        "t": (schema, iter(rows(schema, 5))),
        "u": (other, iter([{"k": 1, "n": 2}])),
    })
    by_table = {}
    for name, values in checkpointer.read({"t": schema, "u": other}):
        by_table.setdefault(name, []).append(values)
    assert len(by_table["t"]) == 5
    assert by_table["u"] == [{"k": 1, "n": 2}]


def test_compression_shrinks_redundant_data(platform, schema):
    checkpointer = Checkpointer(platform.filesystem, platform.clock)
    redundant = [{"k": i, "text": "a" * 60} for i in range(200)]
    size = checkpointer.write({"t": (schema, iter(redundant))})
    raw_size = 200 * schema.inlined_size
    assert size < raw_size / 4  # gzip crushes repeated strings


def test_second_checkpoint_replaces_first(platform, schema):
    checkpointer = Checkpointer(platform.filesystem, platform.clock)
    checkpointer.write({"t": (schema, iter(rows(schema, 100)))})
    checkpointer.write({"t": (schema, iter(rows(schema, 1)))})
    recovered = list(checkpointer.read({"t": schema}))
    assert len(recovered) == 1
    assert checkpointer.checkpoints_taken == 2


def test_read_missing_checkpoint_is_empty(platform, schema):
    checkpointer = Checkpointer(platform.filesystem, platform.clock)
    assert list(checkpointer.read({"t": schema})) == []
    assert checkpointer.size_bytes == 0


def test_checkpoint_survives_crash(platform, schema):
    checkpointer = Checkpointer(platform.filesystem, platform.clock)
    checkpointer.write({"t": (schema, iter(rows(schema, 10)))})
    platform.crash()
    recovered = list(checkpointer.read({"t": schema}))
    assert len(recovered) == 10
