"""Crash-recovery conformance: committed (acked) transactions survive a
power failure; uncommitted transactions never become visible."""

import pytest

from repro import Database
from repro.engines.base import ENGINE_NAMES

from .conftest import make_database, sample_row


def crash_and_recover(db: Database) -> float:
    db.crash()
    return db.recover()


def test_committed_survive_crash(db):
    for i in range(60):
        db.insert("items", sample_row(i))
    db.flush()
    crash_and_recover(db)
    for i in range(60):
        assert db.get("items", i) == sample_row(i)


def test_updates_survive_crash(db):
    for i in range(30):
        db.insert("items", sample_row(i))
    for i in range(30):
        db.update("items", i, {"price": float(i) + 0.25,
                               "payload": f"updated-{i}"})
    db.flush()
    crash_and_recover(db)
    for i in range(30):
        row = db.get("items", i)
        assert row["price"] == float(i) + 0.25
        assert row["payload"] == f"updated-{i}"


def test_deletes_survive_crash(db):
    for i in range(30):
        db.insert("items", sample_row(i))
    for i in range(0, 30, 2):
        db.delete("items", i)
    db.flush()
    crash_and_recover(db)
    for i in range(30):
        row = db.get("items", i)
        if i % 2 == 0:
            assert row is None
        else:
            assert row == sample_row(i)


def test_secondary_indexes_correct_after_recovery(db):
    for i in range(28):
        db.insert("items", sample_row(i))
    db.update("items", 0, {"category": 99})
    db.delete("items", 7)
    db.flush()
    crash_and_recover(db)
    assert db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 99)) == [0]
    matches = db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 0))
    assert matches == [14, 21]  # 0 moved to 99, 7 deleted


def test_unacked_commits_may_vanish_but_acked_never(engine_name):
    """Group commit: transactions acknowledged at a flush boundary are
    durable; the tail after the last flush may legitimately be lost."""
    db = make_database(engine_name, group_commit_size=100)
    for i in range(10):
        db.insert("items", sample_row(i))
    db.flush()  # acked: 0..9
    for i in range(10, 15):
        db.insert("items", sample_row(i))  # not yet flushed
    db.crash()
    db.recover()
    for i in range(10):
        assert db.get("items", i) == sample_row(i), \
            f"acked tuple {i} lost by {engine_name}"
    # The unflushed tail must be all-or-nothing per transaction (no
    # torn tuples) — and for immediate-durability engines it survives.
    for i in range(10, 15):
        row = db.get("items", i)
        assert row is None or row == sample_row(i)


def test_multiple_crash_cycles(db):
    for cycle in range(3):
        base = cycle * 20
        for i in range(base, base + 20):
            db.insert("items", sample_row(i))
        db.flush()
        crash_and_recover(db)
    for i in range(60):
        assert db.get("items", i) == sample_row(i)


def test_crash_during_active_txn_rolls_back(engine_name):
    """A transaction in flight at the crash must leave no trace."""
    db = make_database(engine_name)
    for i in range(10):
        db.insert("items", sample_row(i))
    db.flush()
    partition = db.partitions[0]
    engine = partition.engine
    txn = engine.begin()
    engine.insert(txn, "items", sample_row(55))
    engine.update(txn, "items", 1, {"price": -1.0, "payload": "dirty"})
    engine.delete(txn, "items", 2)
    # Crash with the transaction still active (never committed).
    db.crash()
    db.recover()
    assert db.get("items", 55) is None, f"{engine_name}: insert leaked"
    assert db.get("items", 1) == sample_row(1), \
        f"{engine_name}: update leaked"
    assert db.get("items", 2) == sample_row(2), \
        f"{engine_name}: delete leaked"


def test_work_continues_after_recovery(db):
    for i in range(10):
        db.insert("items", sample_row(i))
    db.flush()
    crash_and_recover(db)
    db.insert("items", sample_row(100))
    db.update("items", 0, {"price": 42.0})
    db.delete("items", 1)
    assert db.get("items", 100) == sample_row(100)
    assert db.get("items", 0)["price"] == 42.0
    assert db.get("items", 1) is None


@pytest.mark.parametrize("engine_name", [ENGINE_NAMES.INP])
def test_inp_recovery_uses_checkpoint(engine_name):
    db = make_database(engine_name, checkpoint_interval_txns=25)
    for i in range(60):  # crosses two checkpoint boundaries
        db.insert("items", sample_row(i))
    db.flush()
    engine = db.partitions[0].engine
    assert engine._checkpointer.checkpoints_taken >= 2
    db.crash()
    db.recover()
    for i in range(60):
        assert db.get("items", i) == sample_row(i)


def test_nvm_engines_recover_faster_than_traditional():
    """Fig. 12's headline: NVM-aware recovery latency is independent of
    the number of committed transactions."""
    latencies = {}
    for name in (ENGINE_NAMES.INP, ENGINE_NAMES.NVM_INP,
                 ENGINE_NAMES.LOG, ENGINE_NAMES.NVM_LOG):
        db = make_database(name, checkpoint_interval_txns=10 ** 9,
                           memtable_threshold_bytes=2 ** 30)
        for i in range(300):
            db.insert("items", sample_row(i))
        db.flush()
        db.crash()
        latencies[name] = db.recover()
    assert latencies["inp"] > 20 * latencies["nvm-inp"]
    assert latencies["log"] > 20 * latencies["nvm-log"]


def test_cow_engines_have_no_recovery_process():
    for name in (ENGINE_NAMES.COW, ENGINE_NAMES.NVM_COW):
        db = make_database(name)
        for i in range(100):
            db.insert("items", sample_row(i))
        db.flush()
        db.crash()
        latency = db.recover()
        assert latency < 1e-4, f"{name} recovery should be instant"
        assert db.get("items", 50) == sample_row(50)


def test_recovery_latency_scales_with_history_for_inp():
    """InP replays the whole WAL since the last checkpoint: latency
    grows with committed transactions (Fig. 12, linear series)."""
    results = []
    for txns in (50, 200):
        db = make_database(ENGINE_NAMES.INP,
                           checkpoint_interval_txns=10 ** 9)
        for i in range(txns):
            db.insert("items", sample_row(i))
        db.flush()
        db.crash()
        results.append(db.recover())
    assert results[1] > 2 * results[0]


def test_nvm_inp_recovery_flat_in_history():
    results = []
    for txns in (50, 200):
        db = make_database(ENGINE_NAMES.NVM_INP)
        for i in range(txns):
            db.insert("items", sample_row(i))
        db.flush()
        db.crash()
        results.append(db.recover())
    assert results[1] < results[0] * 5 + 1e-6  # near-constant
