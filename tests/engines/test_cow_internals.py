"""White-box tests for the CoW engine's shadow paging internals."""

import pytest

from repro.engines.base import ENGINE_NAMES

from .conftest import make_database, sample_row


def cow_db(**overrides):
    return make_database(ENGINE_NAMES.COW, **overrides)


def test_master_record_initialized():
    db = cow_db()
    engine = db.partitions[0].engine
    file = engine._file
    assert file.size >= 8  # version + root slots


def test_pages_written_only_at_flush():
    db = cow_db(group_commit_size=10 ** 9)
    engine = db.partitions[0].engine
    size_before = engine._file.size
    for i in range(10):
        db.insert("items", sample_row(i))
    assert engine._file.size == size_before  # dirty only, no pages yet
    db.flush()
    assert engine._file.size > size_before


def test_page_reuse_bounds_file_growth():
    """LMDB-style two-version page recycling: steady-state updates
    must not grow the file without bound."""
    db = cow_db(group_commit_size=4)
    for i in range(60):
        db.insert("items", sample_row(i))
    db.flush()
    engine = db.partitions[0].engine
    size_after_load = engine._file.size
    for round_number in range(120):
        db.update("items", round_number % 60, {"price": 1.0})
    db.flush()
    growth = engine._file.size / size_after_load
    assert growth < 3.0, f"file grew {growth:.1f}x under updates"


def test_demand_load_after_crash():
    db = cow_db()
    for i in range(40):
        db.insert("items", sample_row(i))
    db.flush()
    db.crash()
    db.recover()
    engine = db.partitions[0].engine
    directory = engine._dirs["items"]
    assert not directory.loaded  # lazy: nothing loaded yet
    assert db.get("items", 20) == sample_row(20)
    assert directory.loaded     # first access loaded the directory


def test_page_cache_misses_charged():
    db = cow_db(page_cache_bytes=8 * 1024)  # tiny: 2 pages
    for i in range(120):
        db.insert("items", sample_row(i))
    db.flush()
    device = db.partitions[0].platform.device
    loads_before = device.loads
    for i in range(0, 120, 7):
        db.get("items", i)
    assert device.loads > loads_before  # cold pages re-read


def test_aborted_batches_do_not_leak_pages():
    """Aborted batches rewrite the copied path once but reuse pages
    afterwards: repeated aborts must not grow the file unboundedly."""
    from repro import TransactionAborted
    db = cow_db(group_commit_size=10 ** 9)
    for i in range(20):
        db.insert("items", sample_row(i))
    db.flush()
    engine = db.partitions[0].engine

    def doomed(ctx):
        ctx.update("items", 1, {"price": -1.0})
        ctx.abort()

    sizes = []
    for __ in range(6):
        with pytest.raises(TransactionAborted):
            db.execute(doomed)
        db.flush()
        sizes.append(engine._file.size)
    # After the first rewrite, page recycling keeps the file flat.
    assert sizes[-1] <= sizes[0] + engine.page_size


def test_nvm_cow_slot_pools_track_tuples():
    db = make_database(ENGINE_NAMES.NVM_COW)
    for i in range(25):
        db.insert("items", sample_row(i))
    engine = db.partitions[0].engine
    pools = engine._pools["items"]
    assert pools.fixed.live_count == 25
    db.delete("items", 3)
    db.flush()
    assert pools.fixed.live_count == 24
