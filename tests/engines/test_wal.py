"""Unit tests for the filesystem write-ahead log."""

import pytest

from repro.engines import wal as walmod
from repro.engines.wal import WALEntry, WriteAheadLog, group_entries_by_txn


@pytest.fixture
def wal(platform):
    return WriteAheadLog(platform.filesystem), platform


def test_entry_encode_decode_roundtrip():
    entry = WALEntry(walmod.OP_UPDATE, txn_id=9, table_id=3,
                     key=(1, "a"), before=b"old", after=b"new")
    data = entry.encode()
    decoded, consumed = WALEntry.decode(data, 0)
    assert decoded == entry
    assert consumed == len(data)


def test_commit_marker_roundtrip():
    entry = WALEntry(walmod.OP_COMMIT, txn_id=4)
    decoded, __ = WALEntry.decode(entry.encode(), 0)
    assert decoded.op == walmod.OP_COMMIT
    assert decoded.key is None


def test_append_replay(wal):
    log, __ = wal
    entries = [
        WALEntry(walmod.OP_INSERT, 1, 0, key=5, after=b"tuple"),
        WALEntry(walmod.OP_COMMIT, 1),
        WALEntry(walmod.OP_DELETE, 2, 0, key=5, before=b"tuple"),
    ]
    for entry in entries:
        log.append(entry)
    log.flush()
    assert list(log.replay()) == entries


def test_committed_txn_ids(wal):
    log, __ = wal
    log.append(WALEntry(walmod.OP_INSERT, 1, key=1))
    log.append(WALEntry(walmod.OP_COMMIT, 1))
    log.append(WALEntry(walmod.OP_INSERT, 2, key=2))
    log.flush()
    assert log.committed_txn_ids() == {1}


def test_unflushed_entries_lost_on_crash(wal):
    log, platform = wal
    log.append(WALEntry(walmod.OP_INSERT, 1, key=1))
    log.flush()
    log.append(WALEntry(walmod.OP_INSERT, 2, key=2))
    platform.filesystem.crash()
    assert [entry.txn_id for entry in log.replay()] == [1]


def test_truncate(wal):
    log, __ = wal
    log.append(WALEntry(walmod.OP_INSERT, 1, key=1))
    log.flush()
    log.truncate()
    assert list(log.replay()) == []
    assert log.size_bytes == 0


def test_flush_charges_fsync(wal):
    log, platform = wal
    before = platform.stats.counter("fs.fsyncs")
    log.append(WALEntry(walmod.OP_INSERT, 1, key=1, after=b"x" * 100))
    log.flush()
    assert platform.stats.counter("fs.fsyncs") == before + 1


def test_group_entries_by_txn():
    entries = [
        WALEntry(walmod.OP_INSERT, 1, key=1),
        WALEntry(walmod.OP_UPDATE, 2, key=2),
        WALEntry(walmod.OP_COMMIT, 1),
        WALEntry(walmod.OP_INSERT, 1, key=3),
    ]
    grouped = group_entries_by_txn(iter(entries))
    assert sorted(grouped) == [1, 2]
    assert len(grouped[1]) == 2


def test_insert_entry_size_tracks_tuple_size(wal):
    """Table 3: InP insert logs the full tuple image (T)."""
    log, __ = wal
    small = WALEntry(walmod.OP_INSERT, 1, key=1, after=b"x" * 10)
    large = WALEntry(walmod.OP_INSERT, 1, key=1, after=b"x" * 1000)
    assert len(large.encode()) - len(small.encode()) == 990
