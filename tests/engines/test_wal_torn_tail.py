"""WAL torn-tail handling and checkpoint edge cases."""

from repro.core.schema import Column, ColumnType, Schema
from repro.engines import wal as walmod
from repro.engines.checkpoint import Checkpointer
from repro.engines.wal import WALEntry, WriteAheadLog


def test_replay_ignores_torn_tail(platform):
    """A partially-written final record (fsync never covered it) must
    not break replay of the durable prefix."""
    log = WriteAheadLog(platform.filesystem)
    log.append(WALEntry(walmod.OP_INSERT, 1, key=1, after=b"full"))
    log.flush()
    # Simulate a torn append: only half of the next record's bytes.
    record = WALEntry(walmod.OP_INSERT, 2, key=2,
                      after=b"torn" * 50).encode()
    platform.filesystem.append(log._file, record[:len(record) // 2])
    entries = list(log.replay())
    assert [entry.txn_id for entry in entries] == [1]


def test_replay_on_empty_log(platform):
    log = WriteAheadLog(platform.filesystem)
    assert list(log.replay()) == []
    assert log.committed_txn_ids() == set()


def test_checkpoint_of_empty_tables(platform):
    schema = Schema.build("t", [Column("k", ColumnType.INT)],
                          primary_key=["k"])
    checkpointer = Checkpointer(platform.filesystem, platform.clock)
    size = checkpointer.write({"t": (schema, iter(()))})
    assert size >= 0
    assert list(checkpointer.read({"t": schema})) == []


def test_flush_without_appends_is_free(platform):
    log = WriteAheadLog(platform.filesystem)
    before = platform.stats.counter("fs.fsyncs")
    log.flush()
    assert platform.stats.counter("fs.fsyncs") == before
