"""Engine equivalence: the same workload must produce the same logical
database state on all six engines (including across crash/recover
boundaries). This is the strongest cross-validation of the six
implementations against each other."""

import pytest

from repro import TransactionAborted
from repro.engines.base import ENGINE_NAMES
from repro.sim.rng import derive_rng

from .conftest import make_database, sample_row


def run_scripted_workload(engine_name: str, crash_points=()):
    db = make_database(engine_name, group_commit_size=3,
                       memtable_threshold_bytes=4 * 1024,
                       checkpoint_interval_txns=40)
    rng = derive_rng(99, "equivalence")
    live = set()
    for step in range(250):
        roll = rng.random()
        key = rng.randrange(120)
        if roll < 0.45 or not live:
            if key not in live:
                db.insert("items", sample_row(key))
                live.add(key)
        elif roll < 0.75:
            target = rng.choice(sorted(live))
            db.update("items", target,
                      {"price": float(step),
                       "payload": f"step-{step}-" + "y" * 40})
        elif roll < 0.9:
            target = rng.choice(sorted(live))
            db.delete("items", target)
            live.remove(target)
        else:
            # An aborted multi-op transaction: must leave no trace.
            def doomed(ctx, key=key):
                row = ctx.get("items", key)
                if row is None:
                    ctx.insert("items", sample_row(key))
                else:
                    ctx.update("items", key, {"price": -999.0})
                ctx.abort()

            with pytest.raises(TransactionAborted):
                db.execute(doomed)
        if step in crash_points:
            db.flush()
            db.crash()
            db.recover()
    db.flush()
    return db, {key: values for key, values in db.scan("items")}


def test_all_engines_agree_on_final_state():
    reference = None
    for engine in ENGINE_NAMES.ALL:
        __, state = run_scripted_workload(engine)
        if reference is None:
            reference = state
        else:
            assert state == reference, f"{engine} diverged"


def test_all_engines_agree_across_crashes():
    crash_points = (80, 170)
    reference = None
    for engine in ENGINE_NAMES.ALL:
        __, state = run_scripted_workload(engine,
                                          crash_points=crash_points)
        if reference is None:
            reference = state
        else:
            assert state == reference, f"{engine} diverged after crash"


def test_secondary_indexes_agree_across_engines():
    results = {}
    for engine in ENGINE_NAMES.ALL:
        db, __ = run_scripted_workload(engine)
        results[engine] = {
            category: db.execute(
                lambda ctx, c=category: ctx.get_secondary(
                    "items", "by_category", c))
            for category in range(7)
        }
    reference = results[ENGINE_NAMES.INP]
    for engine, matches in results.items():
        assert matches == reference, f"{engine} secondary diverged"
