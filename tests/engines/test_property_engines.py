"""Property-based cross-engine tests.

Hypothesis drives random operation sequences (including aborts and
crash/recover cycles) against each engine and checks the observable
state against a plain dict model. Durability semantics per engine are
respected: a flush is forced before any crash, so every committed
transaction must survive.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Column, ColumnType, Database, EngineConfig, Schema
from repro.engines.base import ENGINE_NAMES
from repro.errors import DuplicateKeyError, TupleNotFoundError

KEYS = st.integers(min_value=0, max_value=40)

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), KEYS,
                  st.integers(min_value=0, max_value=1000)),
        st.tuples(st.just("update"), KEYS,
                  st.integers(min_value=0, max_value=1000)),
        st.tuples(st.just("delete"), KEYS, st.just(0)),
        st.tuples(st.just("crash"), st.just(0), st.just(0)),
    ),
    max_size=40)


def make_db(engine):
    db = Database(engine=engine, seed=13,
                  engine_config=EngineConfig(
                      group_commit_size=3,
                      checkpoint_interval_txns=25,
                      memtable_threshold_bytes=4 * 1024,
                      nvm_cow_node_size=512))
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("v", ColumnType.INT),
              Column("pad", ColumnType.STRING, capacity=60)],
        primary_key=["k"]))
    return db


@pytest.mark.parametrize("engine", ENGINE_NAMES.ALL)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture,
                                 HealthCheck.too_slow])
@given(operations=OPERATIONS)
def test_property_engine_matches_model(engine, operations):
    db = make_db(engine)
    model = {}
    for kind, key, value in operations:
        if kind == "insert":
            if key in model:
                with pytest.raises(DuplicateKeyError):
                    db.insert("t", {"k": key, "v": value,
                                    "pad": "p" * 30})
            else:
                db.insert("t", {"k": key, "v": value, "pad": "p" * 30})
                model[key] = value
        elif kind == "update":
            if key in model:
                db.update("t", key, {"v": value})
                model[key] = value
            else:
                with pytest.raises(TupleNotFoundError):
                    db.update("t", key, {"v": value})
        elif kind == "delete":
            if key in model:
                db.delete("t", key)
                del model[key]
            else:
                with pytest.raises(TupleNotFoundError):
                    db.delete("t", key)
        else:  # crash (after a durable point, so nothing may be lost)
            db.flush()
            db.crash()
            db.recover()
    db.flush()
    db.crash()
    db.recover()
    observed = {key: values["v"] for key, values in db.scan("t")}
    assert observed == model
