"""Tests for the hybrid DRAM+NVM engine (Appendix D extension)."""

import pytest

from repro import (Column, ColumnType, Database, EngineConfig,
                   LatencyProfile, PlatformConfig, Schema)
from repro.config import CacheConfig
from repro.errors import ConfigError


def make_hybrid_db(latency=None, dram=4 * 1024 * 1024):
    platform_config = PlatformConfig(
        latency=latency or LatencyProfile.dram(),
        cache=CacheConfig(capacity_bytes=128 * 1024),
        dram_capacity_bytes=dram, seed=7)
    db = Database(engine="hybrid-inp", platform_config=platform_config,
                  engine_config=EngineConfig(group_commit_size=4),
                  seed=7)
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("v", ColumnType.STRING, capacity=100)],
        primary_key=["k"]))
    return db


def test_requires_dram_tier():
    with pytest.raises(ConfigError):
        Database(engine="hybrid-inp")


def test_basic_crud_and_recovery():
    db = make_hybrid_db()
    for i in range(100):
        db.insert("t", {"k": i, "v": f"value-{i}"})
    db.update("t", 5, {"v": "patched"})
    db.delete("t", 7)
    db.flush()
    db.crash()
    db.recover()  # indexes rebuilt into DRAM from checkpoint + WAL
    assert db.get("t", 5)["v"] == "patched"
    assert db.get("t", 7) is None
    assert db.get("t", 50)["v"] == "value-50"


def test_indexes_do_not_consume_nvm():
    db = make_hybrid_db()
    for i in range(200):
        db.insert("t", {"k": i, "v": "x" * 50})
    breakdown = db.storage_breakdown()
    assert breakdown["index"] == 0
    assert db.partitions[0].platform.dram.used_bytes > 0


def test_hybrid_beats_inp_at_high_nvm_latency():
    """The Appendix D motivation: DRAM-resident indexes pay off most
    under high NVM latency, read-heavy access."""
    def read_time(engine):
        platform_config = PlatformConfig(
            latency=LatencyProfile.high_nvm(),
            cache=CacheConfig(capacity_bytes=32 * 1024),
            dram_capacity_bytes=8 * 1024 * 1024, seed=7)
        db = Database(engine=engine, platform_config=platform_config,
                      seed=7)
        db.create_table(Schema.build(
            "t", [Column("k", ColumnType.INT),
                  Column("v", ColumnType.STRING, capacity=100)],
            primary_key=["k"]))
        for i in range(500):
            db.insert("t", {"k": i, "v": "y" * 80})
        db.settle()
        start = db.now_ns
        for i in range(0, 500, 3):
            db.get("t", i)
        return db.now_ns - start

    assert read_time("hybrid-inp") < read_time("inp")
