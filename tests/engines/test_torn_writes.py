"""Torn-write scenarios: the crash lottery evicts *some* dirty lines.

With crash_eviction_probability strictly between 0 and 1, a multi-line
tuple write can reach NVM partially (some lines new, some old) — the
torn-write hazard the paper's durability mechanisms exist to handle.
These tests hammer that regime across many seeds.
"""

import pytest

from repro import Column, ColumnType, Database, EngineConfig, Schema
from repro.config import CacheConfig, PlatformConfig
from repro.engines.base import ENGINE_NAMES

ENGINES = list(ENGINE_NAMES.ALL) + ["nvm-mvcc"]


def make_db(engine, seed):
    platform_config = PlatformConfig(
        cache=CacheConfig(capacity_bytes=64 * 1024,
                          crash_eviction_probability=0.5),
        seed=seed)
    db = Database(engine=engine, platform_config=platform_config,
                  engine_config=EngineConfig(
                      group_commit_size=3,
                      memtable_threshold_bytes=8 * 1024,
                      nvm_cow_node_size=512), seed=seed)
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("a", ColumnType.STRING, capacity=120),
              Column("b", ColumnType.STRING, capacity=120)],
        primary_key=["k"]))
    return db


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", [101, 202, 303])
def test_no_torn_tuples_after_crash(engine, seed):
    """Crash mid-flight with an uncommitted multi-field update: after
    recovery each tuple is either fully old or gone/rolled back —
    never a mix of old and new field values."""
    db = make_db(engine, seed)
    for i in range(30):
        db.insert("t", {"k": i, "a": f"old-a-{i}" + "x" * 80,
                        "b": f"old-b-{i}" + "y" * 80})
    db.flush()
    # Leave a large uncommitted update in flight.
    partition = db.partitions[0]
    txn = partition.engine.begin()
    for i in range(0, 30, 3):
        partition.engine.update(
            txn, "t", i, {"a": f"new-a-{i}" + "X" * 80,
                          "b": f"new-b-{i}" + "Y" * 80})
    db.crash()
    db.recover()
    for i in range(30):
        row = db.get("t", i)
        assert row is not None, (engine, seed, i)
        assert row["a"].startswith(f"old-a-{i}"), (engine, seed, i)
        assert row["b"].startswith(f"old-b-{i}"), (engine, seed, i)
        # No cross-contamination between the two fields.
        assert "X" not in row["a"] and "Y" not in row["b"]


@pytest.mark.parametrize("engine", list(ENGINE_NAMES.NVM_AWARE) + ["nvm-mvcc"])
@pytest.mark.parametrize("seed", [11, 22, 33, 44])
def test_committed_multi_field_updates_atomic(engine, seed):
    """Committed updates must be fully visible after any lottery."""
    db = make_db(engine, seed)
    for i in range(20):
        db.insert("t", {"k": i, "a": "init" * 20, "b": "init" * 20})
    for i in range(20):
        db.update("t", i, {"a": f"final-a-{i}" + "p" * 60,
                           "b": f"final-b-{i}" + "q" * 60})
    db.flush()
    db.crash()
    db.recover()
    for i in range(20):
        row = db.get("t", i)
        assert row["a"].startswith(f"final-a-{i}"), (engine, seed)
        assert row["b"].startswith(f"final-b-{i}"), (engine, seed)
