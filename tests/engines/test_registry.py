"""Tests for the engine registry and base-class machinery."""

import pytest

from repro.engines.base import (ENGINE_NAMES, create_engine,
                                engine_names)
from repro.errors import ConfigError, TransactionStateError
from repro.nvm.platform import Platform


def test_all_six_paper_engines_registered():
    names = engine_names()
    for name in ENGINE_NAMES.ALL:
        assert name in names
    # Paper order first.
    assert names[:6] == list(ENGINE_NAMES.ALL)


def test_counterpart_mapping():
    assert ENGINE_NAMES.COUNTERPART == {
        "inp": "nvm-inp", "cow": "nvm-cow", "log": "nvm-log"}


def test_create_engine_unknown():
    with pytest.raises(ConfigError):
        create_engine("not-an-engine", Platform())


def test_nvm_awareness_flags(platform):
    for name in ENGINE_NAMES.TRADITIONAL:
        assert not create_engine(name, Platform()).is_nvm_aware
    for name in ENGINE_NAMES.NVM_AWARE:
        assert create_engine(name, Platform()).is_nvm_aware


def test_duplicate_table_rejected(platform):
    from repro.core.schema import Column, ColumnType, Schema
    engine = create_engine("inp", platform)
    schema = Schema.build("t", [Column("k", ColumnType.INT)],
                          primary_key=["k"])
    engine.create_table(schema)
    from repro.errors import StorageEngineError
    with pytest.raises(StorageEngineError):
        engine.create_table(schema)


def test_unknown_table_rejected(platform):
    from repro.errors import StorageEngineError
    engine = create_engine("inp", platform)
    txn = engine.begin()
    with pytest.raises(StorageEngineError):
        engine.select(txn, "ghost", 1)


def test_double_commit_rejected(platform):
    engine = create_engine("nvm-inp", platform)
    txn = engine.begin()
    engine.commit(txn)
    with pytest.raises(TransactionStateError):
        engine.commit(txn)


def test_abort_after_commit_rejected(platform):
    engine = create_engine("nvm-inp", platform)
    txn = engine.begin()
    engine.commit(txn)
    with pytest.raises(TransactionStateError):
        engine.abort(txn)


def test_timestamps_monotonic(platform):
    engine = create_engine("nvm-inp", platform)
    timestamps = [engine.begin().timestamp for __ in range(5)]
    assert timestamps == sorted(timestamps)
    assert len(set(timestamps)) == 5
