"""Cross-engine conformance: every engine must implement Table 2's
primitive operations with identical observable semantics."""

import pytest

from repro import TransactionAborted
from repro.errors import DuplicateKeyError, TupleNotFoundError

from .conftest import sample_row


def test_insert_select(db):
    db.insert("items", sample_row(1))
    assert db.get("items", 1) == sample_row(1)


def test_select_missing(db):
    assert db.get("items", 12345) is None


def test_insert_duplicate_rejected(db):
    db.insert("items", sample_row(1))
    with pytest.raises(DuplicateKeyError):
        db.insert("items", sample_row(1))


def test_update_single_field(db):
    db.insert("items", sample_row(1))
    db.update("items", 1, {"price": 777.0})
    row = db.get("items", 1)
    assert row["price"] == 777.0
    assert row["payload"] == sample_row(1)["payload"]


def test_update_inline_and_varlen_fields(db):
    db.insert("items", sample_row(1))
    db.update("items", 1, {"label": "new", "payload": "fresh" * 10})
    row = db.get("items", 1)
    assert row["label"] == "new"
    assert row["payload"] == "fresh" * 10


def test_update_missing_raises(db):
    with pytest.raises(TupleNotFoundError):
        db.update("items", 999, {"price": 1.0})


def test_repeated_updates(db):
    db.insert("items", sample_row(1))
    for value in range(10):
        db.update("items", 1, {"price": float(value)})
    assert db.get("items", 1)["price"] == 9.0


def test_delete_then_select(db):
    db.insert("items", sample_row(1))
    db.delete("items", 1)
    assert db.get("items", 1) is None


def test_delete_missing_raises(db):
    with pytest.raises(TupleNotFoundError):
        db.delete("items", 999)


def test_delete_then_reinsert(db):
    db.insert("items", sample_row(1))
    db.delete("items", 1)
    fresh = sample_row(1)
    fresh["price"] = -1.0
    db.insert("items", fresh)
    assert db.get("items", 1)["price"] == -1.0


def test_update_after_delete_raises(db):
    db.insert("items", sample_row(1))
    db.delete("items", 1)
    with pytest.raises(TupleNotFoundError):
        db.update("items", 1, {"price": 1.0})


def test_scan_range(db):
    for i in range(20):
        db.insert("items", sample_row(i))
    rows = db.scan("items", lo=5, hi=10)
    assert [key for key, __ in rows] == [5, 6, 7, 8, 9]
    assert rows[0][1] == sample_row(5)


def test_scan_reflects_deletes(db):
    for i in range(10):
        db.insert("items", sample_row(i))
    db.delete("items", 4)
    keys = [key for key, __ in db.scan("items")]
    assert keys == [0, 1, 2, 3, 5, 6, 7, 8, 9]


def test_secondary_index_tracks_inserts_and_deletes(db):
    for i in range(14):
        db.insert("items", sample_row(i))
    matches = db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 3))
    assert matches == [3, 10]
    db.delete("items", 3)
    matches = db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 3))
    assert matches == [10]


def test_secondary_index_tracks_updates(db):
    db.insert("items", sample_row(1))  # category 1
    db.update("items", 1, {"category": 5})
    assert db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 1)) == []
    assert db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 5)) == [1]


def test_transaction_sees_own_writes(db):
    def procedure(ctx):
        ctx.insert("items", sample_row(50))
        assert ctx.get("items", 50) == sample_row(50)
        ctx.update("items", 50, {"price": 3.0})
        assert ctx.get("items", 50)["price"] == 3.0
        ctx.delete("items", 50)
        assert ctx.get("items", 50) is None

    db.execute(procedure)


def test_abort_insert(db):
    def doomed(ctx):
        ctx.insert("items", sample_row(9))
        ctx.abort()

    with pytest.raises(TransactionAborted):
        db.execute(doomed)
    assert db.get("items", 9) is None


def test_abort_update_restores_old_value(db):
    db.insert("items", sample_row(1))

    def doomed(ctx):
        ctx.update("items", 1, {"price": 0.0, "payload": "garbage"})
        ctx.abort()

    with pytest.raises(TransactionAborted):
        db.execute(doomed)
    assert db.get("items", 1) == sample_row(1)


def test_abort_delete_restores_tuple(db):
    db.insert("items", sample_row(1))

    def doomed(ctx):
        ctx.delete("items", 1)
        ctx.abort()

    with pytest.raises(TransactionAborted):
        db.execute(doomed)
    assert db.get("items", 1) == sample_row(1)


def test_abort_restores_secondary_indexes(db):
    db.insert("items", sample_row(1))

    def doomed(ctx):
        ctx.update("items", 1, {"category": 6})
        ctx.delete("items", 1)
        ctx.insert("items", sample_row(24))  # category 24 % 7 == 3
        ctx.abort()

    with pytest.raises(TransactionAborted):
        db.execute(doomed)
    assert db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 1)) == [1]
    assert db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 6)) == []
    assert db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 3)) == []


def test_abort_mixed_operations(db):
    for i in range(5):
        db.insert("items", sample_row(i))

    def doomed(ctx):
        ctx.update("items", 0, {"price": -5.0})
        ctx.delete("items", 1)
        ctx.insert("items", sample_row(100))
        ctx.update("items", 100, {"label": "zzz"})
        ctx.delete("items", 100)
        ctx.abort()

    with pytest.raises(TransactionAborted):
        db.execute(doomed)
    for i in range(5):
        assert db.get("items", i) == sample_row(i)
    assert db.get("items", 100) is None


def test_many_tuples_consistency(db):
    for i in range(300):
        db.insert("items", sample_row(i))
    for i in range(0, 300, 3):
        db.update("items", i, {"price": -float(i)})
    for i in range(0, 300, 5):
        db.delete("items", i)
    db.flush()
    for i in range(300):
        row = db.get("items", i)
        if i % 5 == 0:
            assert row is None
        elif i % 3 == 0:
            assert row["price"] == -float(i)
        else:
            assert row["price"] == sample_row(i)["price"]


def test_committed_txn_counter(db):
    for i in range(7):
        db.insert("items", sample_row(i))
    assert db.committed_txns == 7
