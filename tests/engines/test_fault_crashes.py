"""Repeated/nested crash scenarios every engine must survive: a crash
during recovery (recovery itself restarted), and recover() called again
after a completed recovery."""

import pytest

from repro.errors import SimulatedCrash
from repro.fault import FaultPlan

from .conftest import ALL_ENGINES, make_database, sample_row


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_crash_during_recovery_then_recover(engine_name):
    db = make_database(engine_name, group_commit_size=1)
    for i in range(8):
        db.insert("items", sample_row(i))
    db.crash()
    # Arm a crash at the very start of recovery: the first recover()
    # attempt dies, the second must complete from the re-crashed state.
    db.arm_faults(FaultPlan([("recovery.begin", 1)]))
    with pytest.raises(SimulatedCrash):
        db.recover()
    db.recover()
    db.disarm_faults()
    for i in range(8):
        row = db.get("items", i)
        assert row is not None and row["price"] == sample_row(i)["price"]


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_crash_late_in_recovery_then_recover(engine_name):
    db = make_database(engine_name, group_commit_size=1)
    for i in range(8):
        db.insert("items", sample_row(i))
    db.update("items", 3, {"label": "upd"})
    db.crash()
    db.arm_faults(FaultPlan([("recovery.end", 1)]))
    with pytest.raises(SimulatedCrash):
        db.recover()
    db.recover()
    db.disarm_faults()
    assert db.get("items", 3)["label"] == "upd"
    assert len(db.scan("items")) == 8


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_double_recover_is_idempotent(engine_name):
    db = make_database(engine_name, group_commit_size=1)
    for i in range(6):
        db.insert("items", sample_row(i))
    db.crash()
    first = db.recover()
    assert first >= 0.0
    # Second recover: the database never crashed again, so it's a no-op.
    assert db.recover() == 0.0
    assert len(db.scan("items")) == 6


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_repeated_crash_recover_cycles(engine_name):
    db = make_database(engine_name, group_commit_size=1)
    for cycle in range(3):
        db.insert("items", sample_row(cycle))
        db.crash()
        db.recover()
    rows = db.scan("items")
    assert [key for key, __ in rows] == [0, 1, 2]


@pytest.mark.parametrize("engine_name", ALL_ENGINES)
def test_fault_hits_are_counted_while_armed(engine_name):
    db = make_database(engine_name, group_commit_size=1)
    db.arm_faults()  # counting mode: no crashes
    db.insert("items", sample_row(1))
    db.crash()
    db.recover()
    hits = db.fault_hits()
    db.disarm_faults()
    assert hits.get("recovery.begin") == 1
    assert hits.get("recovery.end") == 1
