"""Regression test: checkpoints over multiple tables.

The checkpoint serializer builds one row generator per table; an early
version captured the loop variable late, decoding every table's rows
with the *last* table's schema. This test runs a checkpoint + recovery
cycle over several differently-shaped tables.
"""

from repro import Column, ColumnType, Database, EngineConfig, Schema


def test_checkpoint_and_recover_many_tables():
    db = Database(engine="inp",
                  engine_config=EngineConfig(group_commit_size=2),
                  seed=3)
    db.create_table(Schema.build(
        "alpha", [Column("k", ColumnType.INT),
                  Column("text", ColumnType.STRING, capacity=40)],
        primary_key=["k"]))
    db.create_table(Schema.build(
        "beta", [Column("a", ColumnType.INT),
                 Column("b", ColumnType.INT),
                 Column("ratio", ColumnType.FLOAT)],
        primary_key=["a", "b"]))
    db.create_table(Schema.build(
        "gamma", [Column("k", ColumnType.INT),
                  Column("blob", ColumnType.STRING, capacity=200)],
        primary_key=["k"]))

    for i in range(30):
        db.insert("alpha", {"k": i, "text": f"alpha-{i}"})
        db.insert("beta", {"a": i, "b": i * 2, "ratio": i / 7})
        db.insert("gamma", {"k": i, "blob": "g" * (50 + i)})
    db.flush()
    db.checkpoint()  # all three tables in one snapshot

    # More work after the checkpoint, replayed from the WAL.
    for i in range(30, 40):
        db.insert("alpha", {"k": i, "text": f"alpha-{i}"})
    db.update("beta", (3, 6), {"ratio": -1.0})
    db.delete("gamma", 5)
    db.flush()

    db.crash()
    db.recover()

    for i in range(40):
        assert db.get("alpha", i) == {"k": i, "text": f"alpha-{i}"}
    assert db.get("beta", (3, 6))["ratio"] == -1.0
    assert db.get("beta", (4, 8))["ratio"] == 4 / 7
    assert db.get("gamma", 5) is None
    assert db.get("gamma", 6)["blob"] == "g" * 56


def test_runtime_checkpoint_interval_is_adjustable():
    db = Database(engine="inp",
                  engine_config=EngineConfig(
                      checkpoint_interval_txns=10 ** 9))
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("v", ColumnType.INT)], primary_key=["k"]))
    engine = db.partitions[0].engine
    engine.checkpoint_interval_txns = 5
    for i in range(12):
        db.insert("t", {"k": i, "v": i})
    assert engine._checkpointer.checkpoints_taken >= 2


def test_read_only_txns_do_not_advance_checkpoint_clock():
    db = Database(engine="inp",
                  engine_config=EngineConfig(
                      checkpoint_interval_txns=5))
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("v", ColumnType.INT)], primary_key=["k"]))
    db.insert("t", {"k": 1, "v": 1})
    engine = db.partitions[0].engine
    taken = engine._checkpointer.checkpoints_taken
    for __ in range(20):
        db.get("t", 1)
    assert engine._checkpointer.checkpoints_taken == taken
