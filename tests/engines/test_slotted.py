"""Unit tests for the slotted storage pools."""

import pytest

from repro.core.schema import Column, ColumnType, Schema
from repro.core.tuple_codec import STATE_ALLOCATED, STATE_PERSISTED
from repro.engines.slotted import SLOTS_PER_BLOCK, FixedSlotPool, VarlenPool
from repro.errors import InvalidAddressError


@pytest.fixture
def schema():
    return Schema.build("t", [Column("k", ColumnType.INT),
                              Column("v", ColumnType.INT)],
                        primary_key=["k"])


@pytest.fixture
def pool(platform, schema):
    return FixedSlotPool(schema, platform.allocator, platform.memory,
                        persistent=True), platform


def test_allocate_write_read(pool, schema):
    fixed, __ = pool
    addr = fixed.allocate_slot()
    data = bytes([STATE_ALLOCATED]) + b"\x01" * (schema.fixed_slot_size - 1)
    fixed.write_slot(addr, data)
    assert fixed.read_slot(addr) == data


def test_slots_distinct(pool):
    fixed, __ = pool
    addresses = {fixed.allocate_slot() for __unused in range(100)}
    assert len(addresses) == 100


def test_block_growth(pool):
    fixed, __ = pool
    for __unused in range(SLOTS_PER_BLOCK + 1):
        fixed.allocate_slot()
    assert fixed.live_count == SLOTS_PER_BLOCK + 1


def test_free_and_reuse(pool):
    fixed, __ = pool
    addr = fixed.allocate_slot()
    fixed.free_slot(addr)
    assert not fixed.owns(addr)
    assert addr in [fixed.allocate_slot()
                    for __unused in range(SLOTS_PER_BLOCK)]


def test_double_free_rejected(pool):
    fixed, __ = pool
    addr = fixed.allocate_slot()
    fixed.free_slot(addr)
    with pytest.raises(InvalidAddressError):
        fixed.free_slot(addr)


def test_wrong_size_write_rejected(pool):
    fixed, __ = pool
    addr = fixed.allocate_slot()
    with pytest.raises(InvalidAddressError):
        fixed.write_slot(addr, b"tiny")


def test_state_lifecycle(pool, schema):
    fixed, __ = pool
    addr = fixed.allocate_slot()
    fixed.write_slot(addr, bytes([STATE_ALLOCATED])
                     + b"\x00" * (schema.fixed_slot_size - 1))
    assert fixed.read_state(addr) == STATE_ALLOCATED
    fixed.set_state(addr, STATE_PERSISTED, durable=True)
    assert fixed.read_state(addr) == STATE_PERSISTED


def test_recover_unpersisted_reclaims_only_unpersisted(pool, schema):
    fixed, platform = pool
    blank = bytes([STATE_ALLOCATED]) + b"\x00" * (schema.fixed_slot_size - 1)
    kept = fixed.allocate_slot()
    fixed.write_slot(kept, blank)
    fixed.sync_slot(kept)
    fixed.set_state(kept, STATE_PERSISTED, durable=True)
    doomed = fixed.allocate_slot()
    fixed.write_slot(doomed, blank)
    fixed.sync_slot(doomed)
    reclaimed = fixed.recover_unpersisted()
    assert reclaimed == 1
    assert fixed.owns(kept)
    assert not fixed.owns(doomed)


def test_persistent_blocks_survive_crash(platform, schema):
    fixed = FixedSlotPool(schema, platform.allocator, platform.memory,
                          persistent=True)
    addr = fixed.allocate_slot()
    payload = bytes([STATE_PERSISTED]) + b"\x07" * (schema.fixed_slot_size - 1)
    fixed.write_slot(addr, payload)
    fixed.sync_slot(addr)
    platform.crash()
    assert fixed.read_slot(addr) == payload


def test_volatile_pool_destroy_releases_memory(platform, schema):
    fixed = FixedSlotPool(schema, platform.allocator, platform.memory,
                          persistent=False, tag="table")
    fixed.allocate_slot()
    assert platform.allocator.bytes_by_tag()["table"] > 0
    fixed.destroy()
    assert platform.allocator.bytes_by_tag()["table"] == 0


def test_varlen_roundtrip(platform):
    pool = VarlenPool(platform.allocator, platform.memory,
                      persistent=True)
    addr = pool.write(b"hello world")
    assert pool.read(addr) == b"hello world"
    assert pool.contains(addr)
    pool.free(addr)
    assert not pool.contains(addr)


def test_varlen_sync_persists(platform):
    pool = VarlenPool(platform.allocator, platform.memory,
                      persistent=True)
    addr = pool.write(b"data")
    pool.sync(addr)
    platform.crash()
    assert pool.read(addr) == b"data"


def test_varlen_prune_dead_after_crash(platform):
    pool = VarlenPool(platform.allocator, platform.memory,
                      persistent=False)
    pool.write(b"volatile")
    platform.crash()
    assert pool.prune_dead() == 1
    assert pool.live_count == 0
