"""Table 2 semantics: the NVM-aware engines' durability steps.

These tests assert the *mechanism* differences the paper's Table 2 and
Table 3 describe — pointer-sized WAL entries, immediate persistence at
commit, per-transaction log truncation, dirty-directory batching — not
just the observable CRUD behavior (covered by test_conformance).
"""

from repro.engines.base import ENGINE_NAMES

from .conftest import make_database, sample_row


# ----------------------------------------------------------------------
# NVM-InP
# ----------------------------------------------------------------------

def test_nvm_inp_wal_entries_are_pointer_sized():
    """Insert logs a pointer (p), not the tuple (T) — Table 3."""
    db = make_database(ENGINE_NAMES.NVM_INP, group_commit_size=10 ** 9)
    engine = db.partitions[0].engine
    txn = engine.begin()
    engine.insert(txn, "items", sample_row(1))
    entries = engine._nvm_wal.entries_for(txn.txn_id)
    assert len(entries) == 1
    # Tuple pointer + one varlen-field pointer — far below the
    # ~200-byte tuple image the InP engine would log.
    assert entries[0].content_size <= 16
    engine.commit(txn)


def test_nvm_inp_truncates_log_at_commit():
    db = make_database(ENGINE_NAMES.NVM_INP)
    engine = db.partitions[0].engine
    txn = engine.begin()
    engine.insert(txn, "items", sample_row(1))
    assert engine._nvm_wal.entry_count == 1
    engine.commit(txn)
    assert engine._nvm_wal.entry_count == 0


def test_nvm_inp_commit_is_immediately_durable():
    """No group commit wait: crash right after commit (no flush) must
    preserve the transaction."""
    db = make_database(ENGINE_NAMES.NVM_INP, group_commit_size=10 ** 9)
    db.insert("items", sample_row(1))  # commit, but no flush boundary
    db.crash()
    db.recover()
    assert db.get("items", 1) == sample_row(1)


def test_inp_commit_awaits_group_flush():
    """The traditional InP engine's unflushed commits can be lost."""
    db = make_database(ENGINE_NAMES.INP, group_commit_size=10 ** 9)
    db.insert("items", sample_row(1))
    db.crash()
    db.recover()
    assert db.get("items", 1) is None  # WAL never fsync'd


def test_nvm_inp_indexes_not_rebuilt_on_recovery():
    """The non-volatile B+tree survives; recovery does no index work
    proportional to the database."""
    db = make_database(ENGINE_NAMES.NVM_INP)
    for i in range(100):
        db.insert("items", sample_row(i))
    db.flush()
    engine = db.partitions[0].engine
    index_before = id(engine._tables["items"].primary)
    db.crash()
    db.recover()
    assert id(engine._tables["items"].primary) == index_before


def test_inp_indexes_rebuilt_on_recovery():
    db = make_database(ENGINE_NAMES.INP)
    for i in range(20):
        db.insert("items", sample_row(i))
    db.flush()
    engine = db.partitions[0].engine
    index_before = id(engine._tables["items"].primary)
    db.crash()
    db.recover()
    assert id(engine._tables["items"].primary) != index_before


# ----------------------------------------------------------------------
# CoW / NVM-CoW
# ----------------------------------------------------------------------

def test_cow_engines_write_no_log():
    for name in (ENGINE_NAMES.COW, ENGINE_NAMES.NVM_COW):
        db = make_database(name)
        for i in range(20):
            db.insert("items", sample_row(i))
        db.flush()
        assert db.storage_breakdown()["log"] == 0, name


def test_cow_batches_commits_until_flush():
    """Uncommitted batches live only in the dirty directory: a crash
    before the master-record flip erases them."""
    db = make_database(ENGINE_NAMES.COW, group_commit_size=10 ** 9)
    db.insert("items", sample_row(1))
    db.crash()
    db.recover()
    assert db.get("items", 1) is None


def test_nvm_cow_dirty_directory_reclaimed_after_crash():
    db = make_database(ENGINE_NAMES.NVM_COW, group_commit_size=10 ** 9)
    for i in range(10):
        db.insert("items", sample_row(i))
    db.flush()  # durable flip
    table_bytes = db.storage_breakdown()["table"]
    for i in range(10, 20):
        db.insert("items", sample_row(i))  # unflushed batch
    db.crash()
    db.recover()
    # The unflushed tuple copies were reclaimed, not leaked.
    assert db.storage_breakdown()["table"] == table_bytes
    for i in range(10):
        assert db.get("items", i) == sample_row(i)
    for i in range(10, 20):
        assert db.get("items", i) is None


def test_cow_shadow_paging_shares_subtrees():
    # Small pages force a multi-level directory so sharing is visible.
    db = make_database(ENGINE_NAMES.NVM_COW, cow_btree_node_size=512)
    for i in range(200):
        db.insert("items", sample_row(i))
    db.flush()
    tree = db.partitions[0].engine._dirs["items"].tree
    db.update("items", 0, {"price": 9.0})
    shared = tree.shared_node_count()
    total = tree.node_count(dirty=True)
    assert shared > total * 0.5  # most of the tree is shared


def test_cow_update_copies_whole_tuple_nvm_cow_copies_pointer():
    """Table 3: CoW writes B + T per update; NVM-CoW writes T + p but
    into slot pools, with only a pointer in the directory."""
    results = {}
    for name in (ENGINE_NAMES.COW, ENGINE_NAMES.NVM_COW):
        db = make_database(name, group_commit_size=1)
        for i in range(50):
            db.insert("items", sample_row(i))
        db.flush()
        before = db.nvm_counters()["stores"]
        for i in range(50):
            db.update("items", i, {"price": 1.0})
        db.flush()
        results[name] = db.nvm_counters()["stores"] - before
    assert results["nvm-cow"] < results["cow"]


# ----------------------------------------------------------------------
# Log / NVM-Log
# ----------------------------------------------------------------------

def test_log_flushes_memtable_to_sstable():
    db = make_database(ENGINE_NAMES.LOG, memtable_threshold_bytes=2048,
                       group_commit_size=1)
    for i in range(40):
        db.insert("items", sample_row(i))
    db.flush()
    engine = db.partitions[0].engine
    runs = sum(len(level) for level in engine._tables["items"].levels)
    assert runs >= 1
    assert db.storage_breakdown()["table"] > 0
    for i in range(40):
        assert db.get("items", i) == sample_row(i)


def test_log_compaction_bounds_runs():
    db = make_database(ENGINE_NAMES.LOG, memtable_threshold_bytes=1024,
                       group_commit_size=1)
    for i in range(120):
        db.insert("items", sample_row(i))
    db.flush()
    engine = db.partitions[0].engine
    store = engine._tables["items"]
    assert all(len(level) <= engine.config.lsm_max_runs_per_level
               for level in store.levels)
    assert engine.stats.counter("lsm.compactions") > 0
    for i in range(120):
        assert db.get("items", i) == sample_row(i)


def test_nvm_log_rolls_memtables_without_filesystem():
    db = make_database(ENGINE_NAMES.NVM_LOG,
                       memtable_threshold_bytes=2048)
    for i in range(60):
        db.insert("items", sample_row(i))
    engine = db.partitions[0].engine
    store = engine._tables["items"]
    assert sum(len(level) for level in store.mem_levels) >= 1
    assert engine.stats.counter("fs.writes") == 0
    for i in range(60):
        assert db.get("items", i) == sample_row(i)


def test_nvm_log_compaction_merges_immutables():
    db = make_database(ENGINE_NAMES.NVM_LOG,
                       memtable_threshold_bytes=1024)
    for i in range(150):
        db.insert("items", sample_row(i))
    engine = db.partitions[0].engine
    store = engine._tables["items"]
    assert all(len(level) <= engine.config.lsm_max_runs_per_level
               for level in store.mem_levels)
    assert engine.stats.counter("lsm.compactions") > 0
    for i in range(150):
        assert db.get("items", i) == sample_row(i)


def test_nvm_log_truncates_wal_per_txn():
    db = make_database(ENGINE_NAMES.NVM_LOG)
    engine = db.partitions[0].engine
    txn = engine.begin()
    engine.insert(txn, "items", sample_row(1))
    assert engine._nvm_wal.entry_count == 1
    engine.commit(txn)
    assert engine._nvm_wal.entry_count == 0


def test_log_tuple_coalescing_reads_multiple_runs():
    """Updates spread across runs force multi-run reads (the Log
    engine's read amplification)."""
    db = make_database(ENGINE_NAMES.LOG, memtable_threshold_bytes=1024,
                       group_commit_size=1)
    db.insert("items", sample_row(1))
    for round_number in range(30):
        db.update("items", 1, {"price": float(round_number)})
        for filler in range(round_number * 3 + 10, round_number * 3 + 13):
            if db.get("items", filler) is None:
                db.insert("items", sample_row(filler))
    db.flush()
    row = db.get("items", 1)
    assert row["price"] == 29.0
    assert row["payload"] == sample_row(1)["payload"]


def test_tombstones_purged_at_bottom_level():
    db = make_database(ENGINE_NAMES.LOG, memtable_threshold_bytes=512,
                       group_commit_size=1)
    for i in range(30):
        db.insert("items", sample_row(i))
    for i in range(30):
        db.delete("items", i)
    # Force enough flushes to cascade a full compaction.
    for i in range(100, 160):
        db.insert("items", sample_row(i))
    db.flush()
    for i in range(30):
        assert db.get("items", i) is None
