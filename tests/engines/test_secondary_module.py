"""Unit tests for the shared secondary index maintenance helpers."""

import pytest

from repro.core.schema import Column, ColumnType, Schema
from repro.engines.secondary import (secondary_add, secondary_remove,
                                     secondary_update)
from repro.index.stx_btree import STXBTree


@pytest.fixture
def setup():
    schema = Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("grp", ColumnType.INT),
              Column("region", ColumnType.INT)],
        primary_key=["k"],
        secondary_indexes={"by_grp": ["grp"],
                           "by_region_grp": ["region", "grp"]})
    indexes = {"by_grp": STXBTree(node_size=128),
               "by_region_grp": STXBTree(node_size=128)}
    return schema, indexes


def test_add_and_lookup(setup):
    schema, indexes = setup
    secondary_add(schema, indexes, 1, {"k": 1, "grp": 5, "region": 2})
    secondary_add(schema, indexes, 2, {"k": 2, "grp": 5, "region": 3})
    assert indexes["by_grp"].get(5) == {1, 2}
    assert indexes["by_region_grp"].get((2, 5)) == {1}


def test_remove(setup):
    schema, indexes = setup
    values = {"k": 1, "grp": 5, "region": 2}
    secondary_add(schema, indexes, 1, values)
    secondary_remove(schema, indexes, 1, values)
    assert indexes["by_grp"].get(5) is None
    assert indexes["by_region_grp"].get((2, 5)) is None


def test_remove_keeps_other_members(setup):
    schema, indexes = setup
    secondary_add(schema, indexes, 1, {"k": 1, "grp": 5, "region": 2})
    secondary_add(schema, indexes, 2, {"k": 2, "grp": 5, "region": 2})
    secondary_remove(schema, indexes, 1,
                     {"k": 1, "grp": 5, "region": 2})
    assert indexes["by_grp"].get(5) == {2}


def test_remove_missing_is_noop(setup):
    schema, indexes = setup
    secondary_remove(schema, indexes, 9, {"k": 9, "grp": 1, "region": 1})
    assert indexes["by_grp"].get(1) is None


def test_update_moves_between_keys(setup):
    schema, indexes = setup
    old = {"k": 1, "grp": 5, "region": 2}
    new = {"k": 1, "grp": 6, "region": 2}
    secondary_add(schema, indexes, 1, old)
    secondary_update(schema, indexes, 1, old, new)
    assert indexes["by_grp"].get(5) is None
    assert indexes["by_grp"].get(6) == {1}
    # by_region_grp changed too (grp is part of its key).
    assert indexes["by_region_grp"].get((2, 5)) is None
    assert indexes["by_region_grp"].get((2, 6)) == {1}


def test_update_with_unchanged_keys_is_noop(setup):
    schema, indexes = setup
    values = {"k": 1, "grp": 5, "region": 2}
    secondary_add(schema, indexes, 1, values)
    secondary_update(schema, indexes, 1, values, dict(values))
    assert indexes["by_grp"].get(5) == {1}
