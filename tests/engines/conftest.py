"""Fixtures shared by the engine conformance tests."""

from __future__ import annotations

import pytest

from repro import Column, ColumnType, Database, EngineConfig, Schema
from repro.engines.base import ENGINE_NAMES

# The six paper engines plus the SOFORT-style MVCC extension — all of
# them must satisfy the same observable semantics.
ALL_ENGINES = list(ENGINE_NAMES.ALL) + ["nvm-mvcc"]


def standard_schema() -> Schema:
    return Schema.build(
        "items",
        [Column("id", ColumnType.INT),
         Column("category", ColumnType.INT),
         Column("label", ColumnType.STRING, capacity=8),
         Column("payload", ColumnType.STRING, capacity=120),
         Column("price", ColumnType.FLOAT)],
        primary_key=["id"],
        secondary_indexes={"by_category": ["category"]})


def make_database(engine_name: str, **config_overrides) -> Database:
    defaults = dict(group_commit_size=4, checkpoint_interval_txns=500,
                    memtable_threshold_bytes=16 * 1024)
    defaults.update(config_overrides)
    db = Database(engine=engine_name, seed=23,
                  engine_config=EngineConfig(**defaults))
    db.create_table(standard_schema())
    return db


def sample_row(i: int) -> dict:
    return {"id": i, "category": i % 7, "label": f"l{i % 10}",
            "payload": f"payload-{i}-" + "x" * 60,
            "price": float(i) * 1.5}


@pytest.fixture(params=ALL_ENGINES)
def db(request) -> Database:
    """One Database per engine — conformance tests run 6x."""
    return make_database(request.param)


@pytest.fixture(params=ALL_ENGINES)
def engine_name(request) -> str:
    return request.param
