"""Fixtures shared by the engine conformance tests."""

from __future__ import annotations

import pytest

from repro import Column, ColumnType, Database, EngineConfig, Schema
from repro.engines.base import ENGINE_NAMES

# The six paper engines plus the SOFORT-style MVCC extension — all of
# them must satisfy the same observable semantics.
ALL_ENGINES = list(ENGINE_NAMES.ALL) + ["nvm-mvcc"]


def standard_schema() -> Schema:
    return Schema.build(
        "items",
        [Column("id", ColumnType.INT),
         Column("category", ColumnType.INT),
         Column("label", ColumnType.STRING, capacity=8),
         Column("payload", ColumnType.STRING, capacity=120),
         Column("price", ColumnType.FLOAT)],
        primary_key=["id"],
        secondary_indexes={"by_category": ["category"]})


def make_database(engine_name: str, **config_overrides) -> Database:
    defaults = dict(group_commit_size=4, checkpoint_interval_txns=500,
                    memtable_threshold_bytes=16 * 1024)
    defaults.update(config_overrides)
    db = Database(engine=engine_name, seed=23,
                  engine_config=EngineConfig(**defaults))
    db.create_table(standard_schema())
    return db


def sample_row(i: int) -> dict:
    return {"id": i, "category": i % 7, "label": f"l{i % 10}",
            "payload": f"payload-{i}-" + "x" * 60,
            "price": float(i) * 1.5}


@pytest.fixture(params=ALL_ENGINES)
def db(request) -> Database:
    """One Database per engine — conformance tests run 6x.

    Every run doubles as a persistence-ordering check: an
    :class:`OrderingChecker` observes each partition and the fixture
    fails the test at teardown if any hard ordering violation
    (ORD001-ORD004) was recorded. Redundant-flush lints (ORD005) and
    the leak check (ORD006, timing-sensitive at arbitrary teardown
    points) are not enforced here — `repro check` covers those.
    """
    from repro.analysis.ordering import OrderingChecker

    database = make_database(request.param)
    checkers = [OrderingChecker(partition.platform,
                                engine=request.param).attach()
                for partition in database.partitions]
    yield database
    reports = [checker.report() for checker in checkers]
    for checker in checkers:
        checker.detach()
    problems = [f"{report.engine}: {violation}"
                for report in reports
                for violation in report.violations]
    assert not problems, \
        "persistence-ordering violations:\n" + "\n".join(problems)


@pytest.fixture(params=ALL_ENGINES)
def engine_name(request) -> str:
    return request.param
