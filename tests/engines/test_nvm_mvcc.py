"""Tests for the SOFORT-style MVCC engine extension."""

import pytest

from repro import TransactionAborted
from repro.errors import DuplicateKeyError, TupleNotFoundError

from .conftest import make_database, sample_row


def mvcc_db(**overrides):
    return make_database("nvm-mvcc", **overrides)


def test_basic_crud():
    db = mvcc_db()
    db.insert("items", sample_row(1))
    assert db.get("items", 1) == sample_row(1)
    db.update("items", 1, {"price": 42.0})
    assert db.get("items", 1)["price"] == 42.0
    db.delete("items", 1)
    assert db.get("items", 1) is None
    with pytest.raises(TupleNotFoundError):
        db.update("items", 1, {"price": 0.0})


def test_duplicate_insert_rejected():
    db = mvcc_db()
    db.insert("items", sample_row(1))
    with pytest.raises(DuplicateKeyError):
        db.insert("items", sample_row(1))


def test_update_creates_new_version_and_gc_reclaims_old():
    db = mvcc_db()
    engine = db.partitions[0].engine
    db.insert("items", sample_row(1))
    pool = engine._tables["items"].pool
    assert pool.live_count == 1
    db.update("items", 1, {"price": 2.0})
    # The superseded version was reclaimed at commit.
    assert pool.live_count == 1
    for __ in range(20):
        db.update("items", 1, {"price": 3.0})
    assert pool.live_count == 1


def test_commit_is_one_watermark_write():
    db = mvcc_db()
    engine = db.partitions[0].engine
    db.insert("items", sample_row(1))
    first = engine.watermark()
    assert first > 0
    db.update("items", 1, {"price": 9.0})
    assert engine.watermark() > first
    # Read-only transactions do not advance the watermark.
    db.get("items", 1)
    assert engine.watermark() == engine.watermark()


def test_no_log_images_ever():
    """The in-flight registry holds pointers, never tuple images."""
    db = mvcc_db()
    engine = db.partitions[0].engine
    txn = engine.begin()
    engine.insert(txn, "items", sample_row(5))
    engine.update(txn, "items", 5, {"payload": "replaced" * 10})
    records = engine._inflight.entries_for(txn.txn_id)
    assert all(record.before_fields == b"" for record in records)
    assert all(record.content_size <= 8 for record in records)
    engine.commit(txn)
    assert engine._inflight.entry_count == 0


def test_abort_restores_previous_version():
    db = mvcc_db()
    db.insert("items", sample_row(1))

    def doomed(ctx):
        ctx.update("items", 1, {"price": -1.0, "payload": "dirty"})
        ctx.delete("items", 1)
        ctx.insert("items", sample_row(77))
        ctx.abort()

    with pytest.raises(TransactionAborted):
        db.execute(doomed)
    assert db.get("items", 1) == sample_row(1)
    assert db.get("items", 77) is None


def test_committed_work_survives_crash():
    db = mvcc_db()
    for i in range(40):
        db.insert("items", sample_row(i))
    for i in range(0, 40, 2):
        db.update("items", i, {"price": float(i) + 0.5})
    for i in range(0, 40, 5):
        db.delete("items", i)
    db.flush()
    db.crash()
    seconds = db.recover()
    assert seconds < 1e-3  # undo-only, instant
    for i in range(40):
        row = db.get("items", i)
        if i % 5 == 0:
            assert row is None
        elif i % 2 == 0:
            assert row["price"] == float(i) + 0.5
        else:
            assert row == sample_row(i)


def test_inflight_txn_rolled_back_by_recovery():
    db = mvcc_db()
    for i in range(10):
        db.insert("items", sample_row(i))
    db.flush()
    engine = db.partitions[0].engine
    txn = engine.begin()
    engine.update(txn, "items", 1, {"price": -5.0})
    engine.delete(txn, "items", 2)
    engine.insert(txn, "items", sample_row(99))
    db.crash()
    db.recover()
    assert db.get("items", 1) == sample_row(1)
    assert db.get("items", 2) == sample_row(2)
    assert db.get("items", 99) is None


def test_secondary_indexes_track_versions():
    db = mvcc_db()
    for i in range(14):
        db.insert("items", sample_row(i))
    db.update("items", 3, {"category": 99})
    matches = db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 99))
    assert matches == [3]
    db.flush()
    db.crash()
    db.recover()
    matches = db.execute(
        lambda ctx: ctx.get_secondary("items", "by_category", 99))
    assert matches == [3]


def test_matches_nvm_inp_final_state():
    """Same scripted workload as the six-engine equivalence check."""
    from .test_equivalence import run_scripted_workload
    __, reference = run_scripted_workload("nvm-inp")
    __, state = run_scripted_workload("nvm-mvcc")
    assert state == reference


def test_footprint_has_no_persistent_log():
    db = mvcc_db()
    for i in range(50):
        db.insert("items", sample_row(i))
    db.flush()
    breakdown = db.storage_breakdown()
    # Truncated registry: at most the 8-byte anchor remains.
    assert breakdown["log"] < 100
    assert breakdown["checkpoint"] == 0
