"""Unit tests for the non-volatile linked-list WAL."""

import pytest

from repro.engines.nvm_wal import ENTRY_HEADER_SIZE, NVMWal, NVMWalRecord


@pytest.fixture
def wal(platform):
    return NVMWal(platform.allocator, platform.memory), platform


def test_append_and_read_back(wal):
    log, __ = wal
    record = NVMWalRecord("insert", "t", key=1, tuple_ptr=0x100)
    log.append(txn_id=1, record=record)
    assert log.entries_for(1) == [record]


def test_entries_in_append_order(wal):
    log, __ = wal
    records = [NVMWalRecord("insert", "t", key=i, tuple_ptr=i + 1)
               for i in range(5)]
    for record in records:
        log.append(1, record)
    assert log.entries_for(1) == records


def test_truncate_txn(wal):
    log, platform = wal
    log.append(1, NVMWalRecord("insert", "t", key=1, tuple_ptr=8))
    log.append(2, NVMWalRecord("insert", "t", key=2, tuple_ptr=16))
    live_before = platform.allocator.live_allocations
    assert log.truncate_txn(1) == 1
    assert platform.allocator.live_allocations == live_before - 1
    assert log.active_txn_ids() == [2]
    assert log.truncate_txn(1) == 0  # idempotent


def test_entries_survive_crash(wal):
    log, platform = wal
    record = NVMWalRecord("update", "t", key=1, tuple_ptr=64,
                          before_fields=b"before")
    log.append(7, record)
    platform.crash()
    assert log.active_txn_ids() == [7]
    assert log.entries_for(7) == [record]


def test_truncated_entries_gone_after_crash(wal):
    log, platform = wal
    log.append(7, NVMWalRecord("insert", "t", key=1, tuple_ptr=8))
    log.truncate_txn(7)
    platform.crash()
    assert log.active_txn_ids() == []


def test_pointer_entries_are_small(wal):
    """Table 3: NVM-InP insert logs only a pointer (p), not the tuple."""
    log, __ = wal
    entry = log.append(1, NVMWalRecord("insert", "t", key=1,
                                       tuple_ptr=0x40))
    assert entry.size <= ENTRY_HEADER_SIZE + 8


def test_update_record_accounts_before_image(wal):
    log, __ = wal
    record = NVMWalRecord("update", "t", key=1, tuple_ptr=0x40,
                          before_fields=b"f" * 16,
                          before_varlen=(("c", 0x80),))
    assert record.content_size == 8 + 16 + 8


def test_append_is_durable_immediately(wal):
    log, platform = wal
    syncs_before = platform.stats.counter("cache.sync")
    log.append(1, NVMWalRecord("insert", "t", key=1, tuple_ptr=8))
    # entry sync + atomic anchor update
    assert platform.stats.counter("cache.sync") >= syncs_before + 2


def test_head_pointer_tracks_latest(wal):
    log, __ = wal
    assert log.head_ptr() is None
    first = log.append(1, NVMWalRecord("insert", "t", key=1, tuple_ptr=8))
    assert log.head_ptr() == first.addr
    second = log.append(1, NVMWalRecord("insert", "t", key=2, tuple_ptr=9))
    assert log.head_ptr() == second.addr


def test_size_accounting(wal):
    log, __ = wal
    assert log.size_bytes == 0
    log.append(1, NVMWalRecord("insert", "t", key=1, tuple_ptr=8))
    assert log.size_bytes > 0
    assert log.entry_count == 1
