"""Unit tests for the YCSB workload generator."""

import pytest

from repro import Database, EngineConfig
from repro.errors import WorkloadError
from repro.workloads.ycsb import (MIXTURES, YCSBConfig, YCSBWorkload,
                                  NUM_VALUE_COLUMNS, VALUE_COLUMN_BYTES)


def test_schema_shape():
    schema = YCSBWorkload.schema()
    assert len(schema.columns) == 1 + NUM_VALUE_COLUMNS
    assert schema.primary_key == ("ycsb_key",)
    # ~1 KB tuples: 10 x 100-byte string fields.
    assert schema.inlined_size >= NUM_VALUE_COLUMNS * VALUE_COLUMN_BYTES


def test_invalid_config_rejected():
    with pytest.raises(WorkloadError):
        YCSBConfig(mixture="nope")
    with pytest.raises(WorkloadError):
        YCSBConfig(skew="sideways")
    with pytest.raises(WorkloadError):
        YCSBConfig(num_tuples=0)


def test_mixture_fractions():
    config = YCSBConfig(num_tuples=100, mixture="write-heavy",
                        skew="low", seed=3)
    workload = YCSBWorkload(config)
    operations = list(workload.operations(5000))
    updates = sum(1 for kind, __, __k in operations if kind == "update")
    assert 0.85 < updates / 5000 < 0.95


def test_read_only_has_no_updates():
    workload = YCSBWorkload(YCSBConfig(num_tuples=100,
                                       mixture="read-only"))
    assert all(kind == "read"
               for kind, __, __k in workload.operations(500))


def test_operations_deterministic():
    def ops():
        workload = YCSBWorkload(YCSBConfig(num_tuples=50, seed=9))
        return list(workload.operations(200))

    assert ops() == ops()


def test_keys_respect_partition_ranges():
    workload = YCSBWorkload(YCSBConfig(num_tuples=100), partitions=4)
    for __, pid, key in workload.operations(400):
        base = pid * workload.tuples_per_partition
        assert base <= key < base + workload.tuples_per_partition


def test_load_and_run_roundtrip():
    config = YCSBConfig(num_tuples=60, mixture="balanced", skew="high",
                        seed=2)
    workload = YCSBWorkload(config)
    db = Database(engine="nvm-inp",
                  engine_config=EngineConfig(group_commit_size=4))
    assert workload.load(db) == 60
    committed = workload.run(db, 120)
    assert committed == 120
    assert db.committed_txns == 60 + 120
    # Every key still resolves to a full tuple.
    row = db.get("usertable", 0, partition=0)
    assert set(row) == set(YCSBWorkload.schema().column_names)


def test_high_skew_concentrates_accesses():
    workload = YCSBWorkload(YCSBConfig(num_tuples=1000, skew="high"))
    keys = [key for __, __p, key in workload.operations(5000)]
    hot = sum(1 for key in keys if key < 100)
    assert hot / len(keys) > 0.85


def test_all_mixtures_defined():
    assert set(MIXTURES) == {"read-only", "read-heavy", "balanced",
                             "write-heavy"}
    assert MIXTURES["read-only"] == 0.0
    assert MIXTURES["write-heavy"] == 0.9
