"""TPC-C equivalence: the same transaction stream must leave the same
database state on every engine — the strongest cross-engine check on a
realistic multi-table workload."""

import pytest

from repro import Database, EngineConfig
from repro.engines.base import ENGINE_NAMES
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.tpcc_audit import audit_tpcc

CONFIG = TPCCConfig(warehouses=1, districts_per_warehouse=2,
                    customers_per_district=8, items=25,
                    initial_orders_per_district=4, seed=61)


def final_state(engine, crash=False):
    workload = TPCCWorkload(CONFIG)
    db = Database(engine=engine, seed=61,
                  engine_config=EngineConfig(
                      group_commit_size=4,
                      memtable_threshold_bytes=16 * 1024,
                      nvm_cow_node_size=512))
    workload.load(db)
    workload.run(db, 60)
    if crash:
        db.crash()
        db.recover()
    state = {}
    for table in ("warehouse", "district", "customer", "orders",
                  "new_order", "order_line", "stock", "history"):
        state[table] = db.scan(table)
    assert audit_tpcc(db, CONFIG) == [], engine
    return state


@pytest.mark.slow
def test_tpcc_identical_across_engines():
    reference = final_state(ENGINE_NAMES.INP)
    for engine in ENGINE_NAMES.ALL[1:]:
        state = final_state(engine)
        for table, rows in reference.items():
            assert state[table] == rows, (engine, table)


@pytest.mark.slow
def test_tpcc_identical_after_crash():
    reference = final_state(ENGINE_NAMES.INP, crash=True)
    for engine in (ENGINE_NAMES.NVM_INP, ENGINE_NAMES.NVM_COW,
                   ENGINE_NAMES.NVM_LOG):
        state = final_state(engine, crash=True)
        for table, rows in reference.items():
            assert state[table] == rows, (engine, table)
