"""Unit tests for the hotspot access distribution."""

import pytest

from repro.errors import WorkloadError
from repro.sim.rng import derive_rng
from repro.workloads.distributions import HotspotDistribution


def make_dist(population=1000, hot_fraction=0.2, hot_probability=0.5,
              seed=1):
    return HotspotDistribution(population, hot_fraction,
                               hot_probability, derive_rng(seed, "d"))


def test_samples_within_population():
    dist = make_dist()
    assert all(0 <= dist.sample() < 1000 for __ in range(1000))


def test_low_skew_hits_hot_set_half_the_time():
    dist = make_dist(hot_fraction=0.2, hot_probability=0.5)
    hits = sum(1 for key in dist.sample_many(20_000)
               if key < dist.hot_size)
    assert 0.45 < hits / 20_000 < 0.55


def test_high_skew_hits_hot_set_ninety_percent():
    dist = make_dist(hot_fraction=0.1, hot_probability=0.9)
    hits = sum(1 for key in dist.sample_many(20_000)
               if key < dist.hot_size)
    assert 0.87 < hits / 20_000 < 0.93


def test_cold_keys_still_sampled():
    dist = make_dist(hot_fraction=0.1, hot_probability=0.9)
    assert any(key >= dist.hot_size for key in dist.sample_many(1000))


def test_full_hot_fraction_is_uniform():
    dist = make_dist(hot_fraction=1.0, hot_probability=0.5,
                     population=10)
    seen = set(dist.sample_many(500))
    assert seen == set(range(10))


def test_deterministic_given_seed():
    a = make_dist(seed=5)
    b = make_dist(seed=5)
    assert a.sample_many(100) == b.sample_many(100)


def test_invalid_parameters_rejected():
    with pytest.raises(WorkloadError):
        make_dist(population=0)
    with pytest.raises(WorkloadError):
        make_dist(hot_fraction=0.0)
    with pytest.raises(WorkloadError):
        make_dist(hot_fraction=1.5)
    with pytest.raises(WorkloadError):
        make_dist(hot_probability=-0.1)
