"""TPC-C across multiple partitions (one warehouse per partition, as
in the paper's eight-warehouse / eight-partition configuration)."""

import pytest

from repro import Database, EngineConfig
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.tpcc_audit import audit_tpcc

CONFIG = TPCCConfig(warehouses=2, districts_per_warehouse=2,
                    customers_per_district=8, items=25,
                    initial_orders_per_district=4, seed=67)


@pytest.mark.parametrize("engine", ["inp", "nvm-inp"])
def test_partitioned_tpcc_consistent(engine):
    workload = TPCCWorkload(CONFIG, partitions=2)
    db = Database(engine=engine, partitions=2, seed=67,
                  engine_config=EngineConfig(group_commit_size=4))
    workload.load(db)
    executed = workload.run(db, 80)
    assert sum(executed.values()) == 80
    assert audit_tpcc(db, CONFIG, partitions=2) == []


def test_partitioned_tpcc_survives_crash():
    workload = TPCCWorkload(CONFIG, partitions=2)
    db = Database(engine="nvm-inp", partitions=2, seed=67,
                  engine_config=EngineConfig(group_commit_size=4))
    workload.load(db)
    workload.run(db, 60)
    db.crash()
    db.recover()
    assert audit_tpcc(db, CONFIG, partitions=2) == []


def test_warehouses_isolated_to_their_partitions():
    workload = TPCCWorkload(CONFIG, partitions=2)
    db = Database(engine="nvm-inp", partitions=2, seed=67)
    workload.load(db)
    # Warehouse 1 lives on partition 0, warehouse 2 on partition 1.
    assert db.get("warehouse", 1, partition=0) is not None
    assert db.get("warehouse", 1, partition=1) is None
    assert db.get("warehouse", 2, partition=1) is not None
    assert db.get("warehouse", 2, partition=0) is None
