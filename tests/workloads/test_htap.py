"""Tests for the HTAP workload extension."""

import pytest

from repro import Database, EngineConfig
from repro.errors import WorkloadError
from repro.workloads.htap import HTAPConfig, HTAPWorkload


def test_invalid_config_rejected():
    with pytest.raises(WorkloadError):
        HTAPConfig(scan_fraction=1.5)
    with pytest.raises(WorkloadError):
        HTAPConfig(scan_coverage=0.0)
    with pytest.raises(WorkloadError):
        HTAPConfig(scan_fraction=0.6, update_fraction=0.6)


def test_operation_mix():
    workload = HTAPWorkload(HTAPConfig(num_tuples=500,
                                       scan_fraction=0.2, seed=1))
    kinds = [kind for kind, __ in workload.operations(2000)]
    scans = kinds.count("scan") / len(kinds)
    assert 0.15 < scans < 0.25


def test_runs_on_engines():
    for engine in ("nvm-inp", "log"):
        workload = HTAPWorkload(HTAPConfig(num_tuples=200,
                                           scan_fraction=0.1, seed=2))
        db = Database(engine=engine, seed=2,
                      engine_config=EngineConfig(
                          memtable_threshold_bytes=16 * 1024))
        workload.load(db)
        counts = workload.run(db, 100)
        assert sum(counts.values()) == 100
        assert counts["scan"] > 0


def test_scan_results_correct():
    workload = HTAPWorkload(HTAPConfig(num_tuples=100, seed=3))
    db = Database(engine="nvm-inp", seed=3)
    workload.load(db)
    from repro.workloads.htap import _scan_txn
    total = db.execute(_scan_txn, workload.TABLE, 0, 10, partition=0)
    # 10 tuples x 100-byte field0.
    assert total == 1000
