"""TPC-C consistency-audit tests across engines and crashes."""

import pytest

from repro import Database, EngineConfig
from repro.engines.base import ENGINE_NAMES
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.tpcc_audit import audit_tpcc

CONFIG = TPCCConfig(warehouses=1, districts_per_warehouse=2,
                    customers_per_district=10, items=30,
                    initial_orders_per_district=6, seed=19)


def run_mix(engine, num_txns=80, crash=False):
    workload = TPCCWorkload(CONFIG)
    db = Database(engine=engine, seed=19,
                  engine_config=EngineConfig(
                      group_commit_size=4,
                      memtable_threshold_bytes=16 * 1024,
                      nvm_cow_node_size=512))
    workload.load(db)
    workload.run(db, num_txns)
    if crash:
        db.crash()
        db.recover()
    return db


def test_audit_clean_after_load():
    workload = TPCCWorkload(CONFIG)
    db = Database(engine="nvm-inp", seed=19)
    workload.load(db)
    assert audit_tpcc(db, CONFIG) == []


@pytest.mark.parametrize("engine", ENGINE_NAMES.ALL)
def test_audit_clean_after_mix(engine):
    db = run_mix(engine)
    assert audit_tpcc(db, CONFIG) == []


@pytest.mark.parametrize("engine", [ENGINE_NAMES.INP,
                                    ENGINE_NAMES.NVM_INP,
                                    ENGINE_NAMES.NVM_COW,
                                    ENGINE_NAMES.LOG])
def test_audit_clean_after_crash_recovery(engine):
    db = run_mix(engine, crash=True)
    assert audit_tpcc(db, CONFIG) == []


def test_audit_detects_injected_inconsistency():
    db = run_mix("nvm-inp", num_txns=20)
    # Corrupt the warehouse YTD outside any payment.
    row = db.get("warehouse", 1, partition=0)
    db.update("warehouse", 1, {"w_ytd": row["w_ytd"] + 123.0},
              partition=0)
    violations = audit_tpcc(db, CONFIG)
    assert any("C1" in violation for violation in violations)


def test_audit_detects_orphan_new_order():
    db = run_mix("nvm-inp", num_txns=20)
    db.insert("new_order",
              {"no_w_id": 1, "no_d_id": 1, "no_o_id": 888888},
              partition=0)
    violations = audit_tpcc(db, CONFIG)
    assert any("C3" in violation for violation in violations)


def test_audit_detects_missing_order_lines():
    db = run_mix("nvm-inp", num_txns=20)
    # Claim one more order line than exists.
    orders = db.execute(lambda ctx: list(
        ctx.scan("orders", lo=(1, 1, 0), hi=(1, 1, 10 ** 9))),
        partition=0)
    key, values = orders[0]
    db.update("orders", key, {"o_ol_cnt": values["o_ol_cnt"] + 1},
              partition=0)
    violations = audit_tpcc(db, CONFIG)
    assert any("C4" in violation for violation in violations)
