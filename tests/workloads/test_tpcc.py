"""Unit and integration tests for the TPC-C workload."""

import pytest

from repro import Database, EngineConfig
from repro.workloads.tpcc import (TPCCConfig, TPCCWorkload, TXN_MIX,
                                  tpcc_schemas)


@pytest.fixture(scope="module")
def loaded():
    """One loaded TPC-C database shared by the read-mostly tests."""
    config = TPCCConfig(warehouses=1, districts_per_warehouse=2,
                        customers_per_district=10, items=20,
                        initial_orders_per_district=8, seed=5)
    workload = TPCCWorkload(config)
    db = Database(engine="nvm-inp",
                  engine_config=EngineConfig(group_commit_size=8))
    counts = workload.load(db)
    return db, workload, counts, config


def test_nine_tables():
    schemas = tpcc_schemas()
    assert len(schemas) == 9
    assert {schema.table for schema in schemas} == {
        "item", "warehouse", "district", "customer", "history",
        "new_order", "orders", "order_line", "stock"}


def test_mix_sums_to_one():
    assert sum(fraction for __, fraction in TXN_MIX) \
        == pytest.approx(1.0)
    # ~88% of the mix modifies the database (paper, Section 5.1).
    writes = sum(fraction for name, fraction in TXN_MIX
                 if name in ("new_order", "payment"))
    assert writes == pytest.approx(0.88)


def test_load_counts(loaded):
    __, __w, counts, config = loaded
    assert counts["warehouse"] == 1
    assert counts["district"] == 2
    assert counts["customer"] == 20
    assert counts["stock"] == config.items
    assert counts["order_line"] >= counts["orders"] \
        * config.min_order_lines


def test_customer_secondary_index(loaded):
    db, workload, __, __c = loaded
    last = TPCCWorkload.last_name(0)
    matches = db.execute(
        lambda ctx: ctx.get_secondary("customer", "by_name",
                                      (1, 1, last)))
    assert (1, 1, 1) in matches


def test_new_order_increments_district_and_creates_rows():
    config = TPCCConfig(warehouses=1, districts_per_warehouse=1,
                        customers_per_district=5, items=20,
                        initial_orders_per_district=3)
    workload = TPCCWorkload(config)
    db = Database(engine="nvm-inp")
    workload.load(db)
    from repro.workloads.tpcc import new_order_txn
    before = db.get("district", (1, 1), partition=0)["d_next_o_id"]
    o_id = db.execute(new_order_txn, 1, 1, 2, [(3, 4), (7, 1)], 99,
                      partition=0)
    assert o_id == before
    after = db.get("district", (1, 1), partition=0)
    assert after["d_next_o_id"] == before + 1
    assert db.get("orders", (1, 1, o_id), partition=0)["o_ol_cnt"] == 2
    assert db.get("new_order", (1, 1, o_id), partition=0) is not None
    line = db.get("order_line", (1, 1, o_id, 1), partition=0)
    assert line["ol_i_id"] == 3
    stock = db.get("stock", (1, 3), partition=0)
    assert stock["s_order_cnt"] == 1


def test_payment_by_name_uses_secondary_index():
    config = TPCCConfig(warehouses=1, districts_per_warehouse=1,
                        customers_per_district=5, items=10,
                        initial_orders_per_district=2)
    workload = TPCCWorkload(config)
    db = Database(engine="nvm-inp")
    workload.load(db)
    from repro.workloads.tpcc import payment_txn
    last = TPCCWorkload.last_name(2)  # customer c_id == 3
    db.execute(payment_txn, 1, 1, ("name", last), 100.0, 1,
               partition=0)
    warehouse = db.get("warehouse", 1, partition=0)
    assert warehouse["w_ytd"] == pytest.approx(100.0)
    customer = db.get("customer", (1, 1, 3), partition=0)
    assert customer["c_balance"] == pytest.approx(-110.0)
    assert db.get("history", 1, partition=0) is not None


def test_delivery_consumes_new_orders():
    config = TPCCConfig(warehouses=1, districts_per_warehouse=2,
                        customers_per_district=5, items=10,
                        initial_orders_per_district=6)
    workload = TPCCWorkload(config)
    db = Database(engine="nvm-inp")
    workload.load(db)
    from repro.workloads.tpcc import delivery_txn
    pending_before = len(db.scan("new_order"))
    delivered = db.execute(delivery_txn, 1, 2, 123, partition=0)
    assert delivered == 2  # one per district
    assert len(db.scan("new_order")) == pending_before - 2


def test_order_status_returns_latest_order(loaded):
    db, __, __c, __cfg = loaded
    from repro.workloads.tpcc import order_status_txn
    result = db.execute(order_status_txn, 1, 1, 1, partition=0)
    if result is not None:
        assert result["order"]["o_c_id"] == 1
        assert len(result["lines"]) == result["order"]["o_ol_cnt"]


def test_stock_level_counts(loaded):
    db, __, __c, __cfg = loaded
    from repro.workloads.tpcc import stock_level_txn
    low = db.execute(stock_level_txn, 1, 1, 200, partition=0)
    assert low >= 0


def test_full_mix_runs_and_recovers():
    config = TPCCConfig(warehouses=1, districts_per_warehouse=2,
                        customers_per_district=8, items=25,
                        initial_orders_per_district=5, seed=13)
    workload = TPCCWorkload(config)
    db = Database(engine="nvm-inp",
                  engine_config=EngineConfig(group_commit_size=4))
    workload.load(db)
    executed = workload.run(db, 60)
    assert sum(executed.values()) == 60
    assert executed["new_order"] > 0
    assert executed["payment"] > 0
    ytd_before = db.get("warehouse", 1, partition=0)["w_ytd"]
    db.crash()
    db.recover()
    assert db.get("warehouse", 1, partition=0)["w_ytd"] == ytd_before


def test_transactions_deterministic():
    def txns():
        workload = TPCCWorkload(TPCCConfig(seed=77))
        return [(name, args, pid) for name, __, args, pid
                in workload.transactions(50)]

    assert txns() == txns()


def test_warehouse_partition_mapping():
    workload = TPCCWorkload(TPCCConfig(warehouses=4), partitions=2)
    assert workload.partition_of(1) == 0
    assert workload.partition_of(2) == 1
    assert workload.partition_of(3) == 0
