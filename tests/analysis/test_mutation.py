"""Mutation tests: delete one ordering-critical call and assert the
checker reports exactly the right rule code.

Two layers:

* a **synthetic engine** (a hand-rolled insert/commit sequence over a
  bare platform) where single mutations map to single codes;
* the real **NVM-InP engine** with its sync primitive mutated — the
  acceptance criterion that a dropped ``sfence`` in the commit path
  fails ``repro check`` with a rule-coded diagnostic.
"""

from __future__ import annotations

import pytest

from repro.analysis.check import check_engine
from repro.analysis.ordering import OrderingChecker
from repro.nvm.memory import NVMMemory
from repro.nvm.platform import Platform


def _insert_commit(platform, checker, mutation=None):
    """One synthetic durable insert: allocate + persist a slot, store
    the tuple bytes (line-aligned so counts are deterministic), sync,
    commit. ``mutation`` deletes one step."""
    allocation = platform.allocator.malloc(256, tag="table")
    platform.allocator.persist(allocation)
    line = platform.memory.line_size
    addr = ((allocation.addr + line - 1) // line) * line
    checker.txn_begin(1)
    platform.memory.store(addr, b"tuple-v1")
    if mutation == "drop-sync":
        pass                                   # flush + fence deleted
    elif mutation == "drop-fence":
        platform.memory.clflush(addr, 8)       # fence deleted
    else:
        platform.memory.sync(addr, 8)
    checker.txn_commit(1, durable=True)
    return addr


class TestSyntheticEngineMutations:
    @pytest.fixture()
    def rig(self):
        platform = Platform()
        checker = OrderingChecker(platform, engine="synthetic").attach()
        yield platform, checker
        checker.detach()

    def test_unmutated_sequence_is_clean(self, rig):
        platform, checker = rig
        _insert_commit(platform, checker)
        assert checker.report().ok
        assert checker.counts == {}

    def test_deleting_the_sync_reports_ord003(self, rig):
        platform, checker = rig
        _insert_commit(platform, checker, mutation="drop-sync")
        assert checker.counts == {"ORD003": 1}
        assert "never flushed" in checker.violations[0].message

    def test_deleting_the_fence_reports_ord004(self, rig):
        platform, checker = rig
        _insert_commit(platform, checker, mutation="drop-fence")
        assert checker.counts == {"ORD004": 1}
        assert "not fenced" in checker.violations[0].message

    def test_deleting_the_persist_reports_ord006(self):
        platform = Platform()
        checker = OrderingChecker(
            platform, engine="synthetic",
            require_persisted_allocations=True).attach()
        allocation = platform.allocator.malloc(256, tag="table")
        # mutation: allocator.persist(allocation) deleted
        platform.memory.store(allocation.addr, b"tuple-v1")
        platform.memory.sync(allocation.addr, 8)
        report = checker.finalize()
        checker.detach()
        assert [v.code for v in report.violations] == ["ORD006"]


class TestNVMInPMutations:
    """The acceptance-criterion mutations: break the sync primitive
    under the real NVM-InP engine and `repro check` must fail with a
    rule-coded diagnostic."""

    SMOKE = dict(num_tuples=40, num_txns=60, deletes=5)

    def test_unmutated_engine_passes(self):
        outcome = check_engine("nvm-inp", **self.SMOKE)
        assert outcome.ok

    def test_dropped_sfence_in_commit_path_fails(self, monkeypatch):
        # sync() degraded to an unfenced flush — exactly the bug a
        # dropped sfence after CLFLUSH would be (Section 2.3).
        monkeypatch.setattr(
            NVMMemory, "sync",
            lambda self, addr, size: self.clflush(addr, size))
        outcome = check_engine("nvm-inp", **self.SMOKE)
        assert not outcome.ok
        codes = {violation.code
                 for report in outcome.reports
                 for violation in report.violations}
        # WAL-entry publishes see the unfenced flush (ORD002) and/or
        # commit-time obligations do (ORD004).
        assert codes <= {"ORD002", "ORD004"} and codes

    def test_dropped_flush_in_commit_path_fails(self, monkeypatch):
        monkeypatch.setattr(NVMMemory, "sync",
                            lambda self, addr, size: None)
        outcome = check_engine("nvm-inp", **self.SMOKE)
        assert not outcome.ok
        codes = {violation.code
                 for report in outcome.reports
                 for violation in report.violations}
        assert codes <= {"ORD001", "ORD003"} and codes
