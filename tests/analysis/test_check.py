"""Tests for the `repro check` runner (analysis.check)."""

from __future__ import annotations

import pytest

from repro.analysis.check import (CheckOutcome, check_engine,
                                  engine_requires_persisted_allocations,
                                  run_check)
from repro.config import EngineConfig, PlatformConfig
from repro.core.database import Database


SMOKE = dict(num_tuples=60, num_txns=80, deletes=8)


@pytest.mark.parametrize("engine", ["nvm-inp", "nvm-cow", "nvm-log",
                                    "nvm-mvcc", "inp", "hybrid-inp"])
def test_engines_pass_the_ordering_smoke(engine):
    outcome = check_engine(engine, **SMOKE)
    assert outcome.ok, [str(violation)
                        for report in outcome.reports
                        for violation in report.violations]
    assert outcome.events > 0


def test_outcome_to_dict_shape():
    outcome = check_engine("nvm-cow", **SMOKE)
    payload = outcome.to_dict()
    assert payload["engine"] == "nvm-cow"
    assert payload["ok"] is True
    assert isinstance(payload["partitions"], list)
    assert payload["events"] == sum(part["events"]
                                    for part in payload["partitions"])


def test_run_check_rejects_unknown_engine():
    with pytest.raises(ValueError, match="unknown engines"):
        run_check(["nvm-inp", "bogus"], **SMOKE)


def test_counts_merge_across_partitions():
    outcome = CheckOutcome(engine="x", reports=[])
    assert outcome.ok and outcome.counts == {} and outcome.events == 0


def test_leak_check_predicate_matches_engine_architecture():
    expectations = {
        "inp": False,          # volatile heap + filesystem durability
        "cow": False,
        "log": False,
        "nvm-inp": True,       # persistent slotted pools
        "nvm-cow": True,
        "nvm-log": True,
        "nvm-mvcc": True,
        "hybrid-inp": False,   # DRAM-rebuilt indexes by design
    }
    for name, expected in expectations.items():
        platform_config = PlatformConfig(
            dram_capacity_bytes=32 * 1024 * 1024) \
            if name == "hybrid-inp" else PlatformConfig()
        db = Database(engine=name, platform_config=platform_config,
                      engine_config=EngineConfig(), seed=5)
        actual = engine_requires_persisted_allocations(
            db.partitions[0].engine)
        db.close()
        assert actual is expected, name
