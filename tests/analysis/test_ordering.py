"""Unit tests for the persistence-ordering checker (ORD001-ORD006).

Each test drives a bare :class:`Platform` by hand — stores, flushes,
fences, commit markers — and asserts the exact rule code the checker
reports (or that a correct sequence stays clean).
"""

from __future__ import annotations

import pytest

from repro.analysis.ordering import (LINT_CODES, MAX_EXAMPLES,
                                     ORDERING_RULES, OrderingChecker)
from repro.nvm.platform import Platform


@pytest.fixture()
def platform() -> Platform:
    return Platform()


@pytest.fixture()
def checker(platform) -> OrderingChecker:
    checker = OrderingChecker(platform, engine="synthetic").attach()
    yield checker
    checker.detach()


def _persisted_alloc(platform, size=256, tag="table"):
    allocation = platform.allocator.malloc(size, tag=tag)
    platform.allocator.persist(allocation)
    return allocation


def _aligned_addr(platform, allocation):
    """A line-aligned address inside ``allocation`` — an 8-byte store
    there touches exactly one cache line, so violation counts are
    deterministic."""
    line = platform.memory.line_size
    addr = ((allocation.addr + line - 1) // line) * line
    assert addr + 8 <= allocation.addr + allocation.size
    return addr


class TestDurablePointRules:
    def test_correct_store_sync_commit_is_clean(self, platform, checker):
        allocation = _persisted_alloc(platform)
        checker.txn_begin(1)
        platform.memory.store(allocation.addr, b"v" * 32)
        platform.memory.sync(allocation.addr, 32)
        checker.txn_commit(1, durable=True)
        assert checker.report().ok
        assert checker.counts == {}

    def test_dropped_flush_reports_ord003(self, platform, checker):
        allocation = _persisted_alloc(platform)
        addr = _aligned_addr(platform, allocation)
        checker.txn_begin(1)
        platform.memory.store(addr, b"v" * 8)
        checker.txn_commit(1, durable=True)
        assert checker.counts == {"ORD003": 1}
        violation = checker.violations[0]
        assert violation.txn_id == 1
        assert violation.trace  # carries the recent event tail

    def test_dropped_fence_reports_ord004(self, platform, checker):
        allocation = _persisted_alloc(platform)
        addr = _aligned_addr(platform, allocation)
        checker.txn_begin(1)
        platform.memory.store(addr, b"v" * 8)
        platform.memory.clflush(addr, 8)  # flush, no fence
        checker.txn_commit(1, durable=True)
        assert checker.counts == {"ORD004": 1}

    def test_late_fence_discharges_the_flush(self, platform, checker):
        allocation = _persisted_alloc(platform)
        addr = _aligned_addr(platform, allocation)
        checker.txn_begin(1)
        platform.memory.store(addr, b"v" * 8)
        platform.memory.clflush(addr, 8)
        platform.memory.sfence()
        checker.txn_commit(1, durable=True)
        assert checker.report().ok

    def test_store_after_fenced_flush_still_owed(self, platform,
                                                 checker):
        """store -> sync -> store -> commit: the second store has no
        covering fenced flush even though the line was synced once."""
        allocation = _persisted_alloc(platform)
        addr = _aligned_addr(platform, allocation)
        checker.txn_begin(1)
        platform.memory.store(addr, b"a" * 8)
        platform.memory.sync(addr, 8)
        platform.memory.store(addr, b"b" * 8)
        checker.txn_commit(1, durable=True)
        assert checker.counts == {"ORD003": 1}

    def test_group_commit_defers_to_durable_point(self, platform,
                                                  checker):
        allocation = _persisted_alloc(platform)
        addr = _aligned_addr(platform, allocation)
        checker.txn_begin(1)
        platform.memory.store(addr, b"v" * 8)
        checker.txn_commit(1, durable=False)
        # Not durable yet: no violation is reported at commit...
        assert checker.counts == {}
        checker.durable_point([1])
        # ...but the deferred durable point still finds it.
        assert checker.counts == {"ORD003": 1}

    def test_abort_drops_obligations(self, platform, checker):
        allocation = _persisted_alloc(platform)
        checker.txn_begin(1)
        platform.memory.store(allocation.addr, b"v" * 8)
        checker.txn_abort(1)
        checker.durable_point([1])
        assert checker.report().ok

    def test_freed_allocation_is_skipped(self, platform, checker):
        allocation = _persisted_alloc(platform)
        checker.txn_begin(1)
        platform.memory.store(allocation.addr, b"v" * 8)
        platform.allocator.free(allocation)
        checker.txn_commit(1, durable=True)
        assert checker.report().ok

    def test_unpersisted_allocation_is_volatile(self, platform,
                                                checker):
        """Stores into never-persisted (volatile) regions carry no
        durability obligation."""
        allocation = platform.allocator.malloc(256, tag="index")
        checker.txn_begin(1)
        platform.memory.store(allocation.addr, b"v" * 8)
        checker.txn_commit(1, durable=True)
        assert checker.report().ok

    def test_crash_voids_pending_obligations(self, platform, checker):
        allocation = _persisted_alloc(platform)
        checker.txn_begin(1)
        platform.memory.store(allocation.addr, b"v" * 8)
        platform.crash()
        checker.txn_commit(1, durable=True)
        assert checker.report().ok


class TestCommitMarkerRules:
    def test_marker_over_dirty_range_reports_ord001(self, platform,
                                                    checker):
        data = _persisted_alloc(platform)
        marker = _persisted_alloc(platform, size=8, tag="other")
        addr = _aligned_addr(platform, data)
        platform.memory.store(addr, b"v" * 8)
        platform.memory.atomic_durable_store_u64(
            marker.addr, 1, publishes=((addr, 8),))
        assert checker.counts == {"ORD001": 1}

    def test_marker_over_unfenced_range_reports_ord002(self, platform,
                                                       checker):
        data = _persisted_alloc(platform)
        marker = _persisted_alloc(platform, size=8, tag="other")
        addr = _aligned_addr(platform, data)
        platform.memory.store(addr, b"v" * 8)
        platform.memory.clflush(addr, 8)
        platform.memory.atomic_durable_store_u64(
            marker.addr, 1, publishes=((addr, 8),))
        assert checker.counts == {"ORD002": 1}

    def test_marker_over_synced_range_is_clean(self, platform,
                                               checker):
        data = _persisted_alloc(platform)
        marker = _persisted_alloc(platform, size=8, tag="other")
        addr = _aligned_addr(platform, data)
        platform.memory.store(addr, b"v" * 8)
        platform.memory.sync(addr, 8)
        platform.memory.atomic_durable_store_u64(
            marker.addr, 1, publishes=((addr, 8),))
        assert checker.report().ok

    def test_marker_ignores_never_written_ranges(self, platform,
                                                 checker):
        data = _persisted_alloc(platform)
        marker = _persisted_alloc(platform, size=8, tag="other")
        platform.memory.atomic_durable_store_u64(
            marker.addr, 1, publishes=((data.addr, 64),))
        assert checker.report().ok


class TestRedundantFlushLint:
    def test_double_sync_reports_ord005_lint(self, platform, checker):
        allocation = _persisted_alloc(platform)
        platform.memory.store(allocation.addr, b"v" * 8)
        platform.memory.sync(allocation.addr, 8)
        platform.memory.sync(allocation.addr, 8)
        assert "ORD005" in checker.counts
        assert checker.lints and checker.lints[0].is_lint
        # A lint never fails the check.
        assert checker.report().ok

    def test_sync_ranges_dedups_boundary_lines(self, platform,
                                               checker):
        allocation = _persisted_alloc(platform)
        platform.memory.store(allocation.addr, b"v" * 192)
        # Overlapping ranges in one batch: each line flushed once.
        platform.memory.sync_ranges(
            [(allocation.addr, 128), (allocation.addr + 32, 160)])
        assert checker.counts == {}

    def test_separate_syncs_of_shared_line_are_flagged(self, platform,
                                                       checker):
        allocation = _persisted_alloc(platform)
        platform.memory.store(allocation.addr, b"v" * 128)
        platform.memory.sync(allocation.addr, 128)
        platform.memory.store(allocation.addr, b"w" * 8)
        # Re-syncing the whole range re-flushes lines with no new
        # store (only the first line was re-dirtied).
        platform.memory.sync(allocation.addr, 128)
        assert "ORD005" in checker.counts


class TestLeakCheck:
    def test_unpersisted_live_allocation_reports_ord006(self, platform):
        checker = OrderingChecker(
            platform, require_persisted_allocations=True).attach()
        platform.allocator.malloc(64, tag="table")
        report = checker.finalize()
        checker.detach()
        assert [v.code for v in report.violations] == ["ORD006"]

    def test_persisted_allocations_pass_finalize(self, platform):
        checker = OrderingChecker(
            platform, require_persisted_allocations=True).attach()
        _persisted_alloc(platform, 64)
        report = checker.finalize()
        checker.detach()
        assert report.ok

    def test_leak_check_off_by_default(self, platform, checker):
        platform.allocator.malloc(64, tag="table")
        assert checker.finalize().ok


class TestReportPlumbing:
    def test_rule_catalogue_covers_all_reported_codes(self):
        assert set(LINT_CODES) < set(ORDERING_RULES)
        assert sorted(ORDERING_RULES) == [
            "ORD001", "ORD002", "ORD003", "ORD004", "ORD005", "ORD006"]

    def test_report_to_dict_round_trips(self, platform, checker):
        allocation = _persisted_alloc(platform)
        checker.txn_begin(9)
        platform.memory.store(allocation.addr, b"v" * 8)
        checker.txn_commit(9, durable=True)
        payload = checker.report().to_dict()
        assert payload["ok"] is False
        assert payload["counts"]["ORD003"] >= 1
        assert payload["violations"][0]["code"] == "ORD003"
        assert payload["violations"][0]["txn_id"] == 9

    def test_example_cap_keeps_counting(self, platform, checker):
        allocation = _persisted_alloc(platform, size=64 * 1024)
        line = platform.memory.line_size
        total = MAX_EXAMPLES + 7
        checker.txn_begin(1)
        for index in range(total):
            platform.memory.store(allocation.addr + index * line,
                                  b"v" * 8)
        checker.txn_commit(1, durable=True)
        assert checker.counts["ORD003"] >= total
        assert len(checker.violations) == MAX_EXAMPLES

    def test_detach_restores_platform_hooks(self, platform):
        checker = OrderingChecker(platform).attach()
        assert platform.ordering is checker
        assert platform.memory.observer is checker
        checker.detach()
        assert platform.ordering is None
        assert platform.memory.observer is None
        assert platform.allocator.observer is None
