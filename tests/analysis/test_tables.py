"""Unit tests for the table formatter."""

from repro.analysis.tables import format_table


def test_basic_table():
    text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
    lines = text.splitlines()
    assert lines[0].split() == ["name", "value"]
    assert "a" in lines[2]
    assert "22" in lines[3]


def test_title_prepended():
    text = format_table(["x"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_number_formatting():
    text = format_table(["v"], [[1234567.0], [0.125], [12.34], [0]])
    assert "1,234,567" in text
    assert "0.125" in text
    assert "12.3" in text


def test_columns_aligned():
    text = format_table(["aa", "b"], [["x", 1], ["longer", 100]])
    lines = text.splitlines()
    # All rows have equal width.
    assert len(set(len(line) for line in lines[0:1] + lines[2:])) == 1
