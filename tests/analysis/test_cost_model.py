"""Unit tests for the Table 3 analytical cost model."""

import pytest

from repro.analysis.cost_model import (CostModelParams, cost_table,
                                       engine_cost)

PARAMS = CostModelParams(tuple_size=1000, fixed_field_size=8,
                         varlen_field_size=100, cow_node_size=4096,
                         write_amplification=2.0)


def test_inp_insert_triplicates_tuple():
    cost = engine_cost("inp", "insert", PARAMS)
    assert cost.memory == cost.log == cost.table == 1000
    assert cost.total == 3000


def test_nvm_inp_insert_logs_pointer():
    cost = engine_cost("nvm-inp", "insert", PARAMS)
    assert cost.memory == 1000
    assert cost.log == 8
    assert cost.table == 8


def test_inp_update_logs_before_and_after():
    cost = engine_cost("inp", "update", PARAMS)
    assert cost.log == 2 * (8 + 100)


def test_nvm_inp_update_logs_fixed_plus_pointer():
    cost = engine_cost("nvm-inp", "update", PARAMS)
    assert cost.log == 8 + 8
    assert cost.table == 0


def test_cow_engines_never_log():
    for engine in ("cow", "nvm-cow"):
        for operation in ("insert", "update", "delete"):
            assert engine_cost(engine, operation, PARAMS).log == 0


def test_cow_update_copies_node():
    cost = engine_cost("cow", "update", PARAMS)
    assert cost.memory == 4096 + 8 + 100
    assert cost.table == 4096


def test_log_engines_amplify_table_writes():
    log_cost = engine_cost("log", "insert", PARAMS)
    assert log_cost.table == 2.0 * 1000
    nvm_cost = engine_cost("nvm-log", "update", PARAMS)
    assert nvm_cost.table == 2.0 * (8 + 8)


def test_nvm_engines_never_exceed_traditional():
    pairs = (("inp", "nvm-inp"), ("cow", "nvm-cow"), ("log", "nvm-log"))
    for traditional, nvm in pairs:
        for operation in ("insert", "update", "delete"):
            assert engine_cost(nvm, operation, PARAMS).total \
                <= engine_cost(traditional, operation, PARAMS).total, \
                (traditional, nvm, operation)


def test_deletes_are_cheap():
    for engine in ("inp", "log", "nvm-inp", "nvm-log"):
        assert engine_cost(engine, "delete", PARAMS).total \
            < engine_cost(engine, "insert", PARAMS).total


def test_cost_table_covers_all_cells():
    table = cost_table(PARAMS)
    assert len(table) == 6
    for engine, operations in table.items():
        assert set(operations) == {"insert", "update", "delete"}


def test_unknown_engine_rejected():
    with pytest.raises(ValueError):
        engine_cost("fancy", "insert", PARAMS)
    with pytest.raises(ValueError):
        engine_cost("inp", "upsert", PARAMS)
