"""CFG construction: branch/loop/exception/finally edge shape."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.static.cfg import (STMT, WITH_EXIT, build_cfg,
                                       statement_calls)


def cfg_of(source: str):
    tree = ast.parse(textwrap.dedent(source).lstrip("\n"))
    func = tree.body[0]
    assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
    return build_cfg(func)


def reachable(cfg, start):
    seen = set()
    work = [start]
    while work:
        index = work.pop()
        if index in seen:
            continue
        seen.add(index)
        work.extend(cfg.successors(index))
    return seen


def stmt_nodes(cfg):
    return [node for node in cfg.nodes if node.kind == STMT]


def node_at_line(cfg, line):
    for node in cfg.nodes:
        if node.kind == STMT and node.line == line:
            return node
    raise AssertionError(f"no statement node at line {line}")


class TestLinear:
    def test_all_statements_reach_exit(self):
        cfg = cfg_of("""
            def f():
                a()
                b()
            """)
        seen = reachable(cfg, cfg.entry)
        assert cfg.exit in seen
        assert all(node.index in seen for node in stmt_nodes(cfg))

    def test_calls_may_raise(self):
        cfg = cfg_of("""
            def f():
                a()
            """)
        assert cfg.raise_exit in reachable(cfg, cfg.entry)


class TestBranches:
    def test_both_arms_reach_exit(self):
        cfg = cfg_of("""
            def f(c):
                if c:
                    a()
                else:
                    b()
            """)
        for line in (3, 5):
            assert cfg.exit in reachable(cfg, node_at_line(cfg, line).index)

    def test_if_without_else_can_skip_body(self):
        cfg = cfg_of("""
            def f(c):
                if c:
                    a()
            """)
        test_node = node_at_line(cfg, 2)
        body_node = node_at_line(cfg, 3)
        assert body_node.index in test_node.succ
        assert cfg.exit in test_node.succ  # fall-through arm

    def test_return_diverts_to_exit(self):
        cfg = cfg_of("""
            def f(c):
                if c:
                    return 1
                a()
            """)
        ret = node_at_line(cfg, 3)
        assert ret.succ == [cfg.exit]


class TestLoops:
    def test_while_has_back_edge(self):
        cfg = cfg_of("""
            def f(c):
                while c:
                    a()
            """)
        head = node_at_line(cfg, 2)
        body = node_at_line(cfg, 3)
        assert head.index in body.succ
        assert cfg.exit in head.succ

    def test_while_true_only_exits_by_break(self):
        cfg = cfg_of("""
            def f(c):
                while True:
                    if c:
                        break
            """)
        head = node_at_line(cfg, 2)
        assert cfg.exit not in head.succ
        brk = node_at_line(cfg, 4)
        assert cfg.exit in brk.succ

    def test_for_loop_shape(self):
        cfg = cfg_of("""
            def f(items):
                for item in items:
                    a(item)
                b()
            """)
        head = node_at_line(cfg, 2)
        body = node_at_line(cfg, 3)
        after = node_at_line(cfg, 4)
        assert head.index in body.succ      # next iteration
        assert after.index in head.succ     # loop exhausted


class TestExceptions:
    def test_try_body_raise_goes_to_handler(self):
        cfg = cfg_of("""
            def f():
                try:
                    a()
                except ValueError:
                    b()
            """)
        body = node_at_line(cfg, 3)
        handler = node_at_line(cfg, 5)
        assert handler.index in reachable(cfg, body.raises_to[0])
        # A raise inside the handler escapes the function.
        assert cfg.raise_exit in reachable(cfg, handler.index)

    def test_finally_runs_on_return_and_exception(self):
        cfg = cfg_of("""
            def f():
                try:
                    a()
                    return 1
                finally:
                    b()
            """)
        fin = node_at_line(cfg, 6)
        ret = node_at_line(cfg, 4)
        body = node_at_line(cfg, 3)
        # The return reaches exit only through the finally.
        assert cfg.exit not in ret.succ
        assert fin.index in reachable(cfg, ret.succ[0])
        assert cfg.exit in reachable(cfg, fin.index)
        # The exceptional path also runs the finally, then escapes.
        assert fin.index in reachable(cfg, body.raises_to[0])
        assert cfg.raise_exit in reachable(cfg, fin.index)


class TestWith:
    def test_with_exit_node_on_all_paths(self):
        cfg = cfg_of("""
            def f(lock):
                with lock:
                    a()
                b()
            """)
        exits = [node for node in cfg.nodes
                 if node.kind == WITH_EXIT]
        assert len(exits) == 1
        exit_node = exits[0]
        assert ast.unparse(exit_node.context_expr) == "lock"
        body = node_at_line(cfg, 3)
        # Normal and exceptional body exits both run __exit__.
        assert exit_node.index in body.succ
        assert exit_node.index in body.raises_to
        after = node_at_line(cfg, 4)
        assert after.index in exit_node.succ

    def test_async_with_is_marked(self):
        cfg = cfg_of("""
            async def f(lock):
                async with lock:
                    a()
            """)
        exits = [node for node in cfg.nodes
                 if node.kind == WITH_EXIT]
        assert exits[0].is_async_with


class TestStatementCalls:
    def test_evaluation_order(self):
        stmt = ast.parse("x = outer(inner())").body[0]
        names = [ast.unparse(call.func)
                 for call in statement_calls(stmt)
                 if isinstance(call, ast.Call)]
        assert names == ["inner", "outer"]

    def test_nested_defs_are_skipped(self):
        stmt = ast.parse(textwrap.dedent("""
            def g():
                body_call()
            """)).body[0]
        assert statement_calls(stmt) == []

    def test_awaits_are_yielded(self):
        stmt = ast.parse("async def f():\n    await g()").body[0]
        inner = stmt.body[0]
        kinds = [type(item).__name__
                 for item in statement_calls(inner)]
        assert kinds == ["Call", "Await"]
