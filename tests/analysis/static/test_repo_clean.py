"""The analyzer over the real tree: clean modulo the committed
baseline, fast enough for CI, and wired into the CLI gate."""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.__main__ import main
from repro.analysis.static import DEFAULT_ANALYZE_PATHS, analyze_paths
from repro.lint import baseline_diff, load_baseline

REPO_ROOT = Path(__file__).resolve().parents[3]
BASELINE = REPO_ROOT / "analysis-baseline.json"

VIOLATING_FIXTURE = """\
def commit(memory):
    memory.store_u64(0, 1)
    memory.atomic_durable_store_u64(8, 2)
"""


class TestWholeRepo:
    def test_clean_modulo_baseline_and_fast(self):
        start = time.monotonic()
        violations = analyze_paths(DEFAULT_ANALYZE_PATHS)
        elapsed = time.monotonic() - start
        baseline = load_baseline(BASELINE)
        fresh, _stale = baseline_diff(violations, baseline,
                                      root=REPO_ROOT)
        assert fresh == [], [str(v) for v in fresh]
        # The acceptance bar: whole-package analysis inside CI budget.
        assert elapsed < 30.0

    def test_server_tier_has_no_baselined_findings(self):
        # The ISSUE's bar: the network tier must be *actually* clean,
        # not grandfathered — no server/ fingerprint in the baseline.
        baseline = load_baseline(BASELINE)
        offenders = [key for key in baseline if "/server/" in key]
        assert offenders == []


class TestAnalyzeCLI:
    def test_rule_catalogue(self, capsys):
        assert main(["analyze", "--rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SDA001", "SDA002", "SDA003", "SDA004",
                     "ACD001", "ACD002", "ACD003", "ACD004"):
            assert code in out

    def test_seeded_violation_exits_nonzero(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(VIOLATING_FIXTURE)
        assert main(["analyze", str(fixture)]) == 1
        assert "SDA001" in capsys.readouterr().out

    def test_clean_fixture_exits_zero(self, tmp_path, capsys):
        fixture = tmp_path / "clean.py"
        fixture.write_text("def noop():\n    pass\n")
        assert main(["analyze", str(fixture)]) == 0
        capsys.readouterr()

    def test_json_report(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(VIOLATING_FIXTURE)
        report = tmp_path / "report.json"
        assert main(["analyze", str(fixture),
                     "--json", str(report)]) == 1
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload[0]["code"] == "SDA001"
        assert payload[0]["symbol"] == "commit"

    def test_gate_ratchet(self, tmp_path, capsys):
        fixture = tmp_path / "seeded.py"
        fixture.write_text(VIOLATING_FIXTURE)
        baseline = tmp_path / "baseline.json"
        # Record the debt, then gate against it: passes.
        assert main(["analyze", str(fixture), "--baseline",
                     str(baseline), "--write-baseline"]) == 0
        assert main(["analyze", str(fixture), "--baseline",
                     str(baseline), "--gate"]) == 0
        out = capsys.readouterr().out
        assert "suppressed" in out
        # A new finding on top of the baseline fails the gate.
        fixture.write_text(VIOLATING_FIXTURE + "\n\n"
                           "def fence(memory):\n"
                           "    memory.sfence()\n")
        assert main(["analyze", str(fixture), "--baseline",
                     str(baseline), "--gate"]) == 1
        capsys.readouterr()
        # Fixing the baselined finding also fails until the baseline
        # shrinks — the ratchet only ever tightens.
        fixture.write_text("def noop():\n    pass\n")
        assert main(["analyze", str(fixture), "--baseline",
                     str(baseline), "--gate"]) == 1
        captured = capsys.readouterr()
        assert "stale baseline entry" in captured.err

    def test_select_unknown_code_is_an_error(self, tmp_path, capsys):
        fixture = tmp_path / "clean.py"
        fixture.write_text("def noop():\n    pass\n")
        assert main(["analyze", str(fixture),
                     "--select", "SDA999"]) == 2
        assert "unknown rule codes" in capsys.readouterr().err
