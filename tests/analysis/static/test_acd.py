"""ACD001-ACD004 fixtures: one violating and one clean path each."""

from __future__ import annotations

import textwrap

from repro.analysis.static.callgraph import Project
from repro.analysis.static.runner import analyze_project
from repro.lint.framework import SourceFile


def project_of(*sources: str) -> Project:
    return Project([SourceFile(f"mod{i}.py", textwrap.dedent(src))
                    for i, src in enumerate(sources)])


def findings(*sources: str, select=None):
    return analyze_project(project_of(*sources), select=select)


def codes(*sources: str, select=None):
    return [violation.code
            for violation in findings(*sources, select=select)]


class TestACD001BlockingCall:
    def test_time_sleep_in_coroutine_fires(self):
        assert codes("""
            import time

            async def worker():
                time.sleep(1)
            """, select=["ACD001"]) == ["ACD001"]

    def test_os_fsync_in_coroutine_fires(self):
        assert codes("""
            import os

            async def flush(fd):
                os.fsync(fd)
            """, select=["ACD001"]) == ["ACD001"]

    def test_sync_function_is_exempt(self):
        assert codes("""
            import time

            def worker():
                time.sleep(1)
            """, select=["ACD001"]) == []

    def test_asyncio_sleep_is_clean(self):
        assert codes("""
            import asyncio

            async def worker():
                await asyncio.sleep(1)
            """, select=["ACD001"]) == []


class TestACD002AcquireWithoutRelease:
    def test_bare_acquire_fires(self):
        assert codes("""
            async def leak(lock):
                await lock.acquire()
                work()
            """, select=["ACD002"]) == ["ACD002"]

    def test_leak_only_on_exception_path_fires(self):
        # The happy path releases; the exception edge out of work()
        # still escapes with the lock held.
        violations = findings("""
            async def fragile(lock):
                await lock.acquire()
                work()
                lock.release()
            """, select=["ACD002"])
        assert [v.code for v in violations] == ["ACD002"]
        assert "exception exit" in violations[0].message

    def test_try_finally_is_clean(self):
        assert codes("""
            async def safe(lock):
                await lock.acquire()
                try:
                    work()
                finally:
                    lock.release()
            """, select=["ACD002"]) == []

    def test_async_with_is_clean(self):
        assert codes("""
            async def safe(lock):
                async with lock:
                    work()
            """, select=["ACD002"]) == []

    def test_release_via_helper_method_is_clean(self):
        # server.py's pattern: _admit acquires, every verb path ends
        # in a helper that releases — the transitive may-release
        # summary must see through the self-call.
        assert codes("""
            class Session:
                async def admit(self):
                    await self._lock.acquire()
                    try:
                        work()
                    finally:
                        self._cleanup()

                def _cleanup(self):
                    self._lock.release()
            """, select=["ACD002"]) == []

    def test_subscripted_receiver_matches_by_base(self):
        assert codes("""
            class Server:
                async def admit(self, pid):
                    await self._locks[pid].acquire()
                    try:
                        work()
                    finally:
                        self._locks[pid].release()
            """, select=["ACD002"]) == []


LOCK_PREAMBLE = textwrap.dedent("""
    import asyncio

    guard = asyncio.Lock()
    slots = asyncio.Semaphore(4)
    """)


def locked(body: str) -> str:
    return LOCK_PREAMBLE + textwrap.dedent(body)


class TestACD003UnboundedAwaitHoldingLock:
    def test_socket_read_under_lock_fires(self):
        assert codes(locked("""
            async def relay(reader):
                async with guard:
                    data = await reader.read(65536)
            """), select=["ACD003"]) == ["ACD003"]

    def test_semaphore_is_exempt(self):
        # Holding an admission slot across durability awaits is the
        # server's intended backpressure design.
        assert codes(locked("""
            async def admit(reader):
                async with slots:
                    data = await reader.read(65536)
            """), select=["ACD003"]) == []

    def test_wait_for_is_bounded(self):
        assert codes(locked("""
            async def relay(reader):
                async with guard:
                    data = await asyncio.wait_for(reader.read(1), 5.0)
            """), select=["ACD003"]) == []

    def test_read_after_lock_region_is_clean(self):
        assert codes(locked("""
            async def relay(reader):
                async with guard:
                    bump()
                data = await reader.read(65536)
            """), select=["ACD003"]) == []

    def test_bare_future_await_under_lock_fires(self):
        assert codes(locked("""
            async def relay(fut):
                async with guard:
                    await fut
            """), select=["ACD003"]) == ["ACD003"]


class TestACD004StaleReadModifyWrite:
    def test_stale_carry_across_await_fires(self):
        assert codes("""
            import asyncio

            class Counter:
                async def bump(self):
                    count = self.count
                    await asyncio.sleep(0)
                    self.count = count + 1
            """, select=["ACD004"]) == ["ACD004"]

    def test_reread_after_await_is_clean(self):
        assert codes("""
            import asyncio

            class Counter:
                async def bump(self):
                    count = self.count
                    await asyncio.sleep(0)
                    count = self.count
                    self.count = count + 1
            """, select=["ACD004"]) == []

    def test_no_await_is_clean(self):
        assert codes("""
            class Counter:
                async def bump(self):
                    count = self.count
                    self.count = count + 1
            """, select=["ACD004"]) == []

    def test_write_to_different_attr_is_clean(self):
        assert codes("""
            import asyncio

            class Counter:
                async def bump(self):
                    count = self.count
                    await asyncio.sleep(0)
                    self.high_water = count + 1
            """, select=["ACD004"]) == []


class TestWaivers:
    def test_noqa_waives_acd002(self):
        assert codes("""
            async def handoff(lock):
                await lock.acquire()  # noqa: ACD002
                work()
            """, select=["ACD002"]) == []
