"""SDA001-SDA004 fixtures: one violating and one clean path each."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.static.callgraph import Project
from repro.analysis.static.runner import analyze_project
from repro.lint.framework import SourceFile


def project_of(*sources: str) -> Project:
    return Project([SourceFile(f"mod{i}.py", textwrap.dedent(src))
                    for i, src in enumerate(sources)])


def codes(*sources: str, select=None):
    return [violation.code
            for violation in analyze_project(project_of(*sources),
                                             select=select)]


class TestSDA001StoreReachesMarker:
    def test_unsynced_store_fires(self):
        assert "SDA001" in codes("""
            def commit(memory):
                memory.store_u64(0, 1)
                memory.atomic_durable_store_u64(8, 2)
            """, select=["SDA001"])

    def test_synced_store_is_clean(self):
        assert codes("""
            def commit(memory):
                memory.store_u64(0, 1)
                memory.sync(0, 8)
                memory.atomic_durable_store_u64(8, 2)
            """, select=["SDA001"]) == []

    def test_one_dirty_branch_fires(self):
        assert "SDA001" in codes("""
            def commit(memory, fast):
                memory.store_u64(0, 1)
                if not fast:
                    memory.sync(0, 8)
                memory.atomic_durable_store_u64(8, 2)
            """, select=["SDA001"])

    def test_interprocedural_store_fires(self):
        # The store hides inside a helper method; the summary carries
        # its may-exit-dirty bit back to the marker site.
        assert "SDA001" in codes("""
            class Engine:
                def _write(self):
                    self._memory.write_slot(0, b"x")

                def _do_commit(self):
                    self._write()
                    self._memory.atomic_durable_store_u64(8, 2)
            """, select=["SDA001"])

    def test_helper_that_syncs_is_clean(self):
        assert codes("""
            class Engine:
                def _write(self):
                    self._memory.write_slot(0, b"x")
                    self._memory.sync_ranges([(0, 1)])

                def _do_commit(self):
                    self._write()
                    self._memory.atomic_durable_store_u64(8, 2)
            """, select=["SDA001"]) == []

    def test_set_state_durable_false_fires(self):
        assert "SDA001" in codes("""
            def commit(store):
                store.set_state(0, 1, durable=False)
                store.atomic_durable_store_u64(8, 2)
            """, select=["SDA001"])

    def test_set_state_default_syncs(self):
        assert codes("""
            def commit(store):
                store.set_state(0, 1)
                store.atomic_durable_store_u64(8, 2)
            """, select=["SDA001"]) == []

    def test_noqa_waives_the_marker_line(self):
        assert codes("""
            def commit(memory):
                memory.store_u64(0, 1)
                memory.atomic_durable_store_u64(8, 2)  # noqa: SDA001
            """, select=["SDA001"]) == []


class TestSDA002DirtyDurabilityExit:
    VIOLATING = """
        class Engine:
            is_nvm_aware = True

            def _do_commit(self):
                self._memory.store_u64(0, 1)
        """

    def test_dirty_exit_fires(self):
        assert codes(self.VIOLATING,
                     select=["SDA002"]) == ["SDA002"]

    def test_synced_exit_is_clean(self):
        assert codes("""
            class Engine:
                is_nvm_aware = True

                def _do_commit(self):
                    self._memory.store_u64(0, 1)
                    self._memory.persist()
            """, select=["SDA002"]) == []

    def test_non_nvm_aware_engine_is_ignored(self):
        assert codes("""
            class Engine:
                is_nvm_aware = False

                def _do_commit(self):
                    self._memory.store_u64(0, 1)
            """, select=["SDA002"]) == []

    def test_root_inherited_through_mro_fires(self):
        # The flag sits on the subclass, the dirty root on the base —
        # resolution must walk the hierarchy like engine dispatch does.
        assert codes("""
            class Base:
                def recover(self):
                    self._memory.store_u64(0, 1)

            class NvmEngine(Base):
                is_nvm_aware = True
            """, select=["SDA002"]) == ["SDA002"]

    def test_non_root_method_is_ignored(self):
        assert codes("""
            class Engine:
                is_nvm_aware = True

                def scribble(self):
                    self._memory.store_u64(0, 1)
            """, select=["SDA002"]) == []


class TestSDA003RedundantDoubleFlush:
    def test_double_flush_fires(self):
        assert codes("""
            def flush(memory, addr):
                memory.clwb(addr)
                memory.clwb(addr)
            """, select=["SDA003"]) == ["SDA003"]

    def test_store_between_flushes_is_clean(self):
        assert codes("""
            def flush(memory, addr):
                memory.clwb(addr)
                memory.store_u64(addr, 1)
                memory.clwb(addr)
            """, select=["SDA003"]) == []

    def test_different_ranges_are_clean(self):
        assert codes("""
            def flush(memory, a, b):
                memory.clwb(a)
                memory.clwb(b)
            """, select=["SDA003"]) == []

    def test_loop_rebinding_invalidates_flush_memory(self):
        # Each iteration flushes a *different* addr even though the
        # key text matches; the loop target invalidates it.
        assert codes("""
            def flush(memory, addrs):
                for addr in addrs:
                    memory.clwb(addr)
            """, select=["SDA003"]) == []


class TestSDA004FenceWithoutFlush:
    def test_bare_fence_fires(self):
        assert codes("""
            def fence(memory):
                memory.sfence()
            """, select=["SDA004"]) == ["SDA004"]

    def test_flush_then_fence_is_clean(self):
        assert codes("""
            def fence(memory, addr):
                memory.clwb(addr)
                memory.sfence()
            """, select=["SDA004"]) == []

    def test_any_call_may_flush(self):
        assert codes("""
            def fence(memory, addr):
                helper(addr)
                memory.sfence()
            """, select=["SDA004"]) == []

    def test_wrapper_named_sfence_is_exempt(self):
        assert codes("""
            def sfence(lib):
                lib.sfence()
            """, select=["SDA004"]) == []


class TestRunner:
    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule codes"):
            codes("x = 1\n", select=["SDA999"])

    def test_violations_sorted_by_location(self):
        violations = analyze_project(project_of("""
            def fence(memory):
                memory.sfence()

            def commit(memory):
                memory.store_u64(0, 1)
                memory.atomic_durable_store_u64(8, 2)
            """), select=["SDA001", "SDA004"])
        assert [v.code for v in violations] == ["SDA004", "SDA001"]
        assert violations[0].line < violations[1].line
        assert violations[0].symbol == "fence"
        assert violations[1].symbol == "commit"
