"""Project model: class indexing, MRO resolution, call names."""

from __future__ import annotations

import textwrap

from repro.analysis.static.callgraph import (Project, build_project,
                                             call_name)
from repro.lint.framework import SourceFile


def project_of(*sources: str) -> Project:
    return Project([SourceFile(f"mod{i}.py", textwrap.dedent(src))
                    for i, src in enumerate(sources)])


HIERARCHY = """
    class Base:
        is_nvm_aware = False

        def commit(self):
            return self._do_commit()

        def _do_commit(self):
            pass

    class NvmEngine(Base):
        is_nvm_aware = True

        def _do_commit(self):
            pass

    class HybridEngine(NvmEngine):
        pass
    """


class TestResolution:
    def test_override_wins(self):
        project = project_of(HIERARCHY)
        func = project.resolve_method("NvmEngine", "_do_commit")
        assert func is not None
        assert func.cls is not None and func.cls.name == "NvmEngine"

    def test_inherited_method_resolves_through_mro(self):
        project = project_of(HIERARCHY)
        func = project.resolve_method("HybridEngine", "commit")
        assert func is not None
        assert func.cls is not None and func.cls.name == "Base"
        # The override still shadows the base along the grandchild.
        do = project.resolve_method("HybridEngine", "_do_commit")
        assert do is not None and do.cls.name == "NvmEngine"

    def test_unknown_method_is_none(self):
        project = project_of(HIERARCHY)
        assert project.resolve_method("Base", "missing") is None

    def test_class_attr_through_mro(self):
        project = project_of(HIERARCHY)
        assert project.class_attr("HybridEngine",
                                  "is_nvm_aware") is True
        assert project.class_attr("Base", "is_nvm_aware") is False
        assert project.class_attr("Base", "missing") is None

    def test_subclasses_inclusive(self):
        project = project_of(HIERARCHY)
        names = {cls.name for cls in project.subclasses("Base")}
        assert names == {"Base", "NvmEngine", "HybridEngine"}

    def test_cross_module_bases(self):
        project = project_of(
            "class A:\n    def ping(self):\n        pass\n",
            "class B(A):\n    pass\n")
        func = project.resolve_method("B", "ping")
        assert func is not None and func.cls.name == "A"


class TestAmbiguity:
    def test_duplicate_class_name_is_not_resolved(self):
        project = project_of(
            "class Dup:\n    def ping(self):\n        pass\n",
            "class Dup:\n    def pong(self):\n        pass\n")
        assert project.lookup_class("Dup") is None
        assert project.resolve_method("Dup", "ping") is None


class TestCallName:
    def test_shapes(self):
        import ast

        def name_of(src):
            call = ast.parse(src).body[0].value
            return call_name(call)

        assert name_of("sync()") == "sync"
        assert name_of("self.memory.sync(a)") == "self.memory.sync"
        assert name_of("x[0].sync()") == "?.sync"


class TestBuildProject:
    def test_skips_unparseable_files(self, tmp_path):
        (tmp_path / "good.py").write_text("def f():\n    pass\n")
        (tmp_path / "bad.py").write_text("def f(:\n")
        project = build_project([tmp_path])
        assert [f.name for f in project.functions] == ["f"]
        assert len(project.files) == 1
