"""Live renderer: model updates, TTY vs plain output, accounting."""

import io

from repro.obs.bus import EventBus
from repro.obs.live import LiveRenderer


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _Tty(io.StringIO):
    def isatty(self):
        return True


def _renderer(bus, stream, live=None, clock=None):
    return LiveRenderer(bus, stream=stream, live=live,
                        min_refresh_s=0.0,
                        clock=clock or _Clock())


def test_auto_detects_non_tty_stream():
    renderer = LiveRenderer(EventBus(), stream=io.StringIO())
    assert renderer.tty is False


def test_model_tracks_point_lifecycle():
    bus = EventBus()
    renderer = _renderer(bus, io.StringIO())
    bus.publish("sweep_started", source="sweep", points=4, jobs=2)
    bus.publish("point_finished", source="0000-a", index=0, ok=True,
                engine="inp", throughput=1000.0)
    bus.publish("point_retried", source="0001-b", index=1, attempt=1,
                error="boom")
    bus.publish("point_crashed", source="0001-b", index=1, exitcode=-9)
    bus.publish("point_finished", source="0001-b", index=1, ok=False,
                error="boom", engine="cow")
    assert renderer.total == 4
    assert renderer.finished == 2
    assert renderer.failed == 1
    assert renderer.retries == 1
    assert renderer.worker_crashes == 1


def test_heartbeats_update_engine_rates_and_sim_crashes():
    bus = EventBus()
    renderer = _renderer(bus, io.StringIO())
    bus.publish("heartbeat", source="0000-a", engine="inp",
                txns=500, sim_ns=1e9, crashes=3)
    assert renderer._engine_rate["inp"] == 500.0
    assert renderer.sim_crashes == 3
    line = renderer._status_line()
    assert "inp 500 txn/s" in line
    assert "3 crashes" in line


def test_tty_mode_redraws_one_line_in_place():
    bus = EventBus()
    stream = _Tty()
    renderer = _renderer(bus, stream)
    assert renderer.tty is True
    bus.publish("point_finished", source="0000-a", index=0, ok=True)
    output = stream.getvalue()
    assert output.startswith("\r[live] ")
    assert "\n" not in output


def test_plain_mode_logs_lifecycle_lines():
    bus = EventBus()
    stream = io.StringIO()
    renderer = _renderer(bus, stream)
    bus.publish("sweep_started", source="sweep", points=2)
    bus.publish("point_finished", source="0000-a", index=0, ok=True,
                host_seconds=1.25, throughput=5000.0)
    bus.publish("point_retried", source="0001-b", index=1, attempt=2,
                error="ValueError: nope")
    bus.publish("point_crashed", source="0001-b", index=1, exitcode=-9)
    renderer.close()
    output = stream.getvalue()
    assert "sweep_started: 2 points" in output
    assert "point 0 0000-a: ok 5.0k txn/s (1.25s)" in output
    assert "retrying (attempt 2): ValueError: nope" in output
    assert "worker crashed (exit code -9)" in output


def test_plain_mode_coalesces_heartbeat_digest():
    bus = EventBus()
    stream = io.StringIO()
    clock = _Clock()
    renderer = LiveRenderer(bus, stream=stream, min_refresh_s=0.0,
                            plain_heartbeat_s=10.0, clock=clock)
    for index in range(5):
        bus.publish("heartbeat", source="0000-a", engine="inp",
                    txns=index * 100, sim_ns=1e9)
    digests = [line for line in stream.getvalue().splitlines()
               if line.startswith("[live]")]
    assert len(digests) == 1  # window keeps the rest quiet


def test_close_reports_drop_and_coalesce_accounting():
    bus = EventBus()
    stream = io.StringIO()
    renderer = _renderer(bus, stream)
    # Another slow subscriber loses events; the summary must say so.
    bus.subscribe(capacity=1)
    for index in range(4):
        bus.publish("point_finished", source=f"{index:04d}-x",
                    index=index, ok=True)
    renderer.close()
    summary = stream.getvalue().splitlines()[-1]
    assert "dropped" in summary
    renderer.close()  # idempotent


def test_failed_points_render_error_headline():
    bus = EventBus()
    stream = io.StringIO()
    renderer = _renderer(bus, stream)
    bus.publish("point_finished", source="0000-a", index=0, ok=False,
                error="ValueError: no-such-engine")
    renderer.close()
    assert "FAILED: ValueError: no-such-engine" in stream.getvalue()
