"""Unit tests for the time-series sampler (cadence, decimation)."""

import pytest

from repro.obs.sampler import TimeSeriesSampler
from repro.sim.clock import SimClock


def make_sampler(clock, counter, **kwargs):
    return TimeSeriesSampler(clock, {"events": lambda: counter["n"]},
                             **kwargs)


def test_attach_takes_baseline_sample():
    clock = SimClock()
    counter = {"n": 0}
    sampler = make_sampler(clock, counter, interval_ms=1.0)
    sampler.attach()
    assert len(sampler) == 1
    assert sampler.samples[0] == {"t_ms": 0.0, "events": 0}


def test_one_sample_per_interval_crossing():
    clock = SimClock()
    counter = {"n": 0}
    sampler = make_sampler(clock, counter, interval_ms=1.0)
    sampler.attach()
    for step in range(10):  # 10 x 0.5 ms = 5 ms
        counter["n"] += 1
        clock.advance(0.5e6)
    # Baseline + one sample at each of t=1..5 ms.
    assert len(sampler) == 6
    times = [round(s["t_ms"], 3) for s in sampler.samples]
    assert times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
    assert sampler.samples[-1]["events"] == 10


def test_large_advance_skips_intervals_without_burst():
    clock = SimClock()
    counter = {"n": 0}
    sampler = make_sampler(clock, counter, interval_ms=1.0)
    sampler.attach()
    counter["n"] = 7
    clock.advance(10e6)  # jumps across ten intervals at once
    assert len(sampler) == 2  # baseline + one crossing sample
    clock.advance(0.5e6)
    assert len(sampler) == 2  # next boundary is ~11 ms, not 1 ms
    clock.advance(0.6e6)
    assert len(sampler) == 3


def test_detach_takes_final_sample_and_unsubscribes():
    clock = SimClock()
    counter = {"n": 0}
    sampler = make_sampler(clock, counter, interval_ms=1.0)
    sampler.attach()
    clock.advance(0.4e6)
    sampler.detach()
    assert len(sampler) == 2  # baseline + final partial-interval sample
    clock.advance(5e6)
    assert len(sampler) == 2  # no longer listening


def test_decimation_halves_samples_and_doubles_interval():
    clock = SimClock()
    counter = {"n": 0}
    sampler = make_sampler(clock, counter, interval_ms=1.0,
                           max_samples=8)
    sampler.attach()
    original_interval = sampler.interval_ns
    for __ in range(20):
        clock.advance(1e6)
    assert len(sampler) <= 8
    assert sampler.interval_ns > original_interval
    # Shape preserved: samples still in time order, endpoints intact.
    times = [s["t_ms"] for s in sampler.samples]
    assert times == sorted(times)
    assert times[0] == 0.0


def test_rejects_bad_configuration():
    clock = SimClock()
    with pytest.raises(ValueError):
        TimeSeriesSampler(clock, {}, interval_ms=0)
    with pytest.raises(ValueError):
        TimeSeriesSampler(clock, {}, max_samples=1)


def test_attach_is_idempotent():
    clock = SimClock()
    counter = {"n": 0}
    sampler = make_sampler(clock, counter)
    sampler.attach()
    sampler.attach()
    assert len(sampler) == 1
    sampler.detach()
    sampler.detach()
    assert len(sampler) == 2
