"""Unit tests for metric instruments and the Prometheus exporter."""

import io
import math

import pytest

from repro.obs.export import write_prometheus
from repro.obs.metrics import (GROWTH, Counter, Gauge, Histogram,
                               MetricsRegistry)


# ----------------------------------------------------------------------
# Counters and gauges
# ----------------------------------------------------------------------

def test_counter_accumulates_and_rejects_negative():
    counter = Counter("txns.committed", {})
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = Gauge("run.sim_seconds", {})
    gauge.set(10)
    gauge.inc(2)
    gauge.dec(5)
    assert gauge.value == 7


# ----------------------------------------------------------------------
# Histogram bucket math
# ----------------------------------------------------------------------

def test_bucket_index_boundaries():
    # Values <= 1 collapse into bucket 0; exact powers of GROWTH land
    # in their own bucket, values just above roll into the next.
    assert Histogram.bucket_index(0.0) == 0
    assert Histogram.bucket_index(1.0) == 0
    assert Histogram.bucket_index(GROWTH) == 1
    assert Histogram.bucket_index(2.0) == 2
    assert Histogram.bucket_index(2.0001) == 3
    assert Histogram.bucket_index(1024.0) == 20


def test_bucket_bound_inverts_index():
    for value in (1.0, 3.7, 500.0, 1e9):
        index = Histogram.bucket_index(value)
        assert Histogram.bucket_bound(index) >= value
        if index > 0:
            assert Histogram.bucket_bound(index - 1) < value


def test_histogram_summary_stats():
    histogram = Histogram("txn.latency_ns", {})
    for value in (100.0, 200.0, 400.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.sum == pytest.approx(700.0)
    assert histogram.mean == pytest.approx(700.0 / 3)
    assert histogram.min == pytest.approx(100.0)
    assert histogram.max == pytest.approx(400.0)


def test_histogram_rejects_negative_observation():
    histogram = Histogram("txn.latency_ns", {})
    with pytest.raises(ValueError):
        histogram.observe(-1.0)


def test_percentile_upper_bound_within_growth_factor():
    histogram = Histogram("txn.latency_ns", {})
    values = [float(v) for v in range(1, 1001)]
    for value in values:
        histogram.observe(value)
    for pct in (50, 95, 99):
        exact = values[math.ceil(len(values) * pct / 100) - 1]
        estimate = histogram.percentile(pct)
        assert exact <= estimate <= exact * GROWTH


def test_percentile_capped_by_observed_max():
    histogram = Histogram("txn.latency_ns", {})
    histogram.observe(3.0)  # bucket upper bound is 4.0
    assert histogram.percentile(99) == pytest.approx(3.0)
    assert histogram.percentiles()["max"] == pytest.approx(3.0)


def test_percentile_empty_histogram_is_zero():
    histogram = Histogram("txn.latency_ns", {})
    assert histogram.percentile(50) == 0.0
    assert histogram.percentiles() == {"p50": 0.0, "p95": 0.0,
                                       "p99": 0.0, "max": 0.0}


def test_percentile_single_observation():
    histogram = Histogram("txn.latency_ns", {})
    histogram.observe(1000.0)
    for pct in (1, 50, 100):
        assert histogram.percentile(pct) == pytest.approx(1000.0)


def test_percentile_rejects_out_of_range():
    histogram = Histogram("txn.latency_ns", {})
    for pct in (0, -1, 101):
        with pytest.raises(ValueError):
            histogram.percentile(pct)


def test_cumulative_buckets_monotone():
    histogram = Histogram("txn.latency_ns", {})
    for value in (1.0, 10.0, 10.0, 1000.0):
        histogram.observe(value)
    pairs = histogram.cumulative_buckets()
    bounds = [bound for bound, __ in pairs]
    counts = [count for __, count in pairs]
    assert bounds == sorted(bounds)
    assert counts == sorted(counts)
    assert counts[-1] == histogram.count


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

def test_registry_get_or_create_by_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("db.ops", op="insert")
    b = registry.counter("db.ops", op="insert")
    c = registry.counter("db.ops", op="update")
    assert a is b
    assert a is not c
    assert len(registry) == 2


def test_registry_find_without_creating():
    registry = MetricsRegistry()
    registry.histogram("txn.latency_ns", engine="inp")
    assert registry.find("txn.latency_ns", engine="inp") is not None
    assert registry.find("txn.latency_ns", engine="cow") is None
    assert len(registry) == 1


# ----------------------------------------------------------------------
# Prometheus export
# ----------------------------------------------------------------------

def test_prometheus_export_shapes():
    registry = MetricsRegistry()
    registry.counter("txns.committed", help="Committed txns",
                     engine="inp").inc(42)
    histogram = registry.histogram("txn.latency_ns", engine="inp")
    for value in (100.0, 200.0, 400.0, 800.0):
        histogram.observe(value)
    stream = io.StringIO()
    write_prometheus(registry, stream)
    text = stream.getvalue()
    assert "# HELP repro_txns_committed Committed txns" in text
    assert "# TYPE repro_txns_committed counter" in text
    assert 'repro_txns_committed{engine="inp"} 42' in text
    assert "# TYPE repro_txn_latency_ns histogram" in text
    assert 'le="+Inf"' in text
    assert 'repro_txn_latency_ns_count{engine="inp"} 4' in text
    assert 'repro_txn_latency_ns_sum{engine="inp"} 1500' in text
    for quantile in ('quantile="0.5"', 'quantile="0.95"',
                     'quantile="0.99"', 'quantile="max"'):
        assert quantile in text


def test_prometheus_inf_bucket_matches_count():
    registry = MetricsRegistry()
    histogram = registry.histogram("txn.latency_ns")
    for value in (1.0, 5.0, 25.0):
        histogram.observe(value)
    stream = io.StringIO()
    write_prometheus(registry, stream)
    inf_lines = [line for line in stream.getvalue().splitlines()
                 if 'le="+Inf"' in line]
    assert len(inf_lines) == 1
    assert inf_lines[0].endswith(" 3")
