"""Event bus: ordering, heartbeat coalescing, drop accounting."""

import json
import multiprocessing

import pytest

from repro.obs import bus as bus_mod
from repro.obs.bus import (BoundedEventQueue, BusPublisher, EventBus,
                           HeartbeatEmitter, JsonlEventLog,
                           PipePublisher, TelemetryEvent)


def _event(kind="heartbeat", source="p0", **data):
    return TelemetryEvent(kind=kind, source=source, data=data)


# ----------------------------------------------------------------------
# TelemetryEvent round-trip
# ----------------------------------------------------------------------

def test_event_round_trips_through_dict():
    event = _event("point_started", "0001-slug", attempt=2)
    event.seq = 17
    event.wall_s = 123.5
    clone = TelemetryEvent.from_dict(event.to_dict())
    assert clone.kind == "point_started"
    assert clone.source == "0001-slug"
    assert clone.data == {"attempt": 2}
    assert clone.seq == 17
    assert clone.wall_s == 123.5


# ----------------------------------------------------------------------
# Bus ordering
# ----------------------------------------------------------------------

def test_bus_assigns_monotonic_seq_in_publish_order():
    bus = EventBus()
    seen = []
    bus.add_sink(lambda e: seen.append(e))
    queue = bus.subscribe()
    for index in range(5):
        bus.publish("point_started", source=f"p{index}", index=index)
    assert [e.seq for e in seen] == [0, 1, 2, 3, 4]
    drained = queue.drain()
    assert [e.seq for e in drained] == [0, 1, 2, 3, 4]
    assert [e.data["index"] for e in drained] == [0, 1, 2, 3, 4]


def test_bus_stamps_wall_clock_when_unset():
    bus = EventBus()
    event = bus.publish("sweep_started", source="sweep")
    assert event.wall_s > 0


def test_queue_preserves_order_of_non_heartbeat_events():
    queue = BoundedEventQueue(capacity=10)
    kinds = ["point_started", "phase_enter", "phase_exit",
             "point_finished"]
    for seq, kind in enumerate(kinds):
        event = _event(kind)
        event.seq = seq
        queue.push(event)
    assert [e.kind for e in queue.drain()] == kinds


# ----------------------------------------------------------------------
# Heartbeat coalescing
# ----------------------------------------------------------------------

def test_heartbeats_coalesce_per_source_in_place():
    queue = BoundedEventQueue(capacity=10)
    queue.push(_event("heartbeat", "a", txns=1))
    queue.push(_event("point_started", "b"))
    queue.push(_event("heartbeat", "b", txns=5))
    queue.push(_event("heartbeat", "a", txns=2))  # replaces a's beat
    queue.push(_event("heartbeat", "a", txns=3))  # replaces again
    events = queue.drain()
    # a's heartbeat kept its original queue position, newest payload.
    assert [(e.kind, e.source) for e in events] == [
        ("heartbeat", "a"), ("point_started", "b"), ("heartbeat", "b")]
    assert events[0].data["txns"] == 3
    assert queue.coalesced == 2


def test_distinct_sources_do_not_coalesce():
    queue = BoundedEventQueue(capacity=10)
    queue.push(_event("heartbeat", "a", txns=1))
    queue.push(_event("heartbeat", "b", txns=2))
    assert len(queue) == 2
    assert queue.coalesced == 0


# ----------------------------------------------------------------------
# Bounded queue drop accounting
# ----------------------------------------------------------------------

def test_full_queue_drops_oldest_and_counts():
    queue = BoundedEventQueue(capacity=3)
    for index in range(5):
        queue.push(_event("point_started", f"p{index}", index=index))
    events = queue.drain()
    assert [e.data["index"] for e in events] == [2, 3, 4]
    assert queue.dropped == 2


def test_bus_stats_aggregate_subscriber_losses():
    bus = EventBus()
    bus.subscribe(capacity=2)
    bus.subscribe(capacity=100)
    for index in range(6):
        bus.publish("point_started", source=f"p{index}")
    stats = bus.stats()
    assert stats["published"] == 6
    assert stats["dropped"] == 4  # only the tiny queue lost events
    assert stats["coalesced"] == 0


def test_queue_capacity_must_be_positive():
    with pytest.raises(ValueError):
        BoundedEventQueue(capacity=0)


# ----------------------------------------------------------------------
# JSONL event log
# ----------------------------------------------------------------------

def test_event_log_persists_stream_and_closing_accounting(tmp_path):
    path = str(tmp_path / "events.jsonl")
    bus = EventBus()
    with JsonlEventLog(path, bus):
        bus.publish("sweep_started", source="sweep", points=2)
        bus.publish("heartbeat", source="p0", txns=10)
        bus.publish("sweep_finished", source="sweep", failed=0)
    records = [json.loads(line) for line in open(path)]
    assert [r["kind"] for r in records] == [
        "sweep_started", "heartbeat", "sweep_finished", "log_closed"]
    assert [r["seq"] for r in records[:3]] == [0, 1, 2]
    closing = records[-1]["data"]
    assert closing["published"] == 3
    assert closing["dropped"] == 0
    assert closing["lines"] == 3


def test_event_log_close_is_idempotent(tmp_path):
    path = str(tmp_path / "events.jsonl")
    log = JsonlEventLog(path, EventBus())
    log.close()
    log.close()


# ----------------------------------------------------------------------
# Publishers
# ----------------------------------------------------------------------

def test_bus_publisher_rate_limits_heartbeats():
    bus = EventBus()
    queue = bus.subscribe()
    publisher = BusPublisher(bus, source="p0", heartbeat_s=3600.0)
    assert publisher.heartbeat(txns=1) is True
    assert publisher.heartbeat(txns=2) is False  # window not elapsed
    assert publisher.publish("phase_enter", phase="run")  # not limited
    kinds = [e.kind for e in queue.drain()]
    assert kinds == ["heartbeat", "phase_enter"]


def test_zero_interval_heartbeats_all_pass():
    bus = EventBus()
    publisher = BusPublisher(bus, source="p0", heartbeat_s=0.0)
    assert publisher.heartbeat(txns=1)
    assert publisher.heartbeat(txns=2)
    assert bus.stats()["published"] == 2


def test_pipe_publisher_sends_tagged_events():
    parent, child = multiprocessing.Pipe(duplex=False)
    publisher = PipePublisher(child, source="0001-x", heartbeat_s=0.0)
    publisher.publish("phase_enter", phase="load")
    tag, payload = parent.recv()
    assert tag == "event"
    event = TelemetryEvent.from_dict(payload)
    assert event.kind == "phase_enter"
    assert event.source == "0001-x"
    assert event.data == {"phase": "load"}
    parent.close()
    child.close()


def test_pipe_publisher_survives_dead_pipe():
    parent, child = multiprocessing.Pipe(duplex=False)
    publisher = PipePublisher(child, source="p0", heartbeat_s=0.0)
    parent.close()
    child.close()
    publisher.publish("heartbeat", txns=1)  # must not raise
    assert publisher.send_failures == 1


# ----------------------------------------------------------------------
# Heartbeat emitter (per-commit probe)
# ----------------------------------------------------------------------

class _FakeDb:
    engine_name = "inp"
    committed_txns = 42
    aborted_txns = 1
    now_ns = 5e9

    def __init__(self):
        self.partitions = [self]
        self.platform = self

        class _P:
            txn_probe = None
        self.platform = _P()

    def nvm_counters(self):
        return {"loads": 10, "stores": 20}


def test_heartbeat_emitter_payload_and_install_cycle():
    bus = EventBus()
    queue = bus.subscribe()
    publisher = BusPublisher(bus, source="p0", heartbeat_s=0.0)
    db = _FakeDb()
    emitter = HeartbeatEmitter(
        publisher, db, extra=lambda: {"crashes": 3})
    emitter.install()
    assert db.partitions[0].platform.txn_probe is emitter
    emitter()  # what the partition executor calls per commit
    emitter.uninstall()
    assert db.partitions[0].platform.txn_probe is None
    (event,) = queue.drain()
    assert event.kind == bus_mod.HEARTBEAT
    assert event.data == {
        "engine": "inp", "txns": 42, "aborted": 1, "sim_ns": 5e9,
        "nvm_loads": 10, "nvm_stores": 20, "crashes": 3}


def test_heartbeat_emitter_skips_collection_when_not_due():
    bus = EventBus()
    publisher = BusPublisher(bus, source="p0", heartbeat_s=3600.0)
    db = _FakeDb()
    emitter = HeartbeatEmitter(publisher, db)
    emitter()
    emitter()
    assert bus.stats()["published"] == 1
