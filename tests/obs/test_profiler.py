"""Phase profiler: attribution, nesting, merge, collapsed stacks."""

import pytest

from repro.obs.bus import EventBus
from repro.obs.profiler import (PROFILE_KIND, PhaseProfiler,
                                collapsed_lines, merge_profiles,
                                write_collapsed)


class _FakeClock:
    """Deterministic wall clock: each read advances by ``step``."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


class _ManualClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class _FakeDb:
    def __init__(self):
        self.now_ns = 0.0


def test_disabled_profiler_records_nothing():
    profiler = PhaseProfiler(enabled=False)
    with profiler.phase("run"):
        pass
    profile = profiler.to_dict()
    assert profile["phases"] == []
    assert profile["total_wall_s"] == 0.0
    assert profile["coverage"] is None


def test_phases_attribute_wall_and_sim_time():
    clock = _ManualClock()
    profiler = PhaseProfiler(wall=clock)
    db = _FakeDb()
    profiler.start()
    with profiler.phase("load", db):
        clock.now = 2.0
        db.now_ns = 5e8
    with profiler.phase("run", db):
        clock.now = 10.0
        db.now_ns = 30e8
    profiler.stop()
    profile = profiler.to_dict()
    assert profile["kind"] == PROFILE_KIND
    by_stack = {entry["stack"]: entry for entry in profile["phases"]}
    assert by_stack["load"]["wall_s"] == 2.0
    assert by_stack["load"]["sim_ns"] == 5e8
    assert by_stack["run"]["wall_s"] == 8.0
    assert by_stack["run"]["sim_ns"] == 25e8
    assert profile["total_wall_s"] == 10.0
    assert profile["attributed_wall_s"] == 10.0
    assert profile["coverage"] == pytest.approx(1.0)


def test_nested_phases_stack_and_depth():
    clock = _ManualClock()
    profiler = PhaseProfiler(wall=clock)
    profiler.start()
    with profiler.phase("run"):
        clock.now = 1.0
        with profiler.phase("recovery"):
            clock.now = 4.0
        clock.now = 5.0
    profiler.stop()
    by_stack = {entry["stack"]: entry
                for entry in profiler.to_dict()["phases"]}
    assert by_stack["run"]["depth"] == 0
    assert by_stack["run"]["wall_s"] == 5.0
    assert by_stack["run;recovery"]["depth"] == 1
    assert by_stack["run;recovery"]["wall_s"] == 3.0
    # Coverage counts only depth-0 wall time (no double counting).
    assert profiler.to_dict()["attributed_wall_s"] == 5.0


def test_repeated_phase_accumulates_count():
    clock = _FakeClock(step=0.5)
    profiler = PhaseProfiler(wall=clock)
    for __ in range(3):
        with profiler.phase("recovery"):
            pass
    (entry,) = [e for e in profiler.to_dict()["phases"]
                if e["stack"] == "recovery"]
    assert entry["count"] == 3


def test_phase_events_published_to_bus():
    bus = EventBus()
    queue = bus.subscribe()
    from repro.obs.bus import BusPublisher
    profiler = PhaseProfiler(
        publisher=BusPublisher(bus, source="p0"))
    with profiler.phase("run"):
        with profiler.phase("recovery"):
            pass
    kinds = [(e.kind, e.data["stack"]) for e in queue.drain()]
    assert kinds == [
        ("phase_enter", "run"),
        ("phase_enter", "run;recovery"),
        ("phase_exit", "run;recovery"),
        ("phase_exit", "run"),
    ]


def test_merge_profiles_sums_and_skips_none():
    clock_a = _ManualClock()
    a = PhaseProfiler(wall=clock_a)
    a.start()
    with a.phase("run"):
        clock_a.now = 2.0
    a.stop()
    clock_b = _ManualClock()
    b = PhaseProfiler(wall=clock_b)
    b.start()
    with b.phase("run"):
        clock_b.now = 3.0
    b.stop()
    merged = merge_profiles([a.to_dict(), None, b.to_dict()])
    (entry,) = merged["phases"]
    assert entry["stack"] == "run"
    assert entry["wall_s"] == 5.0
    assert entry["count"] == 2
    assert merged["total_wall_s"] == 5.0
    assert merged["coverage"] == pytest.approx(1.0)


def test_collapsed_lines_use_exclusive_micros(tmp_path):
    clock = _ManualClock()
    profiler = PhaseProfiler(wall=clock)
    with profiler.phase("run"):
        clock.now = 1.0
        with profiler.phase("recovery"):
            clock.now = 4.0
        clock.now = 5.0
    lines = collapsed_lines(profiler.to_dict())
    # run's exclusive time is 5s - 3s(child) = 2s; child keeps 3s.
    assert lines == ["run 2000000", "run;recovery 3000000"]
    path = tmp_path / "collapsed.txt"
    assert write_collapsed(profiler.to_dict(), str(path)) == 2
    assert path.read_text().splitlines() == lines


def test_coverage_reflects_unattributed_time():
    clock = _ManualClock()
    profiler = PhaseProfiler(wall=clock)
    profiler.start()
    with profiler.phase("run"):
        clock.now = 6.0
    clock.now = 10.0  # 4s of unattributed tail
    profiler.stop()
    profile = profiler.to_dict()
    assert profile["coverage"] == pytest.approx(0.6)
