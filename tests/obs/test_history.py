"""Run-history aggregation: bench trajectory, artifact discovery."""

import json
import os

from repro.obs.history import (REPORT_KIND, bench_trajectory,
                               build_report, collect_bench_history,
                               collect_crashtest_reports,
                               collect_event_logs,
                               collect_sweep_summaries,
                               render_markdown)


def _bench_payload(ops_by_name, quick=False, created="2026-08-08"):
    return {
        "schema": "repro-bench/1",
        "created_utc": created,
        "quick": quick,
        "results": [
            {"name": name, "kind": "ycsb", "ops": 1000,
             "wall_s": 1.0, "ops_per_s": ops,
             "sim_time_ns": 1e9, "peak_rss_kb": 1024}
            for name, ops in ops_by_name.items()],
    }


def _write(path, payload):
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as stream:
        json.dump(payload, stream)


# ----------------------------------------------------------------------
# Bench trajectory
# ----------------------------------------------------------------------

def test_history_orders_baseline_first_then_by_name(tmp_path):
    results = str(tmp_path)
    _write(os.path.join(results, "BENCH_20260801T000000Z.json"),
           _bench_payload({"ycsb": 200.0}))
    _write(os.path.join(results, "BENCH_baseline.json"),
           _bench_payload({"ycsb": 100.0}))
    _write(os.path.join(results, "BENCH_20260805T000000Z.json"),
           _bench_payload({"ycsb": 300.0}))
    history = collect_bench_history(results)
    assert [entry["name"] for entry in history] == [
        "BENCH_baseline.json",
        "BENCH_20260801T000000Z.json",
        "BENCH_20260805T000000Z.json"]
    assert all("error" not in entry for entry in history)


def test_history_reports_invalid_payloads(tmp_path):
    path = os.path.join(str(tmp_path), "BENCH_bad.json")
    _write(path, {"schema": "repro-bench/1"})  # missing keys
    (entry,) = collect_bench_history(str(tmp_path))
    assert "error" in entry
    assert "results" not in entry


def test_history_missing_directory_is_empty():
    assert collect_bench_history("/nonexistent/nowhere") == []


def test_trajectory_rows_first_last_best_delta(tmp_path):
    results = str(tmp_path)
    _write(os.path.join(results, "BENCH_baseline.json"),
           _bench_payload({"ycsb": 100.0, "tpcc": 50.0}))
    _write(os.path.join(results, "BENCH_2.json"),
           _bench_payload({"ycsb": 400.0}))
    _write(os.path.join(results, "BENCH_3.json"),
           _bench_payload({"ycsb": 200.0}))
    headers, rows = bench_trajectory(collect_bench_history(results))
    assert headers[0] == "bench"
    by_name = {row[0]: row for row in rows}
    assert by_name["ycsb"][1:] == [3, 100.0, 200.0, 400.0, "-50.0%"]
    assert by_name["tpcc"][1:] == [1, 50.0, 50.0, 50.0, "-"]


# ----------------------------------------------------------------------
# Artifact discovery by content
# ----------------------------------------------------------------------

def test_sweep_summaries_found_by_kind_not_name(tmp_path):
    root = str(tmp_path)
    _write(os.path.join(root, "deep", "whatever.json"), {
        "kind": "repro-sweep-summary",
        "points": [
            {"ok": True, "attempts": 2, "host_seconds": 1.0},
            {"ok": False, "attempts": 1, "host_seconds": 0.5,
             "error": "Traceback ...\n  ...\nValueError: boom\n"},
        ],
    })
    _write(os.path.join(root, "unrelated.json"), {"kind": "other"})
    (summary,) = collect_sweep_summaries([root])
    assert summary["points"] == 2
    assert summary["failed"] == 1
    assert summary["retries"] == 1
    assert summary["host_seconds"] == 1.5
    assert summary["errors"] == ["ValueError: boom"]


def test_crashtest_reports_collected(tmp_path):
    root = str(tmp_path)
    _write(os.path.join(root, "campaign.json"), {
        "kind": "repro-crashtest-report", "ok": False,
        "engines": ["inp"], "coordinates": [[0, 1], [1, 2]],
        "violations": ["lost committed txn 7"],
        "failures": ["Traceback ...\nRuntimeError: died\n"],
        "uncovered": {"inp": ["wal:5"]},
    })
    (report,) = collect_crashtest_reports([root])
    assert report["ok"] is False
    assert report["coordinates"] == 2
    assert report["violations"] == ["lost committed txn 7"]
    assert report["failures"] == ["RuntimeError: died"]


def test_event_logs_digested_and_non_logs_rejected(tmp_path):
    root = str(tmp_path)
    log_path = os.path.join(root, "events.jsonl")
    os.makedirs(root, exist_ok=True)
    with open(log_path, "w") as stream:
        for seq, kind in enumerate(
                ["sweep_started", "heartbeat", "heartbeat",
                 "sweep_finished"]):
            stream.write(json.dumps(
                {"kind": kind, "seq": seq, "source": "s",
                 "data": {}}) + "\n")
        stream.write(json.dumps(
            {"kind": "log_closed", "seq": 4, "source": "log",
             "data": {"published": 4, "dropped": 1,
                      "lines": 4}}) + "\n")
    with open(os.path.join(root, "trace.jsonl"), "w") as stream:
        stream.write(json.dumps({"op": "read", "key": 1}) + "\n")
    (log,) = collect_event_logs([root])
    assert log["events"] == 5
    assert log["kinds"]["heartbeat"] == 2
    assert log["accounting"]["dropped"] == 1


# ----------------------------------------------------------------------
# Combined report
# ----------------------------------------------------------------------

def test_build_report_and_render_markdown(tmp_path):
    bench_dir = os.path.join(str(tmp_path), "results")
    _write(os.path.join(bench_dir, "BENCH_baseline.json"),
           _bench_payload({"ycsb": 100.0}))
    _write(os.path.join(bench_dir, "BENCH_2.json"),
           _bench_payload({"ycsb": 150.0}))
    scan = os.path.join(str(tmp_path), "artifacts")
    _write(os.path.join(scan, "summary.json"), {
        "kind": "repro-sweep-summary",
        "points": [{"ok": True, "attempts": 1, "host_seconds": 2.0}],
    })
    report = build_report(bench_dir=bench_dir, scan_dirs=[scan])
    assert report["kind"] == REPORT_KIND
    assert len(report["bench"]["runs"]) == 2
    assert len(report["sweeps"]) == 1
    markdown = render_markdown(report)
    assert "## Bench trajectory (2 runs" in markdown
    assert "| ycsb | 2 | 100.0 | 150.0 | 150.0 | +50.0% |" in markdown
    assert "## Sweeps (1 summaries)" in markdown
    assert "No campaign reports found." in markdown


def test_render_markdown_empty_report():
    markdown = render_markdown(build_report(
        bench_dir="/nonexistent", scan_dirs=["/nonexistent"]))
    assert "No committed bench results found." in markdown
    assert "No event logs found." in markdown
