"""Unit tests for the span tracer (ring buffer, nesting, no-op mode)."""

import pytest

from repro.obs.tracer import _NULL_SPAN, Span, Tracer
from repro.sim.clock import SimClock


@pytest.fixture
def tracer_and_clock():
    clock = SimClock()
    return Tracer(clock), clock


def test_disabled_tracer_returns_shared_null_span(tracer_and_clock):
    tracer, clock = tracer_and_clock
    first = tracer.span("wal.fsync")
    second = tracer.span("checkpoint.write", number=3)
    assert first is _NULL_SPAN
    assert second is _NULL_SPAN
    with first as handle:
        clock.advance(10)
        assert handle is None  # `if span:` guards tag() calls
    assert len(tracer) == 0
    assert tracer.spans == []


def test_disabled_event_records_nothing(tracer_and_clock):
    tracer, __ = tracer_and_clock
    tracer.event("alloc.persist", size=64)
    assert len(tracer) == 0


def test_span_records_sim_time_and_tags(tracer_and_clock):
    tracer, clock = tracer_and_clock
    tracer.activate()
    clock.advance(100)
    with tracer.span("wal.fsync", pending=512) as span:
        clock.advance(40)
        span.tag(entries=7)
    (recorded,) = tracer.spans
    assert recorded.name == "wal.fsync"
    assert recorded.component == "wal"
    assert recorded.start_ns == pytest.approx(100)
    assert recorded.end_ns == pytest.approx(140)
    assert recorded.duration_ns == pytest.approx(40)
    assert recorded.tags == {"pending": 512, "entries": 7}


def test_nesting_depth_is_recorded(tracer_and_clock):
    tracer, clock = tracer_and_clock
    tracer.activate()
    with tracer.span("recovery.total"):
        with tracer.span("recovery.wal_replay"):
            clock.advance(5)
        with tracer.span("recovery.index_rebuild"):
            with tracer.span("recovery.leaf"):
                clock.advance(1)
    depths = {span.name: span.depth for span in tracer.spans}
    assert depths == {"recovery.total": 0, "recovery.wal_replay": 1,
                      "recovery.index_rebuild": 1, "recovery.leaf": 2}


def test_spans_complete_innermost_first(tracer_and_clock):
    tracer, clock = tracer_and_clock
    tracer.activate()
    with tracer.span("recovery.total"):
        with tracer.span("recovery.wal_replay"):
            clock.advance(5)
    names = [span.name for span in tracer.spans]
    assert names == ["recovery.wal_replay", "recovery.total"]


def test_event_is_zero_duration(tracer_and_clock):
    tracer, clock = tracer_and_clock
    tracer.activate()
    clock.advance(33)
    tracer.event("alloc.persist", size=64)
    (span,) = tracer.spans
    assert span.duration_ns == 0.0
    assert span.start_ns == pytest.approx(33)
    assert span.tags == {"size": 64}


def test_ring_overflow_keeps_newest_and_counts_dropped(tracer_and_clock):
    tracer, clock = tracer_and_clock
    tracer.activate(capacity=4)
    for index in range(10):
        clock.advance(1)
        tracer.event(f"wal.append_{index}")
    assert len(tracer) == 4
    assert tracer.dropped == 6
    names = [span.name for span in tracer.spans]
    assert names == ["wal.append_6", "wal.append_7",
                     "wal.append_8", "wal.append_9"]


def test_activate_clears_previous_recording(tracer_and_clock):
    tracer, __ = tracer_and_clock
    tracer.activate(capacity=4)
    tracer.event("wal.append")
    tracer.activate(capacity=4)
    assert len(tracer) == 0
    assert tracer.dropped == 0


def test_deactivate_keeps_spans_readable(tracer_and_clock):
    tracer, __ = tracer_and_clock
    tracer.activate()
    tracer.event("wal.append")
    tracer.deactivate()
    tracer.event("wal.append")  # ignored
    assert len(tracer) == 1
    assert not tracer.enabled


def test_activate_rejects_nonpositive_capacity(tracer_and_clock):
    tracer, __ = tracer_and_clock
    with pytest.raises(ValueError):
        tracer.activate(capacity=0)


def test_components_counts_by_prefix(tracer_and_clock):
    tracer, __ = tracer_and_clock
    tracer.activate()
    tracer.event("wal.append")
    tracer.event("wal.fsync")
    tracer.event("checkpoint.write")
    assert tracer.components() == {"wal": 2, "checkpoint": 1}


def test_span_to_dict_round_trips_fields():
    span = Span("compaction.merge", 10.0, 35.0, 1, {"level": 2})
    record = span.to_dict()
    assert record["type"] == "span"
    assert record["component"] == "compaction"
    assert record["dur_ns"] == pytest.approx(25.0)
    assert record["tags"] == {"level": 2}
