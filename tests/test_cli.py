"""Tests for the command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_engines_command(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    for engine in ("inp", "cow", "log", "nvm-inp", "nvm-cow",
                   "nvm-log", "hybrid-inp"):
        assert engine in out


def test_ycsb_command(capsys):
    assert main(["ycsb", "--engine", "nvm-inp", "--mixture",
                 "balanced", "--tuples", "150", "--txns", "150"]) == 0
    out = capsys.readouterr().out
    assert "nvm-inp" in out
    assert "txn/s" in out


def test_ycsb_all_engines(capsys):
    assert main(["ycsb", "--all-engines", "--mixture", "read-only",
                 "--tuples", "120", "--txns", "120"]) == 0
    out = capsys.readouterr().out
    assert "cow" in out and "nvm-log" in out


def test_tpcc_command(capsys):
    assert main(["tpcc", "--engine", "inp", "--txns", "20"]) == 0
    out = capsys.readouterr().out
    assert "TPC-C" in out


def test_figure_one(capsys):
    assert main(["figure", "1"]) == 0
    out = capsys.readouterr().out
    assert "durable write bandwidth" in out


def test_unknown_figure(capsys):
    assert main(["figure", "99"]) == 2


def test_bad_engine_rejected():
    with pytest.raises(SystemExit):
        main(["ycsb", "--engine", "no-such-engine"])


def test_ycsb_trace_and_metrics_round_trip(tmp_path, capsys):
    trace_path = tmp_path / "out.jsonl"
    metrics_path = tmp_path / "out.prom"
    assert main(["ycsb", "--engine", "log", "--tuples", "150",
                 "--txns", "150",
                 "--trace", str(trace_path),
                 "--metrics", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "p50 (us)" in out and "p99 (us)" in out

    records = [json.loads(line)
               for line in trace_path.read_text().splitlines()]
    spans = [r for r in records if r["type"] == "span"]
    samples = [r for r in records if r["type"] == "sample"]
    components = {span["component"] for span in spans}
    assert "wal" in components
    assert "recovery" in components  # from the post-run crash cycle
    assert len(samples) >= 2
    assert all("t_ms" in sample for sample in samples)
    assert all(span["engine"] == "log" for span in spans)

    metrics_text = metrics_path.read_text()
    assert "# TYPE repro_txn_latency_ns histogram" in metrics_text
    for quantile in ('quantile="0.5"', 'quantile="0.95"',
                     'quantile="0.99"'):
        assert quantile in metrics_text
    assert "repro_txns_committed" in metrics_text

    # The obs subcommand summarizes both artifact shapes.
    assert main(["obs", str(trace_path)]) == 0
    out = capsys.readouterr().out
    assert "spans" in out and "Time series" in out
    assert main(["obs", str(metrics_path)]) == 0
    out = capsys.readouterr().out
    assert "repro_txn_latency_ns" in out


def test_obs_command_missing_file(tmp_path, capsys):
    assert main(["obs", str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot summarize" in capsys.readouterr().err


def test_ycsb_without_obs_flags_has_no_latency_columns(capsys):
    assert main(["ycsb", "--engine", "nvm-inp", "--tuples", "120",
                 "--txns", "120"]) == 0
    assert "p50 (us)" not in capsys.readouterr().out


def test_check_command_single_engine(capsys):
    assert main(["check", "--engines", "nvm-cow", "--tuples", "80",
                 "--txns", "100"]) == 0
    out = capsys.readouterr().out
    assert "Persistence-ordering check" in out
    assert "nvm-cow" in out and "ok" in out


def test_check_command_json_report(tmp_path, capsys):
    report_path = tmp_path / "check.json"
    assert main(["check", "--engines", "nvm-log", "--tuples", "80",
                 "--txns", "100", "--json", str(report_path)]) == 0
    payload = json.loads(report_path.read_text())
    assert payload["ok"] is True
    assert "ORD001" in payload["rules"]
    assert payload["engines"][0]["engine"] == "nvm-log"
    assert payload["engines"][0]["ok"] is True


def test_check_command_unknown_engine(capsys):
    assert main(["check", "--engines", "bogus"]) == 2
    assert "unknown engines" in capsys.readouterr().err


def test_lint_command_clean_tree(capsys):
    assert main(["lint"]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_lint_command_rule_catalogue(capsys):
    assert main(["lint", "--rules"]) == 0
    out = capsys.readouterr().out
    for code in ("LNT001", "LNT002", "LNT003", "LNT004", "LNT005"):
        assert code in out


def test_lint_command_flags_violations(tmp_path, capsys):
    bad = tmp_path / "bad_engine.py"
    bad.write_text(
        "def commit(self):\n"
        "    self.memory.clflush(addr, size)\n")
    assert main(["lint", str(bad), "--select", "LNT001"]) == 1
    out = capsys.readouterr().out
    assert "LNT001" in out and "1 finding(s)" in out


def test_lint_command_json_output(tmp_path, capsys):
    bad = tmp_path / "bad_engine.py"
    bad.write_text(
        "class _Holder:\n"
        "    def __init__(self):\n"
        "        self.x = 0\n")
    assert main(["lint", str(bad), "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["code"] == "LNT005"


def test_lint_command_unknown_select(capsys):
    assert main(["lint", "--select", "LNT999"]) == 2
    assert "unknown rule codes" in capsys.readouterr().err


def test_chaos_command_fault_free_json_report(tmp_path, capsys):
    report_path = tmp_path / "chaos.json"
    assert main(["chaos", "--clients", "2", "--txns", "4",
                 "--keys", "8", "--seed", "3", "--crash-cycles", "0",
                 "--fault-scale", "0.0",
                 "--json", str(report_path)]) == 0
    out = capsys.readouterr().out
    assert "invariants: all held" in out
    payload = json.loads(report_path.read_text())
    assert payload["kind"] == "repro-chaos-report"
    assert payload["ok"] is True
    assert payload["committed"] == 8
