"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_engines_command(capsys):
    assert main(["engines"]) == 0
    out = capsys.readouterr().out
    for engine in ("inp", "cow", "log", "nvm-inp", "nvm-cow",
                   "nvm-log", "hybrid-inp"):
        assert engine in out


def test_ycsb_command(capsys):
    assert main(["ycsb", "--engine", "nvm-inp", "--mixture",
                 "balanced", "--tuples", "150", "--txns", "150"]) == 0
    out = capsys.readouterr().out
    assert "nvm-inp" in out
    assert "txn/s" in out


def test_ycsb_all_engines(capsys):
    assert main(["ycsb", "--all-engines", "--mixture", "read-only",
                 "--tuples", "120", "--txns", "120"]) == 0
    out = capsys.readouterr().out
    assert "cow" in out and "nvm-log" in out


def test_tpcc_command(capsys):
    assert main(["tpcc", "--engine", "inp", "--txns", "20"]) == 0
    out = capsys.readouterr().out
    assert "TPC-C" in out


def test_figure_one(capsys):
    assert main(["figure", "1"]) == 0
    out = capsys.readouterr().out
    assert "durable write bandwidth" in out


def test_unknown_figure(capsys):
    assert main(["figure", "99"]) == 2


def test_bad_engine_rejected():
    with pytest.raises(SystemExit):
        main(["ycsb", "--engine", "no-such-engine"])
