"""Unit and property tests for the copy-on-write B+tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.cow_btree import CoWBTree


@pytest.fixture
def tree():
    return CoWBTree(node_size=128)  # fanout 8


def test_mutation_requires_batch(tree):
    with pytest.raises(RuntimeError):
        tree.put(1, "x")
    with pytest.raises(RuntimeError):
        tree.delete(1)


def test_put_commit_get(tree):
    tree.begin_batch()
    tree.put(1, "one")
    tree.commit()
    assert tree.get(1) == "one"
    assert tree.get(1, dirty=False) == "one"


def test_dirty_reads_see_uncommitted(tree):
    tree.begin_batch()
    tree.put(1, "one")
    assert tree.get(1, dirty=True) == "one"
    assert tree.get(1, dirty=False) is None


def test_abort_discards_changes(tree):
    tree.begin_batch()
    tree.put(1, "committed")
    tree.commit()
    tree.begin_batch()
    tree.put(1, "uncommitted")
    tree.put(2, "new")
    tree.abort()
    assert tree.get(1) == "committed"
    assert tree.get(2) is None
    assert len(tree) == 1


def test_versions_share_unmodified_subtrees(tree):
    tree.begin_batch()
    for key in range(200):
        tree.put(key, key)
    tree.commit()
    tree.begin_batch()
    tree.put(0, -1)  # touches one root-to-leaf path
    # Current and dirty share everything except the copied path.
    total = tree.node_count(dirty=True)
    shared = tree.shared_node_count()
    assert shared > 0
    assert total - shared <= tree_depth_upper_bound(tree)
    tree.commit()


def tree_depth_upper_bound(tree):
    # A single-path update copies at most depth nodes (plus splits).
    node, depth = tree.dirty_root, 1
    while not node.is_leaf:
        node = node.children[0]
        depth += 1
    return depth + 2


def test_commit_callback_receives_created_nodes(tree):
    captured = {}

    def persist(created, new_root):
        captured["created"] = list(created)
        captured["root"] = new_root

    tree.begin_batch()
    tree.put(1, "x")
    tree.commit(persist=persist)
    assert captured["created"], "path copy must create nodes"
    assert captured["root"] is tree.current_root


def test_delete_committed_key(tree):
    tree.begin_batch()
    for key in range(50):
        tree.put(key, key)
    tree.commit()
    tree.begin_batch()
    assert tree.delete(25) is True
    tree.commit()
    assert tree.get(25) is None
    assert len(tree) == 49
    tree.check_invariants()


def test_delete_missing_key(tree):
    tree.begin_batch()
    tree.put(1, 1)
    assert tree.delete(9) is False
    tree.commit()


def test_delete_everything(tree):
    tree.begin_batch()
    for key in range(100):
        tree.put(key, key)
    tree.commit()
    tree.begin_batch()
    for key in range(100):
        assert tree.delete(key) is True
    tree.commit()
    assert len(tree) == 0
    assert list(tree.items()) == []
    tree.check_invariants()


def test_items_range(tree):
    tree.begin_batch()
    for key in range(0, 60, 3):
        tree.put(key, key)
    tree.commit()
    assert [k for k, __ in tree.items(lo=10, hi=25)] == [12, 15, 18, 21, 24]


def test_multiple_epochs(tree):
    for epoch in range(10):
        tree.begin_batch()
        for key in range(epoch * 10, epoch * 10 + 10):
            tree.put(key, key)
        tree.commit()
    assert len(tree) == 100
    assert list(tree.keys_snapshot()) if hasattr(tree, "keys_snapshot") \
        else [k for k, __ in tree.items()] == list(range(100))
    tree.check_invariants()


def test_begin_batch_idempotent(tree):
    tree.begin_batch()
    tree.put(1, 1)
    tree.begin_batch()  # no-op: same epoch continues
    tree.put(2, 2)
    tree.commit()
    assert len(tree) == 2


def test_commit_without_batch_is_noop(tree):
    tree.commit()
    tree.abort()
    assert len(tree) == 0


def test_install_recovered_root(tree):
    tree.begin_batch()
    for key in range(20):
        tree.put(key, key)
    tree.commit()
    root = tree.current_root
    fresh = CoWBTree(node_size=128)
    fresh.install_recovered_root(root, 20)
    assert fresh.get(7) == 7
    assert len(fresh) == 20


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.sampled_from(["put", "delete", "commit", "abort"]),
              st.integers(min_value=0, max_value=500)),
    max_size=120))
def test_property_matches_two_version_model(operations):
    tree = CoWBTree(node_size=128)
    committed = {}
    dirty = {}
    for action, key in operations:
        if action == "put":
            tree.begin_batch()
            tree.put(key, key)
            dirty[key] = key
        elif action == "delete":
            tree.begin_batch()
            assert tree.delete(key) == (key in dirty)
            dirty.pop(key, None)
        elif action == "commit":
            tree.commit()
            committed = dict(dirty)
        else:
            tree.abort()
            dirty = dict(committed)
    assert dict(tree.items(dirty=True)) == dirty
    assert dict(tree.items(dirty=False)) == committed
    tree.check_invariants(dirty=True)
    tree.check_invariants(dirty=False)
