"""Unit tests for the non-volatile B+tree."""

import pytest

from repro.index.cost import NVMIndexCostModel
from repro.index.nv_btree import NVBTree
from repro.index.stx_btree import STXBTree


@pytest.fixture
def nv_tree(platform):
    cost = NVMIndexCostModel(platform.allocator, platform.memory,
                             tag="index", persistent=True)
    return NVBTree(node_size=256, cost_model=cost), platform


def test_basic_operations(nv_tree):
    tree, __ = nv_tree
    for key in range(100):
        tree.put(key, key)
    assert tree.get(42) == 42
    assert tree.delete(42)
    assert 42 not in tree
    tree.check_invariants()


def test_mutations_issue_syncs(nv_tree):
    tree, platform = nv_tree
    before = platform.stats.counter("cache.sync")
    tree.put(1, "x")
    assert platform.stats.counter("cache.sync") > before


def test_nv_tree_survives_crash(nv_tree):
    tree, platform = nv_tree
    for key in range(200):
        tree.put(key, key * 3)
    platform.crash()
    # Persistent allocations survive; the index is consistent without
    # any rebuild (Section 4.1).
    assert tree.contains_after_restart(150)
    assert tree.get(150) == 450
    tree.check_invariants()


def test_volatile_tree_allocations_reclaimed_on_crash(platform):
    cost = NVMIndexCostModel(platform.allocator, platform.memory,
                             tag="index", persistent=False)
    tree = STXBTree(node_size=256, cost_model=cost)
    for key in range(200):
        tree.put(key, key)
    assert platform.allocator.bytes_by_tag()["index"] > 0
    platform.crash()
    assert platform.allocator.bytes_by_tag()["index"] == 0


def test_nv_mutation_costs_more_than_volatile(platform):
    """Per-mutation durable syncs make NV index writes dearer — the
    trade against instant recovery."""
    volatile_cost = NVMIndexCostModel(platform.allocator, platform.memory)
    volatile = STXBTree(node_size=256, cost_model=volatile_cost)
    start = platform.clock.now_ns
    for key in range(100):
        volatile.put(key, key)
    volatile_time = platform.clock.now_ns - start

    nv_cost = NVMIndexCostModel(platform.allocator, platform.memory,
                                persistent=True)
    nv = NVBTree(node_size=256, cost_model=nv_cost)
    start = platform.clock.now_ns
    for key in range(100):
        nv.put(key, key)
    nv_time = platform.clock.now_ns - start

    assert nv_time > volatile_time
