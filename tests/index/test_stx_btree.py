"""Unit and property tests for the STX-style B+tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.stx_btree import STXBTree


@pytest.fixture
def tree():
    return STXBTree(node_size=128)  # fanout 8 -> exercises splits fast


def test_empty_tree(tree):
    assert len(tree) == 0
    assert tree.get(1) is None
    assert 1 not in tree
    assert list(tree.items()) == []


def test_put_get_single(tree):
    assert tree.put(5, "five") is True
    assert tree.get(5) == "five"
    assert 5 in tree
    assert len(tree) == 1


def test_put_replaces(tree):
    tree.put(5, "a")
    assert tree.put(5, "b") is False
    assert tree.get(5) == "b"
    assert len(tree) == 1


def test_insert_duplicate_raises(tree):
    tree.insert(1, "x")
    with pytest.raises(KeyError):
        tree.insert(1, "y")


def test_many_inserts_sorted_iteration(tree):
    keys = list(range(200))
    import random
    random.Random(3).shuffle(keys)
    for key in keys:
        tree.put(key, key * 10)
    assert list(tree.keys()) == sorted(keys)
    assert tree.get(137) == 1370
    tree.check_invariants()


def test_range_scan(tree):
    for key in range(0, 100, 2):
        tree.put(key, key)
    result = [k for k, __ in tree.items(lo=10, hi=20)]
    assert result == [10, 12, 14, 16, 18]


def test_range_scan_open_ended(tree):
    for key in range(5):
        tree.put(key, key)
    assert [k for k, __ in tree.items(lo=3)] == [3, 4]
    assert [k for k, __ in tree.items(hi=2)] == [0, 1]


def test_delete_existing(tree):
    for key in range(50):
        tree.put(key, key)
    assert tree.delete(25) is True
    assert 25 not in tree
    assert len(tree) == 49
    tree.check_invariants()


def test_delete_missing(tree):
    tree.put(1, 1)
    assert tree.delete(99) is False
    assert len(tree) == 1


def test_delete_all_keys(tree):
    keys = list(range(100))
    for key in keys:
        tree.put(key, key)
    for key in keys:
        assert tree.delete(key) is True
        tree.check_invariants()
    assert len(tree) == 0
    assert list(tree.items()) == []


def test_delete_reverse_order(tree):
    for key in range(64):
        tree.put(key, key)
    for key in reversed(range(64)):
        assert tree.delete(key)
    assert len(tree) == 0


def test_depth_grows_with_size():
    tree = STXBTree(node_size=64)  # fanout 4
    assert tree.depth() == 1
    for key in range(100):
        tree.put(key, key)
    assert tree.depth() >= 3


def test_larger_nodes_make_shallower_trees():
    small = STXBTree(node_size=64)
    large = STXBTree(node_size=1024)
    for key in range(500):
        small.put(key, key)
        large.put(key, key)
    assert large.depth() < small.depth()


def test_node_size_too_small_rejected():
    with pytest.raises(ValueError):
        STXBTree(node_size=32)


def test_string_keys(tree):
    for word in ["pear", "apple", "fig", "mango"]:
        tree.put(word, word.upper())
    assert list(tree.keys()) == ["apple", "fig", "mango", "pear"]
    assert tree.get("fig") == "FIG"


def test_tuple_keys(tree):
    tree.put((1, "a"), 1)
    tree.put((1, "b"), 2)
    tree.put((0, "z"), 3)
    assert list(tree.keys()) == [(0, "z"), (1, "a"), (1, "b")]


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=-10_000, max_value=10_000)))
def test_property_matches_dict(operations):
    tree = STXBTree(node_size=64)
    model = {}
    for op in operations:
        if op >= 0:
            tree.put(op, op * 2)
            model[op] = op * 2
        else:
            key = -op
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
    assert len(tree) == len(model)
    assert dict(tree.items()) == model
    tree.check_invariants()


@settings(max_examples=30, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=5000), max_size=300),
       st.integers(min_value=0, max_value=5000),
       st.integers(min_value=0, max_value=5000))
def test_property_range_scan_matches_sorted_filter(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    tree = STXBTree(node_size=128)
    for key in keys:
        tree.put(key, key)
    expected = sorted(k for k in keys if lo <= k < hi)
    assert [k for k, __ in tree.items(lo=lo, hi=hi)] == expected


def test_cost_model_charged(platform):
    from repro.index.cost import NVMIndexCostModel
    cost = NVMIndexCostModel(platform.allocator, platform.memory,
                             tag="index")
    tree = STXBTree(node_size=512, cost_model=cost)
    loads_before = platform.device.loads
    for key in range(500):
        tree.put(key, key)
    assert platform.allocator.bytes_by_tag().get("index", 0) > 0
    tree.get(250)
    assert platform.device.loads >= loads_before
    assert cost.total_bytes() == tree.node_count() * 512
