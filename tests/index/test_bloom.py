"""Unit and property tests for the Bloom filter."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bloom import BloomFilter


def test_no_false_negatives_small():
    bloom = BloomFilter(expected_keys=100)
    for key in range(100):
        bloom.add(key)
    assert all(bloom.might_contain(key) for key in range(100))


def test_mostly_rejects_absent_keys():
    bloom = BloomFilter(expected_keys=1000)
    for key in range(1000):
        bloom.add(key)
    false_positives = sum(
        1 for key in range(10_000, 20_000) if bloom.might_contain(key))
    assert false_positives < 500  # ~1% expected at 10 bits/key


def test_build_classmethod():
    bloom = BloomFilter.build(["a", "b", "c"])
    assert "a" in bloom
    assert bloom.count == 3


def test_empty_filter_contains_nothing():
    bloom = BloomFilter(expected_keys=10)
    assert not bloom.might_contain("anything")
    assert bloom.fill_ratio() == 0.0


def test_size_scales_with_keys():
    small = BloomFilter(expected_keys=10)
    large = BloomFilter(expected_keys=1000)
    assert large.size_bytes > small.size_bytes


def test_invalid_parameters():
    with pytest.raises(ValueError):
        BloomFilter(expected_keys=-1)
    with pytest.raises(ValueError):
        BloomFilter(expected_keys=10, bits_per_key=0)
    with pytest.raises(ValueError):
        BloomFilter(expected_keys=10, num_hashes=0)


def test_mixed_key_types():
    bloom = BloomFilter.build([1, "1", (1, 2), None])
    assert bloom.might_contain(1)
    assert bloom.might_contain("1")
    assert bloom.might_contain((1, 2))
    assert bloom.might_contain(None)


@settings(max_examples=50, deadline=None)
@given(st.sets(st.text(max_size=20), max_size=200))
def test_property_no_false_negatives(keys):
    bloom = BloomFilter.build(keys)
    assert all(bloom.might_contain(key) for key in keys)
