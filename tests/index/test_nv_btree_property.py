"""Property test: the non-volatile B+tree matches a dict model across
random operations interleaved with platform crashes."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import CacheConfig, PlatformConfig
from repro.index.cost import NVMIndexCostModel
from repro.index.nv_btree import NVBTree
from repro.nvm.platform import Platform

OPERATIONS = st.lists(
    st.tuples(st.sampled_from(["put", "delete", "crash"]),
              st.integers(min_value=0, max_value=300)),
    max_size=120)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(operations=OPERATIONS)
def test_nv_btree_survives_random_crashes(operations):
    platform = Platform(PlatformConfig(
        cache=CacheConfig(capacity_bytes=64 * 1024,
                          crash_eviction_probability=0.5),
        seed=21))
    cost = NVMIndexCostModel(platform.allocator, platform.memory,
                             tag="index", persistent=True)
    tree = NVBTree(node_size=128, cost_model=cost)
    model = {}
    for kind, key in operations:
        if kind == "put":
            tree.put(key, key * 3)
            model[key] = key * 3
        elif kind == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            platform.crash()
            # Every mutation was individually durable: nothing lost.
    platform.crash()
    assert dict(tree.items()) == model
    tree.check_invariants()
