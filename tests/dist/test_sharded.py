"""Tests for the sharded execution tier (process-per-partition).

The tier's correctness contract: a sharded run of any spec produces
**byte-identical** simulated results to the serial run of the same
spec — sharding may only change wall-clock time. Everything here is
guarded on the ``fork`` start method like the scheduler's tests.
"""

import dataclasses
import json
import multiprocessing

import pytest

from repro.core.database import Database
from repro.dist import ShardedDatabase
from repro.dist.txn import Branch, DistributedTransaction
from repro.errors import DatabaseClosedError, ShardedError
from repro.harness.runner import run
from repro.harness.spec import ExperimentSpec
from repro.obs.session import ObservabilitySession
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload
from repro.workloads.tpcc_audit import audit_tpcc
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()
pytestmark = pytest.mark.skipif(
    not HAVE_FORK, reason="sharded tier tests need the fork "
                          "start method")

TINY = dict(num_tuples=300, num_txns=250, cache_bytes=64 * 1024)

TPCC_TINY = TPCCConfig(warehouses=2, districts_per_warehouse=2,
                       customers_per_district=8, items=25,
                       initial_orders_per_district=4, seed=67)


def _result_json(result):
    return json.dumps(result.to_dict(), sort_keys=True)


# ----------------------------------------------------------------------
# Determinism: serial == sharded, byte for byte
# ----------------------------------------------------------------------

def test_ycsb_sharded_result_is_byte_identical():
    spec = ExperimentSpec.ycsb("nvm-inp", **TINY)
    serial = run(spec)
    sharded = run(spec.with_options(sharded=True))
    assert _result_json(serial) == _result_json(sharded)


def test_ycsb_sharded_multipartition_result_is_byte_identical():
    spec = ExperimentSpec.ycsb("nvm-inp", partitions=4, **TINY)
    serial = run(spec)
    sharded = run(spec.with_options(sharded=True))
    assert _result_json(serial) == _result_json(sharded)


def test_tpcc_sharded_result_is_byte_identical():
    spec = ExperimentSpec.tpcc("nvm-inp", tpcc_config=TPCC_TINY,
                               num_txns=120, partitions=2)
    serial = run(spec)
    sharded = run(spec.with_options(sharded=True))
    assert _result_json(serial) == _result_json(sharded)


def test_sharded_observability_exports_are_byte_identical(tmp_path):
    spec = ExperimentSpec.ycsb("nvm-inp", partitions=2,
                               crash_recover=True, **TINY)
    exports = {}
    for label, point in (("serial", spec),
                        ("sharded",
                         spec.with_options(sharded=True))):
        session = ObservabilitySession()
        run(point, obs=session)
        trace = tmp_path / f"{label}.jsonl"
        metrics = tmp_path / f"{label}.prom"
        session.export_trace(str(trace))
        session.export_metrics(str(metrics))
        exports[label] = (trace.read_bytes(), metrics.read_bytes())
    assert exports["serial"][0] == exports["sharded"][0]
    assert exports["serial"][1] == exports["sharded"][1]


# ----------------------------------------------------------------------
# Coordinator API
# ----------------------------------------------------------------------

def test_basic_ops_route_and_merge():
    config = YCSBConfig(num_tuples=120, seed=5)
    db = ShardedDatabase(engine="nvm-inp", partitions=3)
    try:
        workload = YCSBWorkload(config, partitions=3)
        workload.load(db)
        workload.run(db, 200)
        db.barrier()
        # Merged scan sees every partition's rows in key order.
        rows = db.scan(YCSBWorkload.TABLE)
        assert len(rows) == 120
        keys = [key for key, __ in rows]
        assert keys == sorted(keys)
        assert db.committed_txns >= 200
    finally:
        db.close()


def test_crash_and_recover_preserves_committed_data():
    db = ShardedDatabase(engine="nvm-inp", partitions=2)
    try:
        workload = YCSBWorkload(YCSBConfig(num_tuples=80, seed=9),
                                partitions=2)
        workload.load(db)
        before = db.scan(YCSBWorkload.TABLE)
        db.crash()
        db.recover()
        assert db.scan(YCSBWorkload.TABLE) == before
    finally:
        db.close()


def test_closed_database_raises():
    db = ShardedDatabase(engine="nvm-inp", partitions=2)
    db.close()
    db.close()  # idempotent
    with pytest.raises(DatabaseClosedError):
        db.get("nope", 1)


def test_executor_errors_surface_with_traceback():
    db = ShardedDatabase(engine="nvm-inp", partitions=2)
    try:
        with pytest.raises(ShardedError) as excinfo:
            db.get("no_such_table", 1)
        assert "no_such_table" in str(excinfo.value)
    finally:
        db.close()


# ----------------------------------------------------------------------
# TPC-C remote orders: the un-cheated path
# ----------------------------------------------------------------------

def test_remote_new_order_runs_as_distributed_txn():
    config = dataclasses.replace(TPCC_TINY, remote_order_fraction=0.3)
    serial_db = Database(engine="nvm-inp", partitions=2)
    serial = TPCCWorkload(config, partitions=2)
    serial.load(serial_db)
    counts = serial.run(serial_db, 120)
    assert serial.remote_redirected > 0
    assert serial.remote_distributed == 0
    assert audit_tpcc(serial_db, config, partitions=2) == []

    db = ShardedDatabase(engine="nvm-inp", partitions=2)
    try:
        sharded = TPCCWorkload(config, partitions=2)
        sharded.load(db)
        assert sharded.run(db, 120) == counts
        assert sharded.remote_distributed == serial.remote_redirected
        assert sharded.remote_redirected == 0
        # TPC-C consistency conditions hold across the 2PC writes,
        # including after a crash/recovery cycle.
        assert audit_tpcc(db, config, partitions=2) == []
        db.crash()
        db.recover()
        assert audit_tpcc(db, config, partitions=2) == []
    finally:
        db.close()


def test_cross_executor_distributed_txn():
    db = ShardedDatabase(engine="nvm-inp", partitions=2)
    try:
        workload = YCSBWorkload(YCSBConfig(num_tuples=40, seed=3),
                                partitions=2)
        workload.load(db)
        db.barrier()
        dtxn = DistributedTransaction(
            Branch(0, _rewrite, (0, "home-write")),
            (Branch(1, _rewrite, (20, "remote-write")),))
        db.execute_distributed(dtxn)
        row0 = db.get(YCSBWorkload.TABLE, 0, partition=0)
        row1 = db.get(YCSBWorkload.TABLE, 20, partition=1)
        assert row0["field0"] == "home-write"
        assert row1["field0"] == "remote-write"
    finally:
        db.close()


def _rewrite(ctx, key, value):
    ctx.update(YCSBWorkload.TABLE, key, {"field0": value})
    return value
