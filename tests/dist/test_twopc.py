"""Tests for the two-phase commit protocol (in-process tier).

The protocol code is shared between the in-process database
(``Database.execute_distributed``) and the sharded coordinator, so
these tests exercise it where crashes are cheap and deterministic.
"""

import pytest

from repro.config import CacheConfig, EngineConfig, PlatformConfig
from repro.core.database import Database
from repro.core.schema import Column, ColumnType, Schema
from repro.dist import twopc
from repro.dist.campaign import TWOPC_POINTS, run_twopc_campaign
from repro.dist.txn import Branch, DistributedTransaction
from repro.errors import (ConfigError, SimulatedCrash,
                          TransactionAborted)
from repro.fault.injector import FaultPlan

TABLE = "pairs"


def _schema():
    return Schema.build(
        TABLE,
        [Column("id", ColumnType.INT),
         Column("v", ColumnType.STRING, capacity=16)],
        primary_key=["id"])


def _database(partitions=2):
    db = Database(
        engine="nvm-inp", partitions=partitions,
        platform_config=PlatformConfig(
            cache=CacheConfig(crash_eviction_probability=0.0)),
        engine_config=EngineConfig(group_commit_size=1))
    db.create_table(_schema())
    return db


def _upsert(ctx, key, value):
    if ctx.get(TABLE, key) is None:
        ctx.insert(TABLE, {"id": key, "v": value})
    else:
        ctx.update(TABLE, key, {"v": value})
    return value


def _veto(ctx):
    raise TransactionAborted("participant says no")


def _pair(key, value, home=0):
    return DistributedTransaction(
        Branch(home, _upsert, (key, value)),
        (Branch(1 - home, _upsert, (key, value)),))


def _read(db, key, pid):
    row = db.get(TABLE, key, partition=pid)
    return None if row is None else row["v"]


# ----------------------------------------------------------------------
# DistributedTransaction shape
# ----------------------------------------------------------------------

def test_remote_branches_are_canonically_ordered():
    dtxn = DistributedTransaction(
        Branch(1, _upsert, (1, "a")),
        (Branch(3, _upsert, (1, "a")), Branch(0, _upsert, (1, "a"))))
    assert [b.partition for b in dtxn.branches()] == [1, 0, 3]
    assert dtxn.participants == (1, 0, 3)


def test_duplicate_participants_rejected():
    with pytest.raises(ConfigError):
        DistributedTransaction(
            Branch(0, _upsert, (1, "a")),
            (Branch(0, _upsert, (1, "a")),))


# ----------------------------------------------------------------------
# Commit / abort
# ----------------------------------------------------------------------

def test_commit_applies_on_both_partitions():
    db = _database()
    result = db.execute_distributed(_pair(1, "both"))
    assert result == "both"
    assert _read(db, 1, 0) == "both"
    assert _read(db, 1, 1) == "both"
    assert db.committed_txns >= 2  # one branch per participant


def test_veto_aborts_every_branch():
    db = _database()
    db.execute_distributed(_pair(1, "before"))
    dtxn = DistributedTransaction(
        Branch(0, _upsert, (1, "after")), (Branch(1, _veto, ()),))
    with pytest.raises(TransactionAborted):
        db.execute_distributed(dtxn)
    # The prepared home branch must have been rolled back.
    assert _read(db, 1, 0) == "before"
    assert _read(db, 1, 1) == "before"


def test_acknowledged_commit_survives_crash():
    db = _database()
    db.execute_distributed(_pair(2, "durable", home=1))
    db.crash()
    db.recover()
    assert _read(db, 2, 0) == "durable"
    assert _read(db, 2, 1) == "durable"


# ----------------------------------------------------------------------
# Crash points: the three 2PC fault points, one scripted crash each
# ----------------------------------------------------------------------

def _crash_at(point):
    db = _database()
    db.execute_distributed(_pair(3, "acked"))
    db.arm_faults(FaultPlan([(point, 1)]))
    with pytest.raises(SimulatedCrash):
        db.execute_distributed(_pair(3, "in-doubt"))
    db.disarm_faults()
    db.recover()
    return db


def test_crash_after_prepare_aborts_in_doubt():
    """Only one participant prepared: no decision record exists, so
    presumed abort must roll the pair back to the acked value."""
    db = _crash_at(twopc.FP_PREPARE_AFTER)
    assert _read(db, 3, 0) == "acked"
    assert _read(db, 3, 1) == "acked"


def test_crash_before_decision_aborts_in_doubt():
    """Both participants prepared but the decision never became
    durable: presumed abort."""
    db = _crash_at(twopc.FP_DECIDE_BEFORE)
    assert _read(db, 3, 0) == "acked"
    assert _read(db, 3, 1) == "acked"


def test_crash_after_decision_commits_in_doubt():
    """The commit decision is durable: recovery must finish the commit
    on both participants even though neither applied it."""
    db = _crash_at(twopc.FP_DECIDE_AFTER)
    assert _read(db, 3, 0) == "in-doubt"
    assert _read(db, 3, 1) == "in-doubt"


def test_resolution_is_idempotent_across_repeated_recovery():
    db = _crash_at(twopc.FP_DECIDE_AFTER)
    db.crash()
    db.recover()
    assert _read(db, 3, 0) == "in-doubt"
    assert _read(db, 3, 1) == "in-doubt"
    for pid in (0, 1):
        assert twopc.pending_prepares(db.partitions[pid]) == []


# ----------------------------------------------------------------------
# Campaign: every sampled coordinate survives with a clean oracle
# ----------------------------------------------------------------------

def test_twopc_campaign_finds_no_violations():
    report = run_twopc_campaign(["nvm-inp"], seed=11, ops=24)
    assert report.ok, report.violations
    assert not any(report.uncovered.values())
    # All three protocol points were reached and swept.
    assert set(report.counting["nvm-inp"].hits) == set(TWOPC_POINTS)
    assert len(report.results) >= 3
    for result in report.results:
        assert result.crashes >= 1
        assert result.fired, "trigger never fired"
