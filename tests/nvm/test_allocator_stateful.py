"""Stateful property test for the NVM allocator.

Random malloc/free/persist/crash sequences against a model of live
allocations: persisted allocations must survive crashes, unpersisted
ones must be reclaimed, allocations never overlap, and freed space is
reusable.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)

from repro.config import PlatformConfig
from repro.nvm.allocator import HEADER_SIZE
from repro.nvm.platform import Platform


class AllocatorMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.platform = Platform(PlatformConfig(
            nvm_capacity_bytes=4 * 1024 * 1024, seed=3))
        self.allocator = self.platform.allocator
        self.live = {}       # addr -> (allocation, persisted)

    @rule(size=st.integers(min_value=1, max_value=4096),
          persist=st.booleans())
    def malloc(self, size, persist):
        allocation = self.allocator.malloc(size)
        if persist:
            self.allocator.persist(allocation)
        self.live[allocation.addr] = (allocation, persist)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def free(self, data):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        allocation, __ = self.live.pop(addr)
        self.allocator.free(allocation)

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def sync(self, data):
        addr = data.draw(st.sampled_from(sorted(self.live)))
        allocation, __ = self.live[addr]
        self.allocator.sync(allocation)
        self.live[addr] = (allocation, True)

    @rule()
    def crash(self):
        self.platform.crash()
        self.live = {addr: entry for addr, entry in self.live.items()
                     if entry[1]}

    @invariant()
    def live_set_matches(self):
        if not hasattr(self, "allocator"):
            return
        for addr, (allocation, __) in self.live.items():
            assert self.allocator.resolve_optional(addr) is allocation

    @invariant()
    def no_overlaps(self):
        if not hasattr(self, "allocator"):
            return
        spans = sorted(
            (allocation.addr - HEADER_SIZE,
             allocation.addr + allocation.size)
            for allocation, __ in self.live.values())
        for (___, end), (start, ____) in zip(spans, spans[1:]):
            assert end <= start, "allocations overlap"


TestAllocatorMachine = AllocatorMachine.TestCase
TestAllocatorMachine.settings = __import__("hypothesis").settings(
    max_examples=25, stateful_step_count=40, deadline=None)
