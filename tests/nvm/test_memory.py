"""Unit tests for the NVMMemory facade."""

import pytest

from repro.nvm.constants import TECHNOLOGIES, wear_fraction


def test_u64_roundtrip(platform):
    memory = platform.memory
    allocation = platform.allocator.malloc(16)
    memory.store_u64(allocation.addr, 0xDEADBEEF12345678)
    assert memory.load_u64(allocation.addr) == 0xDEADBEEF12345678


def test_atomic_durable_store_survives_crash(platform):
    memory = platform.memory
    allocation = platform.allocator.malloc(8)
    platform.allocator.persist(allocation)
    memory.atomic_durable_store_u64(allocation.addr, 42)
    platform.crash()
    assert memory.load_u64(allocation.addr) == 42


def test_non_durable_store_may_be_lost(platform):
    """Without a sync, a crash with eviction probability 0 loses the
    cached store."""
    from repro.config import CacheConfig, PlatformConfig
    from repro.nvm.platform import Platform
    p = Platform(PlatformConfig(
        cache=CacheConfig(crash_eviction_probability=0.0), seed=1))
    allocation = p.allocator.malloc(8)
    p.allocator.persist(allocation)
    p.memory.store_u64(allocation.addr, 77)
    p.crash()
    assert p.memory.load_u64(allocation.addr) == 0


def test_load_batch_matches_individual_loads(platform):
    memory = platform.memory
    blobs = []
    ranges = []
    for i in range(5):
        allocation = platform.allocator.malloc(32)
        payload = bytes([i]) * 32
        memory.store(allocation.addr, payload)
        blobs.append(payload)
        ranges.append((allocation.addr, 32))
    assert memory.load_batch(ranges) == blobs


def test_load_batch_cheaper_than_sequential_calls(platform):
    """MLP: a batch of independent loads costs less than issuing them
    one by one (after flushing so every access misses)."""
    memory = platform.memory
    ranges = []
    for __ in range(10):
        allocation = platform.allocator.malloc(64)
        memory.store(allocation.addr, b"z" * 64)
        ranges.append((allocation.addr, 64))

    def flush_all():
        for addr, size in ranges:
            memory.clflush(addr, size)
        # Reset the stream detector with an unrelated access.
        other = platform.allocator.malloc(64)
        memory.touch_read(other.addr, 64)

    flush_all()
    start = platform.clock.now_ns
    for addr, size in ranges:
        memory.clflush(addr, size)  # guarantee misses, break streams
    flush_all()
    start = platform.clock.now_ns
    memory.load_batch(ranges)
    batch_cost = platform.clock.now_ns - start

    flush_all()
    start = platform.clock.now_ns
    previous = None
    for addr, size in reversed(ranges):  # reversed order breaks streams
        memory.load(addr, size)
    individual_cost = platform.clock.now_ns - start
    assert batch_cost < individual_cost


def test_table1_constants_sane():
    assert TECHNOLOGIES["PCM"].write_latency_ns \
        > TECHNOLOGIES["PCM"].read_latency_ns
    assert TECHNOLOGIES["MRAM"].read_latency_ns \
        < TECHNOLOGIES["DRAM"].read_latency_ns
    assert TECHNOLOGIES["SSD"].addressability == "block"
    profile = TECHNOLOGIES["PCM"].latency_profile()
    assert profile.read_latency_ns == 50


def test_wear_fraction():
    assert wear_fraction(1e8, 1e10) == pytest.approx(0.01)
    with pytest.raises(ValueError):
        wear_fraction(10, 0)
