"""Unit tests for the emulated NVM device."""

import pytest

from repro.config import LatencyProfile
from repro.errors import InvalidAddressError
from repro.nvm.device import NVMDevice
from repro.sim.clock import SimClock
from repro.sim.stats import StatsCollector


@pytest.fixture
def device():
    clock = SimClock()
    stats = StatsCollector(clock)
    dev = NVMDevice(1024 * 1024, LatencyProfile.dram(), clock, stats)
    return dev, clock, stats


def test_charge_load_counts_and_time(device):
    dev, clock, stats = device
    dev.charge_load(3)
    assert dev.loads == 3
    assert dev.bytes_loaded == 3 * 64
    assert stats.counter("nvm.loads") == 3
    assert clock.now_ns == pytest.approx(3 * 160)


def test_charge_store_is_bandwidth_bound(device):
    """Stores are posted: the write-back cache hides the latency; the
    emulator throttles only the sustainable write bandwidth."""
    dev, clock, __ = device
    dev.charge_store(1)
    assert clock.now_ns == pytest.approx(64 / 9.5)
    assert dev.stores == 1


def test_high_latency_profile_is_slower():
    clock = SimClock()
    stats = StatsCollector(clock)
    dev = NVMDevice(1024, LatencyProfile.high_nvm(), clock, stats)
    dev.charge_load(1)
    assert clock.now_ns == pytest.approx(1280)


def test_bulk_store_is_bandwidth_bound(device):
    dev, clock, __ = device
    dev.charge_bulk_store(6400)
    assert clock.now_ns == pytest.approx(6400 / 9.5)
    assert dev.stores == 100


def test_bulk_load_counts_lines_and_discounts_prefetch(device):
    dev, clock, __ = device
    dev.charge_bulk_load(128)   # 2 lines
    assert dev.loads == 2
    # First line full latency, second prefetch-discounted.
    assert clock.now_ns == pytest.approx(160 * 1.25 + 128 / 9.5)


def test_discounted_load_counts_full_lines(device):
    dev, clock, __ = device
    dev.charge_load(1, equivalent_lines=0.25)
    assert dev.loads == 1
    assert clock.now_ns == pytest.approx(40)


def test_raw_read_write_roundtrip(device):
    dev, clock, __ = device
    before = clock.now_ns
    dev.write_raw(128, b"hello")
    assert dev.read_raw(128, 5) == b"hello"
    assert clock.now_ns == before  # raw access charges no time


def test_raw_access_bounds_checked(device):
    dev, __, __unused = device
    with pytest.raises(InvalidAddressError):
        dev.read_raw(dev.capacity_bytes - 1, 2)
    with pytest.raises(InvalidAddressError):
        dev.write_raw(-1, b"x")


def test_reset_counters(device):
    dev, __, __unused = device
    dev.charge_load(5)
    dev.charge_store(5)
    dev.reset_counters()
    assert dev.loads == 0
    assert dev.stores == 0
