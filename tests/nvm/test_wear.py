"""Tests for device wear tracking and the allocator's wear spreading."""

import pytest

from repro import Column, ColumnType, Database, Schema
from repro.config import CacheConfig, PlatformConfig
from repro.nvm.platform import Platform


def make_platform():
    return Platform(PlatformConfig(
        cache=CacheConfig(capacity_bytes=32 * 1024),
        nvm_capacity_bytes=8 * 1024 * 1024,
        track_wear=True, seed=11))


def test_wear_disabled_by_default():
    platform = Platform(PlatformConfig())
    with pytest.raises(ValueError):
        platform.device.wear_histogram()


def test_wear_histogram_records_writebacks():
    platform = make_platform()
    allocation = platform.allocator.malloc(4096)
    platform.memory.store(allocation.addr, b"w" * 4096)
    platform.memory.sync(allocation.addr, 4096)
    histogram = platform.device.wear_histogram()
    assert sum(histogram) >= 64  # 4 KB flushed = 64 lines


def test_wear_concentrates_on_hot_line():
    platform = make_platform()
    # A spread of cold segments, each written once...
    cold = platform.allocator.malloc(20 * 4096)
    for offset in range(0, 20 * 4096, 4096):
        platform.memory.store(cold.addr + offset, b"c")
        platform.memory.sync(cold.addr + offset, 1)
    # ...and one hot line hammered 100 times.
    hot = platform.allocator.malloc(64)
    for i in range(100):
        platform.memory.store(hot.addr, bytes([i]))
        platform.memory.sync(hot.addr, 1)
    assert platform.device.wear_skew() > 5.0


def test_wear_skew_even_for_streaming_writes():
    platform = make_platform()
    allocation = platform.allocator.malloc(256 * 1024)
    for offset in range(0, 256 * 1024, 4096):
        platform.memory.store(allocation.addr + offset, b"x" * 4096)
        platform.memory.sync(allocation.addr + offset, 4096)
    assert platform.device.wear_skew() < 2.0


def test_reset_counters_clears_wear():
    platform = make_platform()
    allocation = platform.allocator.malloc(64)
    platform.memory.store(allocation.addr, b"y")
    platform.memory.sync(allocation.addr, 1)
    platform.device.reset_counters()
    assert sum(platform.device.wear_histogram()) == 0


def test_engine_run_produces_wear_profile():
    platform_config = PlatformConfig(
        cache=CacheConfig(capacity_bytes=64 * 1024),
        track_wear=True, seed=11)
    db = Database(engine="nvm-inp", platform_config=platform_config,
                  seed=11)
    db.create_table(Schema.build(
        "t", [Column("k", ColumnType.INT),
              Column("v", ColumnType.STRING, capacity=100)],
        primary_key=["k"]))
    for i in range(200):
        db.insert("t", {"k": i, "v": "v" * 60})
    for __ in range(100):
        db.update("t", 7, {"v": "hot" * 20})  # hammer one tuple
    device = db.partitions[0].platform.device
    assert sum(device.wear_histogram()) > 0
    assert device.wear_skew() > 1.5  # the hot tuple's segment stands out
