"""Unit tests for the PMFS-like NVM filesystem."""

import pytest

from repro.errors import FileExistsInNVMError, FileNotFoundInNVMError


@pytest.fixture
def fs(platform):
    return platform.filesystem


def test_create_and_exists(fs):
    fs.create("wal/log0")
    assert fs.exists("wal/log0")
    assert not fs.exists("wal/log1")


def test_create_duplicate_rejected(fs):
    fs.create("f")
    with pytest.raises(FileExistsInNVMError):
        fs.create("f")
    assert fs.create("f", exist_ok=True) is not None


def test_open_missing_raises(fs):
    with pytest.raises(FileNotFoundInNVMError):
        fs.open("missing")


def test_open_create(fs):
    file = fs.open("new", create=True)
    assert file.size == 0


def test_write_read_roundtrip(fs):
    file = fs.create("data")
    fs.write(file, 0, b"hello world")
    assert fs.read(file, 0, 11) == b"hello world"
    assert fs.read(file, 6, 5) == b"world"


def test_append_returns_offset(fs):
    file = fs.create("log")
    assert fs.append(file, b"aaa") == 0
    assert fs.append(file, b"bbb") == 3
    assert fs.read_all(file) == b"aaabbb"


def test_write_past_end_zero_fills(fs):
    file = fs.create("sparse")
    fs.write(file, 10, b"x")
    assert file.size == 11
    assert fs.read(file, 0, 11) == b"\x00" * 10 + b"x"


def test_crash_rolls_back_unsynced_writes(fs):
    file = fs.create("wal")
    fs.append(file, b"durable")
    fs.fsync(file)
    fs.append(file, b"lost")
    fs.crash()
    assert fs.read_all(file) == b"durable"


def test_crash_rolls_back_unsynced_overwrites(fs):
    file = fs.create("master")
    fs.write(file, 0, b"AAAA")
    fs.fsync(file)
    fs.write(file, 0, b"BBBB")
    fs.crash()
    assert fs.read_all(file) == b"AAAA"


def test_fsync_makes_writes_durable(fs):
    file = fs.create("wal")
    fs.append(file, b"committed")
    fs.fsync(file)
    fs.crash()
    assert fs.read_all(file) == b"committed"


def test_fsync_flushes_pending_bytes(fs, platform):
    file = fs.create("wal")
    fs.append(file, b"z" * 1000)
    stores_before = platform.device.stores
    fs.fsync(file)
    assert platform.device.stores > stores_before
    # Second fsync with nothing pending stores nothing new.
    stores_mid = platform.device.stores
    fs.fsync(file)
    assert platform.device.stores == stores_mid


def test_truncate(fs):
    file = fs.create("log")
    fs.append(file, b"0123456789")
    fs.fsync(file)
    fs.truncate(file, 4)
    assert fs.read_all(file) == b"0123"
    fs.crash()
    assert fs.read_all(file) == b"0123"  # truncation is durable


def test_delete(fs):
    fs.create("tmp")
    fs.delete("tmp")
    assert not fs.exists("tmp")
    with pytest.raises(FileNotFoundInNVMError):
        fs.delete("tmp")


def test_list_files_with_prefix(fs):
    fs.create("wal/0")
    fs.create("wal/1")
    fs.create("data/0")
    assert fs.list_files("wal/") == ["wal/0", "wal/1"]


def test_write_costs_more_than_allocator_store(platform):
    """The filesystem interface pays a syscall + copy per call; this is
    the root of the Fig. 1 bandwidth gap."""
    fs = platform.filesystem
    memory = platform.memory
    allocation = platform.allocator.malloc(64)
    file = fs.create("bench")

    start = platform.clock.now_ns
    memory.store(allocation.addr, b"x" * 64)
    memory.sync(allocation.addr, 64)
    allocator_cost = platform.clock.now_ns - start

    start = platform.clock.now_ns
    fs.append(file, b"x" * 64)
    fs.fsync(file)
    fs_cost = platform.clock.now_ns - start

    assert fs_cost > allocator_cost


def test_bytes_by_prefix_categorization(fs):
    a = fs.create("wal/log")
    fs.append(a, b"x" * 100)
    b = fs.create("checkpoint/1")
    fs.append(b, b"y" * 50)
    c = fs.create("misc")
    fs.append(c, b"z" * 10)
    totals = fs.bytes_by_prefix({"log": "wal/", "checkpoint": "checkpoint/"})
    assert totals == {"log": 100, "checkpoint": 50, "other": 10}


def test_total_bytes(fs):
    file = fs.create("d")
    fs.append(file, b"abc")
    assert fs.total_bytes() == 3
