"""Tests for the CLWB sync variant (Appendix C extension)."""

import random

from repro.config import CacheConfig, LatencyProfile
from repro.nvm.cache import CPUCache
from repro.nvm.device import NVMDevice
from repro.sim.clock import SimClock
from repro.sim.stats import StatsCollector


def make_cache(use_clwb):
    clock = SimClock()
    stats = StatsCollector(clock)
    device = NVMDevice(1024 * 1024, LatencyProfile.dram(), clock, stats)
    config = CacheConfig(capacity_bytes=4096, use_clwb=use_clwb)
    cache = CPUCache(config, device, clock, stats, random.Random(5))
    return cache, device, stats


def test_clwb_sync_is_durable():
    cache, device, __ = make_cache(use_clwb=True)
    cache.store(0, b"durable")
    cache.sync(0, 7)
    assert device.read_raw(0, 7) == b"durable"


def test_clwb_sync_keeps_line_cached():
    cache, __, __s = make_cache(use_clwb=True)
    cache.store(0, b"x")
    cache.sync(0, 1)
    misses_before = cache.misses
    cache.load(0, 1)
    assert cache.misses == misses_before  # still cached


def test_clflush_sync_invalidates():
    cache, __, __s = make_cache(use_clwb=False)
    cache.store(0, b"x")
    cache.sync(0, 1)
    misses_before = cache.misses
    cache.load(0, 1)
    assert cache.misses == misses_before + 1  # re-fetched from NVM


def test_clwb_reduces_loads_on_rewrite_cycle():
    """Repeated write-sync-read cycles on the same line: CLWB avoids
    the re-fetch every iteration."""
    results = {}
    for use_clwb in (False, True):
        cache, device, __ = make_cache(use_clwb)
        for i in range(50):
            cache.store(0, bytes([i]))
            cache.sync(0, 1)
            cache.load(0, 1)
        results[use_clwb] = device.loads
    assert results[True] < results[False]


def test_clwb_crash_consistency():
    cache, device, __ = make_cache(use_clwb=True)
    cache.store(0, b"synced")
    cache.sync(0, 6)
    cache.store(64, b"unsynced")
    cache.crash()
    assert device.read_raw(0, 6) == b"synced"
