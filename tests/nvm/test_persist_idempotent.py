"""Double-persist guards: repeated persist()/persist_all() calls must
not inflate the ``alloc.persist`` stat or re-notify observers."""

from __future__ import annotations

from repro.nvm.platform import Platform


class _Recorder:
    def __init__(self):
        self.persists = []

    def on_malloc(self, allocation):
        pass

    def on_free(self, allocation):
        pass

    def on_persist(self, allocation):
        self.persists.append(allocation.addr)


def test_double_persist_bumps_stat_once():
    platform = Platform()
    allocation = platform.allocator.malloc(64)
    before = platform.stats.counter("alloc.persist")
    platform.allocator.persist(allocation)
    platform.allocator.persist(allocation)
    platform.allocator.persist(allocation)
    assert platform.stats.counter("alloc.persist") == before + 1
    assert allocation.persisted


def test_double_persist_notifies_observer_once():
    platform = Platform()
    recorder = _Recorder()
    platform.allocator.observer = recorder
    allocation = platform.allocator.malloc(64)
    platform.allocator.persist(allocation)
    platform.allocator.persist(allocation)
    assert recorder.persists == [allocation.addr]


def test_persist_all_is_idempotent():
    platform = Platform()
    for _ in range(3):
        platform.allocator.malloc(64)
    first = platform.allocator.persist_all()
    assert first == 3
    assert platform.allocator.persist_all() == 0
    # A new allocation after the sweep is picked up by the next one.
    platform.allocator.malloc(64)
    assert platform.allocator.persist_all() == 1


def test_sync_marks_persisted_without_persist_stat():
    """allocator.sync() persists as a side effect (flush+fence makes
    the region durable); it must not double-count alloc.persist when
    the allocation was already persisted."""
    platform = Platform()
    allocation = platform.allocator.malloc(64)
    platform.allocator.persist(allocation)
    before = platform.stats.counter("alloc.persist")
    platform.allocator.sync(allocation)
    platform.allocator.sync(allocation)
    assert platform.stats.counter("alloc.persist") == before
    assert allocation.persisted
