"""Equivalence tests for the batched cache fast paths.

``CPUCache``'s hot loops batch their clock and counter bookkeeping
(see the module docstring in ``repro.nvm.cache``), but must replay
exactly the same per-event charges as a line-at-a-time model that
calls ``SimClock.advance`` and ``StatsCollector.bump`` per event.
``ReferenceCache`` below *is* that model — the pre-fast-path
implementation kept verbatim — and the property-style tests drive
both with the same randomized operation sequences, asserting
byte-identical simulated time (exact float equality), identical
counter tables *including first-insertion order*, identical
hit/miss totals, and identical returned bytes after every operation.

The three inlined copies of the touch/evict bookkeeping in
``CPUCache`` (touch runs, multi-line stores, batched loads) are all
exercised here; a change to any one of them that skews a single float
addition or counter ordering fails these tests.
"""

import random

import pytest

from repro.config import CacheConfig, LatencyProfile
from repro.nvm.cache import CPUCache
from repro.nvm.device import NVMDevice
from repro.sim.clock import SimClock
from repro.sim.stats import StatsCollector

LINE = 64


class ReferenceCache:
    """Line-at-a-time write-back cache: one ``advance``/``bump`` per
    event, in event order. Semantically identical to ``CPUCache``."""

    def __init__(self, config, device, clock, stats, rng):
        self.config = config
        self.device = device
        self._clock = clock
        self._stats = stats
        self._rng = rng
        self.line_size = config.line_size
        self.capacity_lines = config.capacity_lines
        self._lines = {}
        self.hits = 0
        self.misses = 0
        self._stream_next = -1

    def _touch_line(self, base, write, byte_backed, miss_equivalent=1.0):
        missed = False
        line = self._lines.pop(base, None)
        if line is not None:
            self.hits += 1
            self._clock.advance(self.config.hit_latency_ns)
        else:
            missed = True
            self.misses += 1
            self.device.charge_load(1, equivalent_lines=miss_equivalent)
            line = _RefLine()
            if len(self._lines) >= self.capacity_lines:
                self._evict_one()
        if write:
            line.dirty = True
            if byte_backed and line.buffer is None:
                line.buffer = bytearray(
                    self.device.read_raw(base, self.line_size))
        self._lines[base] = line
        return line, missed

    def _touch_run(self, addr, size, write, byte_backed):
        discount = self.config.prefetch_discount
        lines = self._line_range(addr, size)
        missed_before = lines.start == self._stream_next
        for base in lines:
            equivalent = discount if missed_before else 1.0
            __, missed = self._touch_line(base, write, byte_backed,
                                          miss_equivalent=equivalent)
            missed_before = missed_before or missed
        self._stream_next = lines[-1] + self.line_size

    def _evict_one(self):
        base = next(iter(self._lines))
        line = self._lines.pop(base)
        if line.dirty:
            self._writeback(base, line)

    def _writeback(self, base, line):
        if line.buffer is not None:
            self.device.write_raw(base, bytes(line.buffer))
        self.device.charge_store(1, addr=base)
        line.dirty = False

    def _line_range(self, addr, size):
        first = (addr // self.line_size) * self.line_size
        last = ((addr + max(size, 1) - 1)
                // self.line_size) * self.line_size
        return range(first, last + 1, self.line_size)

    def load(self, addr, size):
        self._touch_run(addr, size, write=False, byte_backed=True)
        data = bytearray(self.device.read_raw(addr, size))
        for base in self._line_range(addr, size):
            line = self._lines.get(base)
            if line is None or line.buffer is None:
                continue
            lo = max(addr, base)
            hi = min(addr + size, base + self.line_size)
            data[lo - addr:hi - addr] = line.buffer[lo - base:hi - base]
        return bytes(data)

    def store(self, addr, data):
        size = len(data)
        if size == 0:
            return
        discount = self.config.prefetch_discount
        lines = self._line_range(addr, size)
        missed_before = lines.start == self._stream_next
        for base in lines:
            equivalent = discount if missed_before else 1.0
            line, missed = self._touch_line(base, write=True,
                                            byte_backed=True,
                                            miss_equivalent=equivalent)
            missed_before = missed_before or missed
            lo = max(addr, base)
            hi = min(addr + size, base + self.line_size)
            line.buffer[lo - base:hi - base] = data[lo - addr:hi - addr]
        self._stream_next = lines[-1] + self.line_size

    def load_batch(self, ranges):
        discount = self.config.prefetch_discount
        missed_before = False
        results = []
        for addr, size in ranges:
            for base in self._line_range(addr, size):
                equivalent = discount if missed_before else 1.0
                __, missed = self._touch_line(
                    base, write=False, byte_backed=True,
                    miss_equivalent=equivalent)
                missed_before = missed_before or missed
            data = bytearray(self.device.read_raw(addr, size))
            for base in self._line_range(addr, size):
                line = self._lines.get(base)
                if line is None or line.buffer is None:
                    continue
                lo = max(addr, base)
                hi = min(addr + size, base + self.line_size)
                data[lo - addr:hi - addr] = \
                    line.buffer[lo - base:hi - base]
            results.append(bytes(data))
        return results

    def touch_read(self, addr, size):
        self._touch_run(addr, size, write=False, byte_backed=False)

    def touch_write(self, addr, size):
        self._touch_run(addr, size, write=True, byte_backed=False)

    def touch_read_scattered(self, addr, size, probes):
        if size <= 0:
            return
        span = max(1, size // max(probes, 1))
        for index in range(probes):
            position = addr + (index * span) % size
            self._touch_line((position // self.line_size)
                             * self.line_size,
                             write=False, byte_backed=False)

    def _flush_line(self, base, keep):
        if keep:
            line = self._lines.get(base)
            self._stats.bump("cache.clwb")
        else:
            line = self._lines.pop(base, None)
            self._stats.bump("cache.clflush")
        self._clock.advance(self.config.flush_latency_ns)
        if line is not None and line.dirty:
            self._writeback(base, line)

    def clflush(self, addr, size):
        for base in self._line_range(addr, size):
            self._flush_line(base, keep=False)

    def clwb(self, addr, size):
        for base in self._line_range(addr, size):
            self._flush_line(base, keep=True)

    def sfence(self):
        self._stats.bump("cache.sfence")
        self._clock.advance(self.config.fence_latency_ns)

    def sync(self, addr, size):
        if self.config.use_clwb:
            self.clwb(addr, size)
        else:
            self.clflush(addr, size)
        self.sfence()
        self._stats.bump("cache.sync")
        if self.config.sync_extra_latency_ns:
            self._clock.advance(self.config.sync_extra_latency_ns)

    def sync_ranges(self, ranges):
        keep = self.config.use_clwb
        seen = set()
        for addr, size in ranges:
            for base in self._line_range(addr, size):
                if base not in seen:
                    seen.add(base)
                    self._flush_line(base, keep)
        self.sfence()
        self._stats.bump("cache.sync")
        if self.config.sync_extra_latency_ns:
            self._clock.advance(self.config.sync_extra_latency_ns)

    def drain(self):
        for base, line in list(self._lines.items()):
            if line.dirty:
                self._writeback(base, line)
        self._lines.clear()
        self._stream_next = -1

    def crash(self):
        survived = lost = 0
        probability = self.config.crash_eviction_probability
        for base, line in self._lines.items():
            if not line.dirty:
                continue
            if self._rng.random() < probability:
                if line.buffer is not None:
                    self.device.write_raw(base, bytes(line.buffer))
                survived += 1
            else:
                lost += 1
        self._lines.clear()
        self._stream_next = -1
        return survived, lost


class _RefLine:
    __slots__ = ("dirty", "buffer")

    def __init__(self):
        self.dirty = False
        self.buffer = None


def _make(cls, capacity_bytes=4096, crash_prob=0.5, wear=False):
    clock = SimClock()
    stats = StatsCollector(clock)
    device = NVMDevice(256 * 1024, LatencyProfile.dram(), clock, stats,
                       track_wear=wear)
    config = CacheConfig(capacity_bytes=capacity_bytes,
                         crash_eviction_probability=crash_prob)
    cache = cls(config, device, clock, stats, random.Random(99))
    return cache, device, clock, stats


def _random_ops(rng, count, span):
    """A randomized op sequence hitting every public cache entry
    point, with enough address pressure to force constant eviction."""
    ops = []
    for __ in range(count):
        kind = rng.choice(
            ["load", "load", "store", "store", "load_batch",
             "touch_read", "touch_write", "scattered", "sync",
             "sync_ranges", "clflush", "clwb", "drain"])
        addr = rng.randrange(0, span)
        if kind in ("load", "store"):
            # Mix of sub-line and multi-line (occasionally longer than
            # the whole cache, so a run evicts its own earlier lines).
            size = rng.choice([1, 8, 40, 64, 100, 400,
                               rng.randrange(4096, 8192)])
            size = min(size, span - addr)
            ops.append((kind, addr, max(size, 1)))
        elif kind == "load_batch":
            ranges = []
            for __r in range(rng.randrange(1, 5)):
                raddr = rng.randrange(0, span - 256)
                rsize = rng.choice([8, 40, 90, 200])
                ranges.append((raddr, rsize))
            ops.append((kind, tuple(ranges)))
        elif kind in ("touch_read", "touch_write"):
            size = rng.choice([16, 64, 256, 2048])
            size = min(size, span - addr)
            ops.append((kind, addr, max(size, 1)))
        elif kind == "scattered":
            ops.append((kind, addr, 4096, rng.randrange(1, 6)))
        elif kind in ("sync", "clflush", "clwb"):
            size = min(rng.choice([8, 64, 300]), span - addr)
            ops.append((kind, addr, max(size, 1)))
        elif kind == "sync_ranges":
            ranges = []
            for __r in range(rng.randrange(1, 4)):
                raddr = rng.randrange(0, span - 256)
                ranges.append((raddr, rng.choice([8, 48, 130])))
            ops.append((kind, tuple(ranges)))
        else:
            ops.append((kind,))
    return ops


def _apply(cache, op):
    kind = op[0]
    if kind == "load":
        return cache.load(op[1], op[2])
    if kind == "store":
        payload = bytes((op[1] + i) % 251 for i in range(op[2]))
        return cache.store(op[1], payload)
    if kind == "load_batch":
        return cache.load_batch(op[1])
    if kind == "touch_read":
        return cache.touch_read(op[1], op[2])
    if kind == "touch_write":
        return cache.touch_write(op[1], op[2])
    if kind == "scattered":
        return cache.touch_read_scattered(op[1], op[2], op[3])
    if kind == "sync":
        return cache.sync(op[1], op[2])
    if kind == "sync_ranges":
        return cache.sync_ranges(op[1])
    if kind == "clflush":
        return cache.clflush(op[1], op[2])
    if kind == "clwb":
        return cache.clwb(op[1], op[2])
    if kind == "drain":
        return cache.drain()
    raise AssertionError(kind)


def _assert_same_state(fast, ref, fc, rc, fs, rs, context):
    assert fc.now_ns == rc.now_ns, context          # exact float
    assert fast.hits == ref.hits, context
    assert fast.misses == ref.misses, context
    assert fast.device.loads == ref.device.loads, context
    assert fast.device.stores == ref.device.stores, context
    # Counter tables must match as ordered item lists: exports expose
    # first-insertion order.
    assert (list(fs.counters.items())
            == list(rs.counters.items())), context


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 1234])
def test_fastpath_matches_reference_on_random_ops(seed):
    fast, __, fc, fs = _make(CPUCache)
    ref, __r, rc, rs = _make(ReferenceCache)
    rng = random.Random(seed)
    for step, op in enumerate(_random_ops(rng, 300, 32 * 1024)):
        out_fast = _apply(fast, op)
        out_ref = _apply(ref, op)
        assert out_fast == out_ref, (seed, step, op)
        _assert_same_state(fast, ref, fc, rc, fs, rs, (seed, step, op))
    # Device images agree byte for byte after draining both.
    fast.drain()
    ref.drain()
    assert (fast.device.read_raw(0, 32 * 1024)
            == ref.device.read_raw(0, 32 * 1024))


def test_fastpath_matches_reference_with_wear_tracking():
    fast, fd, fc, fs = _make(CPUCache, wear=True)
    ref, rd, rc, rs = _make(ReferenceCache, wear=True)
    rng = random.Random(17)
    for step, op in enumerate(_random_ops(rng, 200, 16 * 1024)):
        assert _apply(fast, op) == _apply(ref, op)
        _assert_same_state(fast, ref, fc, rc, fs, rs, (step, op))
    assert fd.wear_histogram() == rd.wear_histogram()


def test_generic_path_with_listener_matches_reference():
    """With a clock listener attached the cache takes its per-line
    generic paths; they must match the reference model too, and the
    listener must see every charge."""
    fast, __, fc, fs = _make(CPUCache)
    ref, __r, rc, rs = _make(ReferenceCache)
    seen = []
    fc.subscribe(lambda ns: seen.append(ns))
    rng = random.Random(5)
    for step, op in enumerate(_random_ops(rng, 150, 16 * 1024)):
        assert _apply(fast, op) == _apply(ref, op)
        _assert_same_state(fast, ref, fc, rc, fs, rs, (step, op))
    assert sum(seen) == pytest.approx(fc.now_ns)


def test_crash_equivalence_with_seeded_rng():
    """Crash survival draws must consume the cache rng in the same
    (LRU) order in both implementations."""
    fast, fd, fc, __ = _make(CPUCache, crash_prob=0.5)
    ref, rd, rc, __r = _make(ReferenceCache, crash_prob=0.5)
    rng = random.Random(11)
    for op in _random_ops(rng, 120, 16 * 1024):
        if op[0] == "drain":
            continue
        _apply(fast, op)
        _apply(ref, op)
    assert fast.crash() == ref.crash()
    assert fd.read_raw(0, 16 * 1024) == rd.read_raw(0, 16 * 1024)


def test_lru_eviction_order_is_preserved():
    cache, device, __, __s = _make(CPUCache, capacity_bytes=4 * LINE,
                                   crash_prob=0.0)
    for index in range(4):
        cache.touch_write(index * LINE, 8)      # lines 0..3, all dirty
    cache.touch_read(0, 8)                      # refresh line 0 to MRU
    stores_before = device.stores
    cache.touch_read(4 * LINE * 10, 8)          # forces one eviction
    # Line 1 (the coldest after line 0 was refreshed) is written back.
    assert device.stores == stores_before + 1
    assert 1 * LINE not in cache._lines
    assert 0 in cache._lines


def test_prefetch_stream_discount_on_continuation():
    cache, device, clock, __ = _make(CPUCache, crash_prob=0.0)
    read_ns = device.latency.read_latency_ns
    discount = cache.config.prefetch_discount
    cache.load(0, 128)                          # lines 0-1: full+disc
    t0 = clock.now_ns
    cache.load(128, 128)                        # continues the stream
    # Both misses of the continuation run are discounted.
    assert clock.now_ns - t0 == 2 * (discount * read_ns)
    t1 = clock.now_ns
    cache.load(1024, 64)                        # fresh stream: full
    assert clock.now_ns - t1 == read_ns


def test_stream_state_resets_on_drain_and_crash():
    """Regression test: a drained or crashed cache must not treat the
    next access as a prefetch-stream continuation of the run that
    ended before the drain/crash."""
    cache, device, clock, __ = _make(CPUCache, crash_prob=0.0)
    read_ns = device.latency.read_latency_ns
    cache.load(0, 128)
    assert cache._stream_next == 128
    cache.drain()
    assert cache._stream_next == -1
    t0 = clock.now_ns
    cache.load(128, 8)                          # would have continued
    assert clock.now_ns - t0 == read_ns         # full-latency miss
    cache.load(192, 8)
    assert cache._stream_next == 256
    cache.crash()
    assert cache._stream_next == -1


def test_buffer_resident_load_skips_device_read(monkeypatch):
    cache, device, __, __s = _make(CPUCache, crash_prob=0.0)
    cache.store(256, bytes(range(64)))          # whole line buffered
    calls = []
    real_read = device.read_raw

    def counting_read(addr, size):
        calls.append((addr, size))
        return real_read(addr, size)

    monkeypatch.setattr(device, "read_raw", counting_read)
    assert cache.load(260, 8) == bytes(range(4, 12))
    assert calls == []                          # served from the buffer
    # A miss on an unbuffered line still reads the device.
    cache.load(8192, 8)
    assert calls


def test_store_run_longer_than_cache_matches_reference():
    """A single store spanning more lines than the cache holds evicts
    its own earlier lines mid-run; the written-back bytes must include
    the new data (the generic path writes bytes line by line)."""
    fast, fd, fc, fs = _make(CPUCache, capacity_bytes=4 * LINE,
                             crash_prob=0.0)
    ref, rd, rc, rs = _make(ReferenceCache, capacity_bytes=4 * LINE,
                            crash_prob=0.0)
    payload = bytes(i % 256 for i in range(16 * LINE))
    fast.store(32, payload)
    ref.store(32, payload)
    _assert_same_state(fast, ref, fc, rc, fs, rs, "long store")
    assert fd.read_raw(0, 20 * LINE) == rd.read_raw(0, 20 * LINE)
    fast.drain()
    ref.drain()
    assert fd.read_raw(0, 20 * LINE) == rd.read_raw(0, 20 * LINE)
