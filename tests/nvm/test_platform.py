"""Unit tests for the platform facade (crash orchestration)."""

from repro.config import LatencyProfile, PlatformConfig
from repro.nvm.platform import Platform


def test_platform_constructs_with_defaults():
    platform = Platform()
    assert platform.clock.now_ns == 0
    assert platform.allocator.free_bytes > 0


def test_crash_runs_hooks_and_counts():
    platform = Platform()
    ran = []
    platform.register_crash_hook(lambda: ran.append(True))
    platform.crash()
    assert ran == [True]
    assert platform.crash_count == 1
    assert platform.stats.counter("platform.crashes") == 1


def test_unregister_crash_hook():
    platform = Platform()
    hook_calls = []

    def hook():
        hook_calls.append(1)

    platform.register_crash_hook(hook)
    platform.unregister_crash_hook(hook)
    platform.crash()
    assert hook_calls == []


def test_crash_reclaims_unpersisted_allocations():
    platform = Platform()
    kept = platform.allocator.malloc(64)
    platform.allocator.sync(kept)
    platform.allocator.malloc(64)
    assert platform.allocator.live_allocations == 2
    platform.crash()
    assert platform.allocator.live_allocations == 1


def test_clean_shutdown_preserves_cached_writes():
    platform = Platform()
    allocation = platform.allocator.malloc(64)
    platform.memory.store(allocation.addr, b"data")
    platform.clean_shutdown()
    assert platform.device.read_raw(allocation.addr, 4) == b"data"


def test_storage_footprint_merges_allocator_and_fs():
    platform = Platform()
    platform.allocator.malloc(100, tag="table")
    file = platform.filesystem.create("wal")
    platform.filesystem.append(file, b"x" * 40)
    footprint = platform.storage_footprint()
    assert footprint["table"] >= 100
    assert footprint["filesystem"] == 40


def test_latency_profiles_by_name():
    for name in ("dram", "low-nvm", "high-nvm"):
        profile = LatencyProfile.by_name(name)
        platform = Platform(PlatformConfig(latency=profile))
        assert platform.device.latency.name == name


def test_deterministic_crash_lottery():
    def run():
        platform = Platform(PlatformConfig(seed=99))
        allocation = platform.allocator.malloc(4096)
        platform.allocator.persist(allocation)
        for i in range(0, 4096, 64):
            platform.memory.store(allocation.addr + i, bytes([i % 256] * 64))
        platform.crash()
        return platform.device.read_raw(allocation.addr, 4096)

    assert run() == run()
