"""Unit tests for the optional DRAM tier (Appendix D extension)."""

import pytest

from repro.config import PlatformConfig
from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.nvm.dram import DRAMBackedIndexCostModel, DRAMTier
from repro.nvm.platform import Platform
from repro.sim.clock import SimClock
from repro.sim.stats import StatsCollector


def make_tier(capacity=1024 * 1024):
    clock = SimClock()
    stats = StatsCollector(clock)
    return DRAMTier(capacity, clock, stats), clock


def test_malloc_free_accounting():
    tier, __ = make_tier()
    addr = tier.malloc(1000)
    assert tier.used_bytes == 1000
    tier.free(addr)
    assert tier.used_bytes == 0


def test_capacity_enforced():
    tier, __ = make_tier(capacity=1024)
    tier.malloc(800)
    with pytest.raises(OutOfMemoryError):
        tier.malloc(800)


def test_double_free_rejected():
    tier, __ = make_tier()
    addr = tier.malloc(8)
    tier.free(addr)
    with pytest.raises(InvalidAddressError):
        tier.free(addr)


def test_touch_charges_time():
    tier, clock = make_tier()
    addr = tier.malloc(4096)
    before = clock.now_ns
    for __ in range(20):
        tier.touch(addr, 4096)
    assert clock.now_ns > before


def test_dram_cheaper_than_nvm_reads():
    """The whole point of the hybrid tier: accesses cost less than NVM
    misses at high latency."""
    from repro.config import CacheConfig, LatencyProfile
    platform = Platform(PlatformConfig(
        latency=LatencyProfile.high_nvm(),
        cache=CacheConfig(capacity_bytes=64 * 1024),
        dram_capacity_bytes=1024 * 1024))
    tier = platform.dram
    dram_addr = tier.malloc(512)
    nvm_alloc = platform.allocator.malloc(512)

    start = platform.clock.now_ns
    for __ in range(50):
        tier.touch(dram_addr, 512)
    dram_cost = platform.clock.now_ns - start

    start = platform.clock.now_ns
    for i in range(50):
        platform.memory.touch_read(nvm_alloc.addr, 512)
        platform.memory.clflush(nvm_alloc.addr, 512)  # defeat caching
    nvm_cost = platform.clock.now_ns - start
    assert dram_cost < nvm_cost


def test_crash_loses_everything():
    tier, __ = make_tier()
    tier.malloc(100)
    tier.malloc(200)
    assert tier.crash() == 2
    assert tier.used_bytes == 0
    assert tier.live_allocations == 0


def test_platform_without_dram_by_default():
    assert Platform(PlatformConfig()).dram is None


def test_platform_crash_clears_dram():
    platform = Platform(PlatformConfig(dram_capacity_bytes=4096))
    platform.dram.malloc(100)
    platform.crash()
    assert platform.dram.live_allocations == 0


def test_cost_model_lifecycle():
    tier, __ = make_tier()
    cost = DRAMBackedIndexCostModel(tier)
    cost.node_allocated(1, 512)
    cost.node_probed(1, 512)
    cost.node_read(1, 512)
    cost.node_written(1, 512)
    assert cost.total_bytes() == 512
    cost.node_freed(1)
    assert tier.used_bytes == 0


def test_cost_model_sync_forbidden():
    tier, __ = make_tier()
    cost = DRAMBackedIndexCostModel(tier)
    cost.node_allocated(1, 512)
    with pytest.raises(InvalidAddressError):
        cost.sync_node(1, 0, 64)
