"""Unit tests for the write-back CPU cache model."""

import random

import pytest

from repro.config import CacheConfig, LatencyProfile
from repro.nvm.cache import CPUCache
from repro.nvm.device import NVMDevice
from repro.sim.clock import SimClock
from repro.sim.stats import StatsCollector


def make_cache(capacity_bytes=4096, crash_prob=0.0):
    clock = SimClock()
    stats = StatsCollector(clock)
    device = NVMDevice(1024 * 1024, LatencyProfile.dram(), clock, stats)
    config = CacheConfig(capacity_bytes=capacity_bytes,
                         crash_eviction_probability=crash_prob)
    cache = CPUCache(config, device, clock, stats, random.Random(7))
    return cache, device, clock, stats


def test_store_then_load_roundtrip():
    cache, __, __c, __s = make_cache()
    cache.store(100, b"abcdef")
    assert cache.load(100, 6) == b"abcdef"


def test_store_is_buffered_not_written_through():
    cache, device, __, __s = make_cache()
    cache.store(0, b"xyz")
    # The device still holds zeros; the bytes live in the cache line.
    assert device.read_raw(0, 3) == b"\x00\x00\x00"


def test_clflush_writes_back_and_invalidates():
    cache, device, __, __s = make_cache()
    cache.store(0, b"xyz")
    cache.clflush(0, 3)
    assert device.read_raw(0, 3) == b"xyz"
    assert device.stores == 1


def test_clwb_writes_back_keeps_cached():
    cache, device, __, __s = make_cache()
    cache.store(0, b"xyz")
    cache.clwb(0, 3)
    assert device.read_raw(0, 3) == b"xyz"
    misses_before = cache.misses
    assert cache.load(0, 3) == b"xyz"
    assert cache.misses == misses_before  # still cached


def test_load_spanning_lines_overlays_dirty_data():
    cache, __, __c, __s = make_cache()
    cache.store(60, b"ABCDEFGH")  # spans the line boundary at 64
    assert cache.load(60, 8) == b"ABCDEFGH"
    assert cache.load(62, 4) == b"CDEF"


def test_eviction_writes_back_dirty_lines():
    cache, device, __, __s = make_cache(capacity_bytes=128)  # 2 lines
    cache.store(0, b"a")
    cache.store(64, b"b")
    cache.store(128, b"c")  # evicts line 0
    assert device.read_raw(0, 1) == b"a"


def test_lru_order_eviction():
    cache, device, __, __s = make_cache(capacity_bytes=128)
    cache.store(0, b"a")
    cache.store(64, b"b")
    cache.load(0, 1)        # refresh line 0
    cache.store(128, b"c")  # should evict line 64, not line 0
    assert device.read_raw(64, 1) == b"b"
    assert device.read_raw(0, 1) == b"\x00"  # still only in cache


def test_miss_and_hit_counting():
    cache, __, __c, __s = make_cache()
    cache.load(0, 1)
    cache.load(0, 1)
    assert cache.misses == 1
    assert cache.hits == 1
    assert cache.hit_rate == pytest.approx(0.5)


def test_crash_loses_unflushed_dirty_lines():
    cache, device, __, __s = make_cache(crash_prob=0.0)
    cache.store(0, b"gone")
    survived, lost = cache.crash()
    assert (survived, lost) == (0, 1)
    assert device.read_raw(0, 4) == b"\x00\x00\x00\x00"


def test_crash_with_certain_eviction_keeps_data():
    cache, device, __, __s = make_cache(crash_prob=1.0)
    cache.store(0, b"kept")
    survived, lost = cache.crash()
    assert (survived, lost) == (1, 0)
    assert device.read_raw(0, 4) == b"kept"


def test_flushed_data_survives_crash():
    cache, device, __, __s = make_cache(crash_prob=0.0)
    cache.store(0, b"safe")
    cache.sync(0, 4)
    cache.crash()
    assert device.read_raw(0, 4) == b"safe"


def test_sync_charges_extra_latency():
    clock = SimClock()
    stats = StatsCollector(clock)
    device = NVMDevice(1024, LatencyProfile.dram(), clock, stats)
    config = CacheConfig(capacity_bytes=4096, sync_extra_latency_ns=1000.0)
    cache = CPUCache(config, device, clock, stats, random.Random(1))
    cache.store(0, b"x")
    before = clock.now_ns
    cache.sync(0, 1)
    # flush latency + device store + fence + the extra 1000 ns
    assert clock.now_ns - before >= 1000.0


def test_drain_flushes_everything():
    cache, device, __, __s = make_cache()
    cache.store(0, b"a")
    cache.store(200, b"b")
    cache.drain()
    assert device.read_raw(0, 1) == b"a"
    assert device.read_raw(200, 1) == b"b"


def test_touch_write_charges_store_on_eviction():
    cache, device, __, __s = make_cache(capacity_bytes=128)
    cache.touch_write(0, 64)
    cache.touch_write(64, 64)
    cache.touch_write(128, 64)  # evicts accounting line 0 (dirty)
    assert device.stores == 1


def test_sfence_counted():
    cache, __, __c, stats = make_cache()
    cache.sfence()
    assert stats.counter("cache.sfence") == 1
