"""Unit tests for the NVM-aware allocator."""

import pytest

from repro.errors import InvalidAddressError, OutOfMemoryError
from repro.nvm.allocator import HEADER_SIZE


@pytest.fixture
def allocator(platform):
    return platform.allocator


def test_malloc_returns_nonzero_aligned_address(allocator):
    allocation = allocator.malloc(100)
    assert allocation.addr != 0
    assert allocation.addr % 8 == 0
    assert allocation.size == 100


def test_null_address_never_allocated(allocator):
    for __ in range(10):
        assert allocator.malloc(8).addr != 0


def test_distinct_allocations_do_not_overlap(allocator):
    a = allocator.malloc(64)
    b = allocator.malloc(64)
    assert a.addr + a.size <= b.addr - HEADER_SIZE or \
        b.addr + b.size <= a.addr - HEADER_SIZE


def test_free_allows_reuse(allocator):
    a = allocator.malloc(1024)
    addr = a.addr
    allocator.free(a)
    b = allocator.malloc(1024)
    assert b.addr == addr  # best-fit finds the coalesced hole


def test_double_free_rejected(allocator):
    a = allocator.malloc(64)
    allocator.free(a)
    with pytest.raises(InvalidAddressError):
        allocator.free(a)


def test_out_of_memory(platform):
    allocator = platform.allocator
    with pytest.raises(OutOfMemoryError):
        allocator.malloc(platform.config.nvm_capacity_bytes * 2)


def test_free_coalescing(allocator):
    chunks = [allocator.malloc(100) for __ in range(4)]
    free_before = allocator.free_bytes
    for chunk in chunks:
        allocator.free(chunk)
    # All four regions plus headers return as one coalesced block.
    assert allocator.free_bytes > free_before
    big = allocator.malloc(4 * 128)
    assert big is not None


def test_resolve_live_pointer(allocator):
    a = allocator.malloc(32)
    assert allocator.resolve(a.addr) is a


def test_resolve_dead_pointer_raises(allocator):
    a = allocator.malloc(32)
    allocator.free(a)
    with pytest.raises(InvalidAddressError):
        allocator.resolve(a.addr)


def test_crash_reclaims_unpersisted(allocator):
    kept = allocator.malloc(64)
    allocator.persist(kept)
    doomed = allocator.malloc(64)
    reclaimed = allocator.crash_recover()
    assert reclaimed == 1
    assert allocator.resolve(kept.addr) is kept
    assert allocator.resolve_optional(doomed.addr) is None


def test_sync_marks_persisted(allocator):
    a = allocator.malloc(64)
    assert not a.persisted
    allocator.sync(a)
    assert a.persisted
    assert allocator.crash_recover() == 0


def test_sync_partial_range(allocator):
    a = allocator.malloc(256)
    allocator.sync(a, offset=64, size=64)
    assert a.persisted


def test_sync_out_of_range_rejected(allocator):
    a = allocator.malloc(64)
    with pytest.raises(InvalidAddressError):
        allocator.sync(a, offset=32, size=64)


def test_object_allocation_carries_object(allocator):
    payload = {"hello": "world"}
    a = allocator.malloc_object(payload, size=128, tag="index")
    assert a.obj is payload
    assert a.kind == "object"


def test_footprint_by_tag(allocator):
    allocator.malloc(1000, tag="table")
    allocator.malloc(500, tag="log")
    by_tag = allocator.bytes_by_tag()
    assert by_tag["table"] >= 1000
    assert by_tag["log"] >= 500


def test_peak_tracking(allocator):
    a = allocator.malloc(1000, tag="table")
    allocator.free(a)
    assert allocator.bytes_by_tag()["table"] == 0
    assert allocator.peak_bytes_by_tag()["table"] >= 1000


def test_invalid_size_rejected(allocator):
    with pytest.raises(ValueError):
        allocator.malloc(0)
    with pytest.raises(ValueError):
        allocator.malloc(-5)


def test_invalid_kind_rejected(allocator):
    with pytest.raises(ValueError):
        allocator.malloc(8, kind="weird")


def test_rotating_cursor_spreads_allocations(allocator):
    # Alloc/free cycles should not always reuse the exact same block
    # when multiple holes exist (wear leveling).
    a = allocator.malloc(64)
    b = allocator.malloc(64)
    c = allocator.malloc(64)
    allocator.free(a)
    allocator.free(c)  # two holes + the tail block now exist
    addresses = set()
    for __ in range(4):
        x = allocator.malloc(64)
        addresses.add(x.addr)
        allocator.free(x)
    assert b is not None
    assert len(addresses) >= 1  # sanity: allocation succeeded every time
