"""Stateful property test for the NVM filesystem's crash semantics.

A hypothesis state machine performs random writes, fsyncs, and crashes
against one file, mirroring every action on a pair of model byte
strings (durable, pending). After a crash the file must equal the
durable model exactly.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, initialize,
                                 invariant, rule)

from repro.config import PlatformConfig
from repro.nvm.platform import Platform


class FilesystemMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.platform = Platform(PlatformConfig(seed=5))
        self.fs = self.platform.filesystem
        self.file = self.fs.create("machine")
        self.durable = b""
        self.current = b""

    @rule(offset=st.integers(min_value=0, max_value=300),
          data=st.binary(min_size=1, max_size=64))
    def write(self, offset, data):
        offset = min(offset, len(self.current))
        self.fs.write(self.file, offset, data)
        current = bytearray(self.current)
        if offset + len(data) > len(current):
            current.extend(b"\x00" * (offset + len(data) - len(current)))
        current[offset:offset + len(data)] = data
        self.current = bytes(current)

    @rule()
    def fsync(self):
        self.fs.fsync(self.file)
        self.durable = self.current

    @rule()
    def crash(self):
        self.platform.crash()
        self.current = self.durable

    @rule(length=st.integers(min_value=0, max_value=200))
    def truncate(self, length):
        length = min(length, len(self.current))
        self.fs.truncate(self.file, length)
        self.current = self.current[:length]
        self.durable = self.current

    @invariant()
    def file_matches_model(self):
        if hasattr(self, "fs"):
            assert bytes(self.file.data) == self.current


TestFilesystemMachine = FilesystemMachine.TestCase
TestFilesystemMachine.settings = __import__("hypothesis").settings(
    max_examples=25, stateful_step_count=30, deadline=None)
