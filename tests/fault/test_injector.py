"""Unit tests for the fault injector: plans, counting, triggers."""

import pytest

from repro.errors import ConfigError, SimulatedCrash
from repro.fault import (FaultInjector, FaultPlan, FaultPoint,
                         fault_point_catalog, fault_points_for_engine)

# Importing any engine registers its fault points; the database module
# pulls in the whole engine registry.
import repro.core.database  # noqa: F401


def test_disabled_injector_is_inert():
    injector = FaultInjector()
    injector.fire("wal.append.before")
    assert injector.hits == {}
    assert injector.fired == []


def test_counting_mode_counts_without_crashing():
    injector = FaultInjector()
    injector.arm()
    injector.fire("wal.append.before")
    injector.fire("wal.append.before")
    injector.fire("wal.fsync.before")
    assert injector.hits == {"wal.append.before": 2,
                             "wal.fsync.before": 1}
    assert injector.fired == []


def test_trigger_fires_on_nth_hit():
    injector = FaultInjector()
    injector.arm(FaultPlan([("wal.append.before", 3)]))
    injector.fire("wal.append.before")
    injector.fire("wal.append.before")
    with pytest.raises(SimulatedCrash) as excinfo:
        injector.fire("wal.append.before")
    assert excinfo.value.point == "wal.append.before"
    assert excinfo.value.hit == 3
    assert injector.fired == [FaultPoint("wal.append.before", 3)]
    # After the last trigger fires, further hits only count.
    injector.fire("wal.append.before")
    assert injector.hits["wal.append.before"] == 4


def test_triggers_fire_in_sequence():
    injector = FaultInjector()
    injector.arm(FaultPlan([("wal.append.before", 1),
                            ("recovery.begin", 1)]))
    with pytest.raises(SimulatedCrash):
        injector.fire("wal.append.before")
    # recovery.begin only becomes current after the first trigger.
    with pytest.raises(SimulatedCrash):
        injector.fire("recovery.begin")
    assert injector.pending_triggers == ()


def test_later_trigger_ignores_hits_before_its_turn():
    injector = FaultInjector()
    injector.arm(FaultPlan([("wal.append.before", 1),
                            ("wal.fsync.before", 1)]))
    injector.fire("wal.fsync.before")  # not current yet: no crash
    with pytest.raises(SimulatedCrash):
        injector.fire("wal.append.before")
    with pytest.raises(SimulatedCrash):
        injector.fire("wal.fsync.before")


def test_disarm_stops_everything():
    injector = FaultInjector()
    injector.arm(FaultPlan([("wal.append.before", 1)]))
    injector.disarm()
    injector.fire("wal.append.before")
    assert not injector.enabled
    assert injector.hits == {}


def test_arm_rejects_unknown_point():
    injector = FaultInjector()
    with pytest.raises(ConfigError):
        injector.arm(FaultPlan([("no.such.point", 1)]))


def test_fault_point_requires_positive_hit():
    with pytest.raises(ConfigError):
        FaultPoint("wal.append.before", 0)


def test_plan_parsing_formats():
    plan = FaultPlan.parse("wal.append.before:2,wal.fsync.before")
    assert plan.triggers == (FaultPoint("wal.append.before", 2),
                             FaultPoint("wal.fsync.before", 1))
    assert bool(plan)
    assert not bool(FaultPlan())
    mixed = FaultPlan([FaultPoint("wal.append.before", 2),
                       ("wal.fsync.before", 3),
                       "recovery.begin"])
    assert mixed.triggers[1] == FaultPoint("wal.fsync.before", 3)
    assert mixed.triggers[2] == FaultPoint("recovery.begin", 1)


def test_catalog_is_engine_scoped():
    catalog = fault_point_catalog()
    assert "wal.append.before" in catalog
    assert "recovery.begin" in catalog
    inp_points = fault_points_for_engine("inp")
    assert "wal.append.before" in inp_points
    assert "nvm_wal.append.after_persist" not in inp_points
    # engine-agnostic points apply to every engine
    assert "recovery.begin" in fault_points_for_engine("nvm-cow")
