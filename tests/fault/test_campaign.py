"""Crash-campaign tests: coverage, nested crashes, and the oracle's
ability to catch a deliberately broken durability protocol."""

import pytest

from repro.engines.base import ENGINE_NAMES
from repro.fault import campaign, fault_points_for_engine
from repro.fault.campaign import (CampaignSpec, build_script,
                                  plan_coordinates, run_crash_campaign)

ALL_ENGINES = list(ENGINE_NAMES.ALL) + ["nvm-mvcc"]


def test_script_is_deterministic_and_feasible():
    script = build_script(seed=7, ops=64)
    assert script == build_script(seed=7, ops=64)
    live = set()
    for op, key, value in script:
        if op == "insert":
            assert key not in live
            live.add(key)
        elif op == "delete":
            assert key in live
            assert value is None
            live.discard(key)
        else:
            assert key in live
    values = [value for __, __, value in script if value is not None]
    assert len(values) == len(set(values)), "oracle needs unique values"


@pytest.mark.parametrize("engine", ALL_ENGINES)
def test_counting_run_covers_every_registered_point(engine):
    result = CampaignSpec(engine=engine).execute()
    assert result.ok, result.violations
    missing = [point for point in fault_points_for_engine(engine)
               if result.hits.get(point, 0) <= 0]
    assert missing == [], f"{engine} never reached {missing}"


def test_plan_coordinates_sample_first_and_last_hit():
    hits = {"wal.append.before": 9, "recovery.begin": 1,
            "recovery.end": 1}
    coordinates = plan_coordinates("inp", hits, max_hits_per_point=3)
    append_hits = sorted(hit for (point, hit), in
                         [c for c in coordinates if len(c) == 1
                          and c[0][0] == "wal.append.before"])
    assert 1 in append_hits and 9 in append_hits
    # recovery points get nested plans: crash, then crash again during
    # the recovery that follows.
    nested = [c for c in coordinates if len(c) == 2]
    assert (("wal.append.before", 1), ("recovery.begin", 1)) in nested


def test_single_coordinate_crashes_and_recovers():
    spec = CampaignSpec(engine="nvm-inp",
                        triggers=(("nvm_wal.append.after_persist", 3),))
    result = spec.execute()
    assert result.ok, result.violations
    assert result.crashes >= 2  # the trigger + the final clean crash
    assert result.fired == (("nvm_wal.append.after_persist", 3),)


def test_nested_crash_during_recovery():
    spec = CampaignSpec(engine="inp",
                        triggers=(("wal.append.before", 1),
                                  ("recovery.begin", 1)))
    result = spec.execute()
    assert result.ok, result.violations
    assert result.nested_crashes >= 1
    assert set(result.fired) == {("wal.append.before", 1),
                                 ("recovery.begin", 1)}


def test_campaign_full_engine_zero_violations():
    report = run_crash_campaign(["nvm-inp"], seed=7)
    assert report.ok, (report.violations, report.failures,
                       report.uncovered)
    assert report.uncovered == {"nvm-inp": []}
    targeted = {spec_point
                for outcome in report.outcomes
                for spec_point, __ in outcome.spec.triggers}
    assert targeted == set(fault_points_for_engine("nvm-inp"))


def test_broken_master_record_fence_is_caught():
    """Sabotage the NVM-CoW master-record flip: a plain cache-buffered
    store instead of the atomic durable write. With the crash-eviction
    lottery at probability 0 the unfenced flip never survives a crash,
    so acknowledged commits are lost — and the oracle must say so."""
    db = campaign._make_database("nvm-cow", seed=7)
    engine = db.partitions[0].engine

    def broken_write_master(dirty):
        for directory in dirty:
            engine.faults.fire("nvm_cow.master_flip.before_slot")
            engine.memory.store_u64(
                engine._master.addr + 8 * directory.slot,
                directory.tree.current_root.node_id)
            # No fence, no durable-root bookkeeping: the flip sits in
            # the CPU cache and is lost at the crash.

    engine._write_master = broken_write_master
    spec = CampaignSpec(engine="nvm-cow",
                        triggers=(("nvm_cow.tuple_copy.after", 10),))
    result = spec.execute(database=db)
    assert not result.ok
    assert any("lost committed row" in violation
               for violation in result.violations), result.violations
