"""Telemetry through the scheduler: events, tracebacks, summaries."""

import json
import multiprocessing
import os

import pytest

from repro.harness import scheduler
from repro.harness.scheduler import (run_sweep, write_sweep_summary)
from repro.harness.spec import ExperimentSpec
from repro.obs.bus import EventBus

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

TINY = dict(num_tuples=200, num_txns=150, cache_bytes=64 * 1024)


def _specs(engines=("inp", "log")):
    return [ExperimentSpec.ycsb(engine, "balanced", "low", **TINY)
            for engine in engines]


def _capture(jobs, specs=None, **kwargs):
    bus = EventBus()
    queue = bus.subscribe(capacity=4096)
    outcomes = run_sweep(specs or _specs(), jobs=jobs, bus=bus,
                         heartbeat_s=0.0, **kwargs)
    return outcomes, queue.drain()


# ----------------------------------------------------------------------
# Event stream shape (serial and parallel)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_sweep_emits_lifecycle_events(jobs):
    if jobs > 1 and not HAVE_FORK:
        pytest.skip("needs fork start method")
    outcomes, events = _capture(jobs)
    assert all(outcome.ok for outcome in outcomes)
    kinds = [event.kind for event in events]
    assert kinds[0] == "sweep_started"
    assert kinds[-1] == "sweep_finished"
    assert kinds.count("point_started") == 2
    assert kinds.count("point_finished") == 2
    assert "heartbeat" in kinds
    assert "phase_enter" in kinds and "phase_exit" in kinds
    # Bus ordering: non-heartbeat events arrive in seq order.
    # (Coalesced heartbeats keep their queue slot but carry the
    # newest payload's seq, so they may sit ahead of larger seqs.)
    seqs = [event.seq for event in events
            if event.kind != "heartbeat"]
    assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
    started = events[0]
    assert started.data == {"points": 2, "jobs": jobs}
    finished = events[-1]
    assert finished.data["failed"] == 0
    # The closing stats count every publish; the drained queue holds
    # fewer because per-source heartbeats coalesce.
    assert finished.data["published"] >= len(events)


@pytest.mark.parametrize("jobs", [1, 2])
def test_per_point_events_bracket_phases(jobs):
    if jobs > 1 and not HAVE_FORK:
        pytest.skip("needs fork start method")
    __, events = _capture(jobs, specs=_specs(("inp",)))
    source = next(e.source for e in events
                  if e.kind == "point_started")
    assert source.startswith("0000-")
    point_events = [e for e in events if e.source == source]
    kinds = [e.kind for e in point_events]
    assert kinds[0] == "point_started"
    assert kinds[-1] == "point_finished"
    # Worker-side phase events arrive between the brackets.
    phases = [e.data["phase"] for e in point_events
              if e.kind == "phase_enter"]
    assert "setup" in phases and "run" in phases
    finished = point_events[-1]
    assert finished.data["ok"] is True
    assert finished.data["throughput"] > 0


def test_heartbeats_carry_txn_and_sim_clock_position():
    __, events = _capture(1, specs=_specs(("inp",)))
    beats = [e for e in events if e.kind == "heartbeat"]
    assert beats
    last = beats[-1]
    assert last.data["engine"] == "inp"
    assert last.data["txns"] > 0
    assert last.data["sim_ns"] > 0


def test_untelemetered_sweep_publishes_nothing():
    outcomes = run_sweep(_specs(("inp",)), jobs=1)
    assert outcomes[0].ok
    assert outcomes[0].result.phases is None


# ----------------------------------------------------------------------
# Failure reporting: full tracebacks, summaries, crash events
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs", [1, 2])
def test_failed_point_carries_full_traceback(jobs, tmp_path):
    if jobs > 1 and not HAVE_FORK:
        pytest.skip("needs fork start method")
    specs = _specs(("inp", "no-such-engine"))
    outcomes = run_sweep(specs, jobs=jobs,
                         artifacts_dir=str(tmp_path / str(jobs)))
    bad = outcomes[1]
    assert not bad.ok
    assert "Traceback (most recent call last)" in bad.error
    assert "ConfigError" in bad.error_summary
    assert "no-such-engine" in bad.error_summary
    assert "\n" not in bad.error_summary
    # The sweep summary persists the full traceback verbatim.
    summary = json.loads(
        (tmp_path / str(jobs) / "summary.json").read_text())
    point = summary["points"][1]
    assert point["error"] == bad.error


def test_retry_events_published_per_attempt():
    calls = {"n": 0}
    real = scheduler._execute_point

    def flaky(spec, observe, telemetry=None):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient-glitch")
        return real(spec, observe, telemetry)

    bus = EventBus()
    queue = bus.subscribe()
    original = scheduler._execute_point
    scheduler._execute_point = flaky
    try:
        outcomes = run_sweep(_specs(("inp",)), jobs=1, retries=1,
                             retry_backoff_s=0.0, bus=bus,
                             heartbeat_s=0.0)
    finally:
        scheduler._execute_point = original
    assert outcomes[0].ok and outcomes[0].attempts == 2
    retried = [e for e in queue.drain() if e.kind == "point_retried"]
    assert len(retried) == 1
    assert retried[0].data["attempt"] == 1
    assert "transient-glitch" in retried[0].data["error"]


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_worker_death_publishes_point_crashed(monkeypatch):
    real = scheduler._execute_point

    def boom(spec, observe, telemetry=None):
        if spec.engine == "log":
            os._exit(13)
        return real(spec, observe, telemetry)

    monkeypatch.setattr(scheduler, "_execute_point", boom)
    bus = EventBus()
    queue = bus.subscribe()
    outcomes = run_sweep(_specs(("inp", "log")), jobs=2, bus=bus,
                         heartbeat_s=0.0)
    assert outcomes[0].ok and not outcomes[1].ok
    crashed = [e for e in queue.drain() if e.kind == "point_crashed"]
    assert len(crashed) == 1
    assert crashed[0].data["exitcode"] == 13


# ----------------------------------------------------------------------
# Determinism: telemetry must not leak into experiment output
# ----------------------------------------------------------------------

def test_bus_does_not_change_results():
    specs = _specs()
    plain = run_sweep(specs, jobs=1)
    bus = EventBus()
    bus.subscribe()
    observed = run_sweep(specs, jobs=1, bus=bus, heartbeat_s=0.0)
    plain_json = json.dumps([o.result.to_dict() for o in plain])
    observed_json = json.dumps(
        [{**o.result.to_dict(), "phases": None} for o in observed])
    assert plain_json == json.dumps(
        [{**json.loads(observed_json)[i]} for i in range(2)])


def test_summary_round_trips_with_phases(tmp_path):
    bus = EventBus()
    outcomes = run_sweep(_specs(("inp",)), jobs=1, bus=bus,
                         heartbeat_s=0.0,
                         artifacts_dir=str(tmp_path))
    assert outcomes[0].result.phases is not None
    summary = json.loads((tmp_path / "summary.json").read_text())
    phases = summary["points"][0]["result"]["phases"]
    stacks = {entry["stack"] for entry in phases["phases"]}
    assert {"setup", "load", "run"} <= stacks
    assert phases["coverage"] > 0.9
