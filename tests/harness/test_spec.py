"""Tests for the ExperimentSpec value object."""

import pickle

import pytest

from repro.config import LatencyProfile
from repro.errors import ConfigError
from repro.harness.spec import ExperimentSpec
from repro.workloads.tpcc import TPCCConfig


def test_spec_round_trips_through_pickle():
    spec = ExperimentSpec.ycsb(
        "nvm-inp", "write-heavy", "high",
        latency=LatencyProfile.high_nvm(), num_tuples=500,
        num_txns=250, partitions=2, seed=7, cache_bytes=64 * 1024,
        run_checkpoint_interval=100, observe=True, crash_recover=True)
    clone = pickle.loads(pickle.dumps(spec))
    assert clone == spec
    assert clone.latency == spec.latency
    assert clone.slug() == spec.slug()


def test_tpcc_spec_round_trips_through_pickle():
    spec = ExperimentSpec.tpcc(
        "nvm-cow", tpcc_config=TPCCConfig(warehouses=1, items=30),
        num_txns=50)
    assert pickle.loads(pickle.dumps(spec)) == spec


def test_latency_accepts_string_aliases():
    assert ExperimentSpec.ycsb("inp", latency="high").latency.name \
        == "high-nvm"
    assert ExperimentSpec.ycsb("inp", latency="low-nvm").latency.name \
        == "low-nvm"
    assert ExperimentSpec.ycsb("inp").latency.name == "dram"


def test_workload_defaults_resolved_at_construction():
    ycsb = ExperimentSpec.ycsb("inp")
    tpcc = ExperimentSpec.tpcc("inp")
    assert (ycsb.seed, ycsb.num_txns) == (31, 2000)
    assert (tpcc.seed, tpcc.num_txns) == (47, 400)


def test_workload_name_matches_legacy_labels():
    assert ExperimentSpec.ycsb("inp", "balanced", "low").workload_name \
        == "ycsb/balanced/low"
    assert ExperimentSpec.tpcc("inp").workload_name == "tpcc"


def test_slug_is_filesystem_safe_and_distinguishes_axes():
    a = ExperimentSpec.ycsb("nvm-inp", "balanced", "low")
    b = a.with_options(latency="high")
    assert a.slug() != b.slug()
    for slug in (a.slug(), b.slug()):
        assert "/" not in slug and " " not in slug


@pytest.mark.parametrize("bad", [
    dict(engine="inp", workload="htap"),
    dict(engine="inp", workload="ycsb", mixture="nope"),
    dict(engine="inp", workload="ycsb", skew="nope"),
    dict(engine="inp", workload="ycsb", partitions=0),
    dict(engine="inp", workload="ycsb", num_txns=0),
    dict(engine="inp", workload="ycsb", latency="warp-speed"),
])
def test_invalid_specs_rejected(bad):
    with pytest.raises(ConfigError):
        ExperimentSpec(**bad)


def test_to_dict_is_self_describing():
    spec = ExperimentSpec.ycsb("nvm-inp", "balanced", "high",
                               partitions=2, seed=9,
                               cache_bytes=32 * 1024)
    payload = spec.to_dict()
    assert payload["workload"] == "ycsb/balanced/high"
    assert payload["seed"] == 9
    assert payload["partitions"] == 2
    assert payload["cache_bytes"] == 32 * 1024
