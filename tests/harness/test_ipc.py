"""Tests for the shared tagged-pipe IPC helpers."""

import multiprocessing

import pytest

from repro.harness import ipc

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()


def test_tags_are_distinct():
    tags = {ipc.TAG_EVENT, ipc.TAG_DONE, ipc.TAG_CMDS, ipc.TAG_REPLY}
    assert len(tags) == 4


def test_send_recv_roundtrip_in_process():
    parent, child = multiprocessing.Pipe(duplex=False)
    ipc.send(child, ipc.TAG_CMDS, [("op", ("arg",))])
    tag, payload = ipc.recv(parent)
    assert tag == ipc.TAG_CMDS
    assert payload == [("op", ("arg",))]
    child.close()
    parent.close()


def test_recv_raises_eof_on_closed_pipe():
    parent, child = multiprocessing.Pipe(duplex=False)
    child.close()
    with pytest.raises(EOFError):
        ipc.recv(parent)
    parent.close()


def test_try_send_swallows_closed_pipe():
    parent, child = multiprocessing.Pipe(duplex=False)
    parent.close()
    child.close()
    assert ipc.try_send(child, ipc.TAG_EVENT, {"kind": "x"}) is False


def _echo_child(conn_recv, conn_send):
    tag, payload = ipc.recv(conn_recv)
    ipc.send(conn_send, tag, payload)
    ipc.send_done(conn_send, {"ok": True})


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_cross_process_roundtrip():
    context = multiprocessing.get_context("fork")
    cmd_r, cmd_w = context.Pipe(duplex=False)
    out_r, out_w = context.Pipe(duplex=False)
    process = context.Process(target=_echo_child,
                              args=(cmd_r, out_w), daemon=True)
    process.start()
    ipc.send(cmd_w, ipc.TAG_CMDS, ["ping"])
    tag, payload = ipc.recv(out_r)
    assert (tag, payload) == (ipc.TAG_CMDS, ["ping"])
    tag, payload = ipc.recv(out_r)
    assert tag == ipc.TAG_DONE
    assert payload == {"ok": True}
    process.join(5)
    assert process.exitcode == 0
