"""Tiny-scale smoke tests for the remaining figure drivers."""

import pytest

from repro.harness.experiments import (Scale, node_size_sensitivity,
                                       storage_footprint,
                                       sync_latency_sensitivity,
                                       time_breakdown, tpcc_throughput)
from repro.workloads.tpcc import TPCCConfig

TINY = Scale(ycsb_tuples=150, ycsb_txns=150, tpcc_txns=25,
             tpcc=TPCCConfig(warehouses=1, districts_per_warehouse=1,
                             customers_per_district=5, items=15,
                             initial_orders_per_district=3),
             recovery_txn_counts=(30, 60), recovery_tuples=60,
             cache_bytes=32 * 1024, tpcc_cache_bytes=16 * 1024)


@pytest.mark.slow
def test_time_breakdown_driver():
    figures = time_breakdown(TINY, mixtures=("balanced",),
                             engines=("inp", "nvm-inp"))
    headers, rows = figures["balanced"]
    assert headers[0] == "engine"
    for row in rows:
        assert abs(sum(row[1:]) - 100.0) < 1.0


@pytest.mark.slow
def test_storage_footprint_driver():
    headers, rows = storage_footprint("ycsb", TINY,
                                      engines=("inp", "nvm-inp"))
    totals = {row[0]: row[-1] for row in rows}
    assert totals["inp"] > 0 and totals["nvm-inp"] > 0


@pytest.mark.slow
def test_tpcc_driver_single_latency():
    headers, rows, results = tpcc_throughput(
        TINY, latencies=("dram",), engines=("nvm-inp",))
    assert rows[0][1] > 0
    assert ("nvm-inp", "dram") in results


@pytest.mark.slow
def test_node_size_driver_runs():
    figures = node_size_sensitivity(TINY, mixtures=("read-heavy",))
    for engine, (headers, rows) in figures.items():
        assert len(rows) >= 3
        assert all(row[1] > 0 for row in rows)


@pytest.mark.slow
def test_sync_latency_driver_runs():
    figures = sync_latency_sensitivity(
        TINY, latencies_ns=(0, 10000), mixtures=("write-heavy",))
    for engine, (headers, rows) in figures.items():
        baseline, degraded = rows[0][1], rows[1][1]
        assert degraded < baseline
