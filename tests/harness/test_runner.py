"""Integration tests for the experiment runners."""

import pytest

from repro.config import LatencyProfile
from repro.harness.experiments import Scale
from repro.harness.runner import run
from repro.harness.spec import ExperimentSpec
from repro.workloads.tpcc import TPCCConfig

SMALL = Scale(ycsb_tuples=300, ycsb_txns=300, tpcc_txns=60,
              tpcc=TPCCConfig(warehouses=1, districts_per_warehouse=2,
                              customers_per_district=10, items=30,
                              initial_orders_per_district=5),
              cache_bytes=64 * 1024, tpcc_cache_bytes=32 * 1024)


def _ycsb_spec(engine, mixture, skew, **overrides):
    params = dict(num_tuples=SMALL.ycsb_tuples,
                  num_txns=SMALL.ycsb_txns,
                  engine_config=SMALL.engine_config(),
                  cache_bytes=SMALL.cache_bytes)
    params.update(overrides)
    return ExperimentSpec.ycsb(engine, mixture, skew, **params)


def test_run_ycsb_returns_complete_result():
    result = run(_ycsb_spec("nvm-inp", "balanced", "low"))
    assert result.engine == "nvm-inp"
    assert result.workload == "ycsb/balanced/low"
    assert result.txns == SMALL.ycsb_txns
    assert result.sim_seconds > 0
    assert result.throughput > 0
    assert result.nvm_loads > 0
    assert result.nvm_stores > 0
    assert abs(sum(result.time_breakdown.values()) - 1.0) < 1e-6
    assert set(result.storage_breakdown) >= {"table", "index", "log"}


def test_run_ycsb_read_only_no_stores():
    result = run(_ycsb_spec("inp", "read-only", "low"))
    assert result.nvm_stores < result.nvm_loads * 0.05 + 50


def test_run_ycsb_deterministic():
    def run_point():
        result = run(_ycsb_spec("log", "balanced", "high", seed=5))
        return (result.sim_seconds, result.nvm_loads,
                result.nvm_stores)

    assert run_point() == run_point()


def test_latency_profile_slows_reads():
    fast = run(_ycsb_spec("nvm-inp", "read-heavy", "low",
                          latency=LatencyProfile.dram()))
    slow = run(_ycsb_spec("nvm-inp", "read-heavy", "low",
                          latency=LatencyProfile.high_nvm()))
    assert slow.throughput < fast.throughput
    # Sub-linear: 8x latency must cost far less than 8x throughput.
    assert fast.throughput / slow.throughput < 8


def test_run_tpcc_returns_complete_result():
    result = run(ExperimentSpec.tpcc(
        "nvm-cow", tpcc_config=SMALL.tpcc, num_txns=SMALL.tpcc_txns,
        engine_config=SMALL.engine_config(),
        cache_bytes=SMALL.tpcc_cache_bytes))
    assert result.workload == "tpcc"
    assert result.throughput > 0
    assert result.nvm_stores > 0


def test_run_checkpoint_interval_applies():
    result = run(_ycsb_spec("inp", "write-heavy", "low",
                            run_checkpoint_interval=100))
    # A checkpoint happened during the measured window.
    assert result.storage_breakdown.get("checkpoint", 0) > 0


@pytest.mark.parametrize("engine", ["inp", "nvm-inp"])
def test_partitioned_run(engine):
    result = run(_ycsb_spec(engine, "balanced", "low",
                            num_tuples=400, num_txns=200,
                            partitions=2))
    assert result.throughput > 0
