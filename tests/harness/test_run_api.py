"""Tests for the unified run(spec) entry point and deprecated shims."""

import pytest

from repro.config import LatencyProfile
from repro.harness.runner import run, run_tpcc, run_ycsb
from repro.harness.spec import ExperimentSpec
from repro.obs.session import ObservabilitySession
from repro.workloads.tpcc import TPCCConfig

TINY = dict(num_tuples=200, num_txns=150, cache_bytes=64 * 1024)
TINY_TPCC = TPCCConfig(warehouses=1, districts_per_warehouse=2,
                       customers_per_district=10, items=30,
                       initial_orders_per_district=5)


def test_run_result_carries_spec_identity_in_extra():
    spec = ExperimentSpec.ycsb("nvm-inp", "balanced", "low",
                               partitions=2, seed=11, **TINY)
    result = run(spec)
    assert result.extra["seed"] == 11
    assert result.extra["partitions"] == 2
    assert result.extra["cache_bytes"] == TINY["cache_bytes"]
    assert result.extra["num_tuples"] == TINY["num_tuples"]


def test_run_to_dict_includes_throughput():
    result = run(ExperimentSpec.ycsb("inp", "read-heavy", "low",
                                     **TINY))
    payload = result.to_dict()
    assert payload["throughput"] == pytest.approx(result.throughput)
    assert payload["extra"]["seed"] == 31


def test_run_ycsb_shim_warns_and_matches_run():
    with pytest.warns(DeprecationWarning, match="run_ycsb"):
        legacy = run_ycsb("log", "balanced", "high",
                          latency=LatencyProfile.low_nvm(), seed=5,
                          **TINY)
    modern = run(ExperimentSpec.ycsb(
        "log", "balanced", "high", latency=LatencyProfile.low_nvm(),
        seed=5, **TINY))
    assert legacy == modern


def test_run_tpcc_shim_warns_and_matches_run():
    with pytest.warns(DeprecationWarning, match="run_tpcc"):
        legacy = run_tpcc("nvm-log", tpcc_config=TINY_TPCC,
                          num_txns=40)
    modern = run(ExperimentSpec.tpcc("nvm-log",
                                     tpcc_config=TINY_TPCC,
                                     num_txns=40))
    assert legacy == modern


def test_run_with_observability_session():
    session = ObservabilitySession()
    spec = ExperimentSpec.ycsb("nvm-inp", "balanced", "low",
                               crash_recover=True, **TINY)
    result = run(spec, obs=session)
    assert result.latency_percentiles is not None
    assert result.timeseries
    assert "recovery_seconds" in result.extra
    components = {record.get("component")
                  for record in session.records}
    assert "recovery" in components
