"""Tests for the unified run(spec) entry point."""

import pytest

from repro.harness.runner import run
from repro.harness.spec import ExperimentSpec
from repro.obs.session import ObservabilitySession

TINY = dict(num_tuples=200, num_txns=150, cache_bytes=64 * 1024)


def test_run_result_carries_spec_identity_in_extra():
    spec = ExperimentSpec.ycsb("nvm-inp", "balanced", "low",
                               partitions=2, seed=11, **TINY)
    result = run(spec)
    assert result.extra["seed"] == 11
    assert result.extra["partitions"] == 2
    assert result.extra["cache_bytes"] == TINY["cache_bytes"]
    assert result.extra["num_tuples"] == TINY["num_tuples"]


def test_run_to_dict_includes_throughput():
    result = run(ExperimentSpec.ycsb("inp", "read-heavy", "low",
                                     **TINY))
    payload = result.to_dict()
    assert payload["throughput"] == pytest.approx(result.throughput)
    assert payload["extra"]["seed"] == 31


def test_shims_are_gone():
    """PR 2's deprecated per-workload entry points are removed;
    run(spec) is the single entry point."""
    import repro.harness as harness
    import repro.harness.runner as runner
    assert not hasattr(runner, "run_ycsb")
    assert not hasattr(runner, "run_tpcc")
    assert "run_ycsb" not in harness.__all__
    assert "run_tpcc" not in harness.__all__


def test_run_with_observability_session():
    session = ObservabilitySession()
    spec = ExperimentSpec.ycsb("nvm-inp", "balanced", "low",
                               crash_recover=True, **TINY)
    result = run(spec, obs=session)
    assert result.latency_percentiles is not None
    assert result.timeseries
    assert "recovery_seconds" in result.extra
    components = {record.get("component")
                  for record in session.records}
    assert "recovery" in components
