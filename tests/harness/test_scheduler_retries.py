"""run_sweep retry semantics: flaky points succeed on a retry, attempts
are recorded, and permanent failures exhaust their budget."""

import json
import os
from dataclasses import dataclass

from repro.harness.scheduler import run_sweep, write_sweep_summary


@dataclass(frozen=True)
class FlakyResult:
    label: str

    def to_dict(self):
        return {"label": self.label}


@dataclass(frozen=True)
class FlakySpec:
    """Fails on the first attempt, succeeds once its marker file exists.
    The marker lives on disk so the behavior survives the process
    boundary of parallel sweeps."""

    marker_path: str
    label: str = "flaky"
    observe: bool = False

    def slug(self):
        return f"flaky-{self.label}"

    def to_dict(self):
        return {"kind": "flaky", "label": self.label}

    def execute(self, obs=None):
        if not os.path.exists(self.marker_path):
            with open(self.marker_path, "w") as stream:
                stream.write("attempted\n")
            raise RuntimeError("first attempt always fails")
        return FlakyResult(self.label)


@dataclass(frozen=True)
class AlwaysFailSpec:
    label: str = "doomed"
    observe: bool = False

    def slug(self):
        return f"doomed-{self.label}"

    def to_dict(self):
        return {"kind": "doomed", "label": self.label}

    def execute(self, obs=None):
        raise RuntimeError("permanently broken")


def test_serial_retry_recovers_flaky_point(tmp_path):
    spec = FlakySpec(marker_path=str(tmp_path / "marker"))
    [outcome] = run_sweep([spec], retries=1, retry_backoff_s=0.001)
    assert outcome.ok, outcome.error
    assert outcome.attempts == 2
    assert outcome.result == FlakyResult("flaky")


def test_no_retries_preserves_first_failure(tmp_path):
    spec = FlakySpec(marker_path=str(tmp_path / "marker"))
    [outcome] = run_sweep([spec], retries=0)
    assert not outcome.ok
    assert outcome.attempts == 1
    assert "first attempt always fails" in outcome.error


def test_parallel_retry_recovers_flaky_points(tmp_path):
    specs = [FlakySpec(marker_path=str(tmp_path / f"marker-{i}"),
                       label=f"p{i}") for i in range(2)]
    outcomes = run_sweep(specs, jobs=2, retries=1,
                         retry_backoff_s=0.001)
    assert [outcome.ok for outcome in outcomes] == [True, True]
    assert [outcome.attempts for outcome in outcomes] == [2, 2]
    # spec order is preserved regardless of completion order
    assert [outcome.result.label for outcome in outcomes] == ["p0", "p1"]


def test_retries_exhaust_for_permanent_failures():
    [outcome] = run_sweep([AlwaysFailSpec()], retries=2,
                          retry_backoff_s=0.001)
    assert not outcome.ok
    assert outcome.attempts == 3
    assert "permanently broken" in outcome.error


def test_summary_records_attempts(tmp_path):
    spec = FlakySpec(marker_path=str(tmp_path / "marker"))
    outcomes = run_sweep([spec], retries=1, retry_backoff_s=0.001)
    path = write_sweep_summary(outcomes, str(tmp_path / "summary.json"))
    with open(path, encoding="utf-8") as stream:
        summary = json.load(stream)
    assert summary["points"][0]["attempts"] == 2
    assert summary["failed"] == 0
