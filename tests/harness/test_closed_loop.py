"""The closed-loop multi-client driver against a loopback server —
including the PR's acceptance comparison: with >= 8 concurrent
sessions, group commit must cut simulated durability rounds per
committed transaction versus batching disabled."""

from __future__ import annotations

import dataclasses

import pytest

from repro.harness import ClosedLoopConfig, run_loopback, sweep_clients
from repro.server import GroupCommitConfig, ServerConfig

#: Small but genuinely concurrent workload shape.
_WORKLOAD = ClosedLoopConfig(clients=8, txns_per_client=12, ops_per_txn=2,
                             keys=128, seed=77)


def _server_config(enabled: bool) -> ServerConfig:
    return ServerConfig(
        engine="inp",
        group_commit=GroupCommitConfig(enabled=enabled, batch_size=8,
                                       max_hold_ns=500_000.0,
                                       max_hold_wall_s=0.002))


@pytest.mark.slow
def test_group_commit_reduces_durability_rounds():
    disabled = run_loopback(_server_config(False), _WORKLOAD)
    enabled = run_loopback(_server_config(True), _WORKLOAD)

    expected = _WORKLOAD.clients * _WORKLOAD.txns_per_client
    for result in (disabled, enabled):
        assert result.clients == 8
        assert result.committed == expected
        assert result.failed == 0
        assert result.throughput > 0

    # Unbatched: one durable point per transaction.
    assert disabled.rounds_per_txn >= 1.0
    assert disabled.max_batch == 1
    # Batched: concurrent commits share durable points.
    assert enabled.mean_batch > 1.0
    assert enabled.max_batch > 1
    assert enabled.rounds_per_txn < disabled.rounds_per_txn


@pytest.mark.slow
def test_sweep_clients_dimension():
    base = dataclasses.replace(_WORKLOAD, txns_per_client=6)
    results = sweep_clients([1, 8], _server_config(True), base)
    assert [r.clients for r in results] == [1, 8]
    assert all(r.failed == 0 for r in results)
    assert all(r.committed == r.clients * 6 for r in results)
    # More clients -> fuller batches -> cheaper durability per txn.
    assert results[1].mean_batch > results[0].mean_batch
    assert results[1].rounds_per_txn < results[0].rounds_per_txn


@pytest.mark.slow
def test_closed_loop_survives_crash_recover_midrun():
    """One mid-run power failure: workers count failures, reopen
    sessions, and the run still completes every transaction."""
    import threading
    import time

    from repro.client import ReproClient
    from repro.harness.closed_loop import run_closed_loop
    from repro.server import ServerThread

    config = _server_config(True)
    workload = dataclasses.replace(_WORKLOAD, txns_per_client=25)
    with ServerThread(config) as thread:
        host, port = thread.server.address

        def saboteur():
            time.sleep(0.3)
            with ReproClient(host, port) as admin:
                admin.crash()
                time.sleep(0.05)
                admin.recover()

        chaos = threading.Thread(target=saboteur, daemon=True)
        chaos.start()
        result = run_closed_loop(host, port, workload)
        chaos.join(timeout=10.0)

    assert result.committed == workload.clients * workload.txns_per_client
    assert result.server_stats["crashed"] is False
