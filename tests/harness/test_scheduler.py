"""Tests for the parallel experiment scheduler."""

import json
import multiprocessing
import os
import time

import pytest

from repro.errors import SweepError
from repro.harness import scheduler
from repro.harness.scheduler import (merged_session, results_or_raise,
                                     run_sweep)
from repro.harness.spec import ExperimentSpec
from repro.workloads.tpcc import TPCCConfig

HAVE_FORK = "fork" in multiprocessing.get_all_start_methods()

TINY = dict(num_tuples=200, num_txns=150, cache_bytes=64 * 1024)


def _grid():
    return [ExperimentSpec.ycsb(engine, "balanced", "low",
                                latency=latency, **TINY)
            for engine in ("inp", "nvm-inp")
            for latency in ("dram", "high")]


def test_parallel_sweep_matches_serial_baseline():
    specs = _grid()
    serial = results_or_raise(run_sweep(specs, jobs=1))
    parallel = results_or_raise(run_sweep(specs, jobs=2))
    # Value-identical results, merged in spec order — the scheduler's
    # core determinism guarantee.
    assert serial == parallel
    assert [r.engine for r in parallel] == [s.engine for s in specs]


def test_parallel_sweep_exports_are_byte_identical():
    """Regression guard for the cache fast paths: the serialized sweep
    output — including float formatting of simulated times and dict
    insertion order — must not depend on worker count."""
    specs = _grid()
    serial = results_or_raise(run_sweep(specs, jobs=1))
    parallel = results_or_raise(run_sweep(specs, jobs=2))
    serial_json = json.dumps([r.to_dict() for r in serial])
    parallel_json = json.dumps([r.to_dict() for r in parallel])
    assert serial_json == parallel_json


def test_sweep_mixes_workloads():
    specs = [
        ExperimentSpec.ycsb("inp", "read-heavy", "low", **TINY),
        ExperimentSpec.tpcc("nvm-inp",
                            tpcc_config=TPCCConfig(
                                warehouses=1,
                                districts_per_warehouse=2,
                                customers_per_district=10, items=30,
                                initial_orders_per_district=5),
                            num_txns=40),
    ]
    results = results_or_raise(run_sweep(specs, jobs=2))
    assert results[0].workload == "ycsb/read-heavy/low"
    assert results[1].workload == "tpcc"


def test_serial_error_isolated_and_reported():
    specs = [ExperimentSpec.ycsb("inp", "balanced", "low", **TINY),
             ExperimentSpec.ycsb("no-such-engine", "balanced", "low",
                                 **TINY)]
    outcomes = run_sweep(specs, jobs=1)
    assert outcomes[0].ok
    assert not outcomes[1].ok and outcomes[1].error
    with pytest.raises(SweepError, match="no-such-engine"):
        results_or_raise(outcomes)


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_worker_crash_marks_only_its_point_failed(monkeypatch):
    real = scheduler._execute_point

    def boom(spec, observe):
        if spec.engine == "nvm-inp":
            os._exit(13)  # simulated hard worker death
        return real(spec, observe)

    monkeypatch.setattr(scheduler, "_execute_point", boom)
    specs = [ExperimentSpec.ycsb(engine, "balanced", "low", **TINY)
             for engine in ("inp", "nvm-inp", "log")]
    outcomes = run_sweep(specs, jobs=2)
    assert outcomes[0].ok and outcomes[2].ok
    assert not outcomes[1].ok
    assert "crash" in outcomes[1].error


@pytest.mark.skipif(not HAVE_FORK, reason="needs fork start method")
def test_worker_timeout_terminates_point(monkeypatch):
    real = scheduler._execute_point

    def stall(spec, observe):
        if spec.engine == "log":
            time.sleep(60)
        return real(spec, observe)

    monkeypatch.setattr(scheduler, "_execute_point", stall)
    specs = [ExperimentSpec.ycsb(engine, "balanced", "low", **TINY)
             for engine in ("inp", "log")]
    started = time.perf_counter()
    outcomes = run_sweep(specs, jobs=2, timeout_s=1.0)
    assert time.perf_counter() - started < 30
    assert outcomes[0].ok
    assert not outcomes[1].ok and "timeout" in outcomes[1].error


def test_artifacts_written_per_point_with_merged_summary(tmp_path):
    specs = [ExperimentSpec.ycsb(engine, "balanced", "low", **TINY)
             for engine in ("inp", "log")]
    outcomes = run_sweep(specs, jobs=2,
                         artifacts_dir=str(tmp_path))
    for outcome in outcomes:
        assert os.path.exists(outcome.artifacts["trace"])
        assert os.path.exists(outcome.artifacts["metrics"])
        assert outcome.result.latency_percentiles is not None
    summary = json.loads((tmp_path / "summary.json").read_text())
    assert summary["kind"] == "repro-sweep-summary"
    assert summary["failed"] == 0
    engines = [point["spec"]["engine"] for point in summary["points"]]
    assert engines == ["inp", "log"]  # spec order, not completion
    point = summary["points"][0]
    assert point["spec"]["seed"] == 31
    assert point["spec"]["cache_bytes"] == TINY["cache_bytes"]
    assert point["result"]["throughput"] > 0


def test_merged_session_matches_serial_exports(tmp_path):
    specs = [ExperimentSpec.ycsb(engine, "balanced", "low", **TINY)
             for engine in ("inp", "log")]
    serial = merged_session(run_sweep(specs, jobs=1, observe=True))
    parallel = merged_session(run_sweep(specs, jobs=2, observe=True))
    serial_trace = tmp_path / "serial.jsonl"
    parallel_trace = tmp_path / "parallel.jsonl"
    serial.export_trace(str(serial_trace))
    parallel.export_trace(str(parallel_trace))
    assert serial_trace.read_text() == parallel_trace.read_text()
    serial_prom = tmp_path / "serial.prom"
    parallel_prom = tmp_path / "parallel.prom"
    serial.export_metrics(str(serial_prom))
    parallel.export_metrics(str(parallel_prom))
    assert serial_prom.read_text() == parallel_prom.read_text()
