"""Tests for the per-figure experiment drivers (tiny scale)."""

from repro.harness.experiments import (Scale, fig1_interfaces,
                                       recovery_latency,
                                       table1_technologies,
                                       ycsb_throughput)
from repro.workloads.tpcc import TPCCConfig

TINY = Scale(ycsb_tuples=200, ycsb_txns=200, tpcc_txns=30,
             tpcc=TPCCConfig(warehouses=1, districts_per_warehouse=1,
                             customers_per_district=5, items=20,
                             initial_orders_per_district=3),
             recovery_txn_counts=(50, 100),
             cache_bytes=32 * 1024, tpcc_cache_bytes=16 * 1024)


def test_fig1_driver_shape():
    headers, rows = fig1_interfaces(chunk_sizes=(8, 64),
                                    total_bytes=4096)
    assert headers[0] == "chunk (B)"
    assert len(rows) == 2
    for row in rows:
        assert row[1] > row[2]  # allocator beats filesystem


def test_ycsb_throughput_driver():
    headers, rows, results = ycsb_throughput(
        "dram", TINY, mixtures=("balanced",), skews=("low",),
        engines=("inp", "nvm-inp"))
    assert headers == ["engine", "balanced/low"]
    assert [row[0] for row in rows] == ["inp", "nvm-inp"]
    assert all(row[1] > 0 for row in rows)
    assert ("inp", "balanced", "low") in results


def test_recovery_latency_driver():
    headers, rows = recovery_latency(
        "ycsb", TINY, engines=("inp", "nvm-inp"))
    assert len(headers) == 1 + len(TINY.recovery_txn_counts)
    by_engine = {row[0]: row[1:] for row in rows}
    # More history, more (or equal) recovery work for InP.
    assert by_engine["inp"][-1] >= by_engine["inp"][0]
    assert by_engine["inp"][-1] > by_engine["nvm-inp"][-1]


def test_table1_driver():
    headers, rows = table1_technologies()
    assert "PCM" in headers
    assert any(row[0] == "endurance (writes)" for row in rows)


def test_scale_engine_config_overrides():
    config = TINY.engine_config(group_commit_size=2)
    assert config.group_commit_size == 2
    assert config.nvm_cow_node_size == 512
