"""Tests for the static lint pass (`repro lint`, rules LNT001-LNT005).

Rule behaviour is tested on synthetic source strings; the final test
asserts the real tree lints clean (the CI contract).
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import (DEFAULT_LINT_PATHS, LINT_RULES, RULE_REGISTRY,
                        SourceFile, lint_files, lint_paths)


def lint_source(source: str, select=None):
    file = SourceFile("synthetic.py", textwrap.dedent(source))
    return lint_files([file], select=select)


def codes(violations):
    return [violation.code for violation in violations]


class TestRawFlushWithoutFence:
    def test_unfenced_clflush_is_flagged(self):
        violations = lint_source("""
            def commit(self):
                self.memory.clflush(addr, size)
            """)
        assert codes(violations) == ["LNT001"]
        assert "sfence" in violations[0].message

    def test_clwb_is_also_flagged(self):
        violations = lint_source("""
            def commit(self):
                self.memory.clwb(addr, size)
            """)
        assert codes(violations) == ["LNT001"]

    def test_fence_in_same_function_passes(self):
        assert lint_source("""
            def sync(self, addr, size):
                self.clflush(addr, size)
                self.sfence()
            """) == []

    def test_facade_wrappers_are_exempt(self):
        # NVMMemory.clflush forwards to the cache layer by design.
        assert lint_source("""
            def clflush(self, addr, size):
                self._cache.clflush(addr, size)
            """) == []

    def test_nested_function_fence_does_not_count(self):
        violations = lint_source("""
            def commit(self):
                self.memory.clflush(addr, size)
                def helper():
                    self.memory.sfence()
            """)
        assert codes(violations) == ["LNT001"]


class TestFaultPointRegistry:
    def test_unregistered_fire_is_flagged(self):
        violations = lint_source("""
            def commit(self):
                self.faults.fire("engine.commit.before")
            """, select=["LNT002"])
        assert codes(violations) == ["LNT002"]
        assert "engine.commit.before" in violations[0].message

    def test_registered_but_never_fired_is_flagged(self):
        violations = lint_source("""
            register_fault_point("engine.commit.before", "desc")
            """, select=["LNT003"])
        assert codes(violations) == ["LNT003"]

    def test_matched_pair_passes(self):
        assert lint_source("""
            register_fault_point("engine.commit.before", "desc")
            def commit(self):
                self.faults.fire("engine.commit.before")
            """, select=["LNT002", "LNT003"]) == []

    def test_cross_file_matching(self):
        registry = SourceFile("registry.py", textwrap.dedent("""
            register_fault_point("a.b", "desc")
            """))
        engine = SourceFile("engine.py", textwrap.dedent("""
            def go(self):
                self.faults.fire("a.b")
            """))
        assert lint_files([registry, engine],
                          select=["LNT002", "LNT003"]) == []

    def test_non_literal_fire_is_ignored(self):
        assert lint_source("""
            def go(self, name):
                self.faults.fire(name)
            """, select=["LNT002"]) == []


class TestEngineOptionsKeywordOnly:
    def test_positional_option_is_flagged(self):
        violations = lint_source("""
            @register_engine
            class FancyEngine:
                def __init__(self, platform, config, cache_lines):
                    pass
            """)
        assert codes(violations) == ["LNT004"]
        assert "cache_lines" in violations[0].message

    def test_keyword_only_option_passes(self):
        assert lint_source("""
            @register_engine
            class FancyEngine:
                def __init__(self, platform, config, *, cache_lines=4):
                    pass
            """) == []

    def test_undecorated_class_is_not_an_engine(self):
        assert lint_source("""
            class Helper:
                def __init__(self, platform, config, extra):
                    pass
            """, select=["LNT004"]) == []


class TestMissingSlots:
    def test_bare_value_class_is_flagged(self):
        violations = lint_source("""
            class _Table:
                def __init__(self, schema):
                    self.schema = schema
                    self.rows = {}
            """)
        assert codes(violations) == ["LNT005"]

    def test_slots_satisfy_the_rule(self):
        assert lint_source("""
            class _Table:
                __slots__ = ("schema", "rows")
                def __init__(self, schema):
                    self.schema = schema
                    self.rows = {}
            """) == []

    def test_classes_with_behaviour_are_exempt(self):
        assert lint_source("""
            class Pool:
                def __init__(self):
                    self.items = []
                def take(self):
                    return self.items.pop()
            """, select=["LNT005"]) == []

    def test_decorated_classes_are_exempt(self):
        assert lint_source("""
            @dataclass
            class Point:
                def __init__(self):
                    self.x = 0
            """, select=["LNT005"]) == []

    def test_subclasses_are_exempt(self):
        assert lint_source("""
            class Special(Base):
                def __init__(self):
                    self.x = 0
            """, select=["LNT005"]) == []


class TestFrameworkPlumbing:
    def test_noqa_bare_waives_all_codes(self):
        assert lint_source("""
            def commit(self):
                self.memory.clflush(addr, size)  # noqa
            """) == []

    def test_noqa_with_matching_code_waives(self):
        assert lint_source("""
            def commit(self):
                self.memory.clflush(addr, size)  # noqa: LNT001
            """) == []

    def test_noqa_with_other_code_does_not_waive(self):
        violations = lint_source("""
            def commit(self):
                self.memory.clflush(addr, size)  # noqa: LNT005
            """)
        assert codes(violations) == ["LNT001"]

    def test_unknown_select_code_raises(self):
        with pytest.raises(ValueError, match="unknown rule codes"):
            lint_source("x = 1", select=["LNT999"])

    def test_violations_sorted_and_serializable(self):
        violations = lint_source("""
            class _B:
                def __init__(self):
                    self.x = 0
            class _A:
                def __init__(self):
                    self.y = 0
            """)
        assert codes(violations) == ["LNT005", "LNT005"]
        lines = [violation.line for violation in violations]
        assert lines == sorted(lines)
        payload = violations[0].to_dict()
        assert payload["code"] == "LNT005"
        assert "synthetic.py" in str(violations[0])

    def test_rule_catalogue_matches_registry(self):
        assert set(LINT_RULES) == set(RULE_REGISTRY)
        assert sorted(LINT_RULES) == ["LNT001", "LNT002", "LNT003",
                                      "LNT004", "LNT005"]


def test_project_tree_lints_clean():
    """The CI contract: engines, nvm, and fault packages have zero
    findings (fixes and waivers are part of the source tree)."""
    assert lint_paths(DEFAULT_LINT_PATHS) == []
