#!/usr/bin/env python
"""CI smoke test of the network tier, end to end.

Launches a real ``python -m repro serve`` subprocess on a loopback
ephemeral port, drives it through the client library with concurrent
closed-loop sessions, injects one mid-run crash/recover cycle under
live load, verifies every transaction was accounted for, then shuts
the server down with SIGTERM and requires a clean exit (code 0, group
commit accounting table printed, no orphan process).

Telemetry lands in ``--out`` (default ``server-smoke-artifacts/``):
``result.json`` (closed-loop measurement), ``stats.json`` (the stats
verb's final snapshot), ``server.log`` (the subprocess's output) — CI
uploads the directory when the job fails.

Exit code 0 on success; any assertion failure or timeout is fatal.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.client import ReproClient                      # noqa: E402
from repro.harness.closed_loop import (ClosedLoopConfig,  # noqa: E402
                                       run_closed_loop)

BANNER = re.compile(r"listening on ([\d.]+):(\d+)")


def start_server(engine: str, log_path: pathlib.Path,
                 timeout_s: float = 30.0):
    """Launch ``repro serve`` and wait for its listening banner."""
    log = log_path.open("w", encoding="utf-8")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--engine", engine,
         "--port", "0", "--batch-size", "8", "--hold-ns", "500000",
         "--hold-wall-ms", "2"],
        stdout=log, stderr=subprocess.STDOUT,
        cwd=str(pathlib.Path(__file__).resolve().parent.parent))
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        banner = BANNER.search(log_path.read_text(encoding="utf-8"))
        if banner:
            return process, banner.group(1), int(banner.group(2))
        if process.poll() is not None:
            raise RuntimeError(
                f"server died at startup (exit {process.returncode}); "
                f"see {log_path}")
        time.sleep(0.1)
    process.kill()
    raise RuntimeError(f"server never printed its banner; see {log_path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--engine", default="inp",
                        help="storage engine (default: inp — its WAL "
                             "fsync makes group commit visible)")
    parser.add_argument("--clients", type=int, default=6)
    parser.add_argument("--txns-per-client", type=int, default=50)
    parser.add_argument("--out", default="server-smoke-artifacts")
    args = parser.parse_args()
    assert args.clients >= 4, "smoke needs >= 4 concurrent sessions"

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    process, host, port = start_server(args.engine, out / "server.log")
    print(f"server up on {host}:{port} (pid {process.pid})")

    try:
        # One crash/recover cycle while the clients are mid-flight:
        # trigger on progress (~25% of the workload committed), not on
        # wall time, so the failure always lands under live load.
        expected = args.clients * args.txns_per_client

        def saboteur():
            with ReproClient(host, port) as admin:
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    if admin.stats()["committed_txns"] >= expected // 4:
                        break
                    time.sleep(0.005)
                lost = admin.crash()["lost_commits"]
                print(f"injected power failure "
                      f"({lost} in-flight commits lost)")
                time.sleep(0.05)
                admin.recover()
                print("recovered under live load")

        chaos = threading.Thread(target=saboteur, daemon=True)
        chaos.start()

        workload = ClosedLoopConfig(clients=args.clients,
                                    txns_per_client=args.txns_per_client,
                                    ops_per_txn=2, keys=256, seed=20150631)
        result = run_closed_loop(host, port, workload)
        chaos.join(timeout=30.0)
        assert not chaos.is_alive(), "saboteur never finished"

        (out / "result.json").write_text(
            json.dumps(result.to_dict(), indent=2), encoding="utf-8")
        (out / "stats.json").write_text(
            json.dumps(result.server_stats, indent=2), encoding="utf-8")

        print(f"committed {result.committed}/{expected} "
              f"({result.failed} retried through the crash), "
              f"rounds/txn {result.rounds_per_txn:.3f}, "
              f"mean batch {result.mean_batch:.2f}")
        assert result.committed == expected, \
            f"lost transactions: {result.committed} != {expected}"
        assert result.failed > 0, \
            "the crash was invisible — saboteur raced the workload?"
        assert not result.server_stats["crashed"]
        assert result.mean_batch > 1.0, \
            "group commit never batched despite concurrent sessions"
    except BaseException:
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=15.0)
        raise

    # Clean SIGTERM shutdown: exit 0 and the accounting table printed.
    process.send_signal(signal.SIGTERM)
    exit_code = process.wait(timeout=15.0)
    log_text = (out / "server.log").read_text(encoding="utf-8")
    assert exit_code == 0, f"server exited {exit_code}; log:\n{log_text}"
    assert "group commit on" in log_text, \
        f"no accounting table in server output:\n{log_text}"
    print("clean shutdown (exit 0, accounting table printed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
