#!/usr/bin/env python3
"""Quickstart: a durable key-value table on an NVM-only hierarchy.

Creates a database with the NVM-aware in-place updates engine, runs a
few transactions (including a multi-operation transfer and an aborted
one), then kills the "machine" and shows that recovery is instantaneous
and loses nothing that was committed.

Run:  python examples/quickstart.py
"""

from repro import (Column, ColumnType, Database, Schema,
                   TransactionAborted)


def main() -> None:
    with Database(engine="nvm-inp") as db:
        _demo(db)


def _demo(db: Database) -> None:
    db.create_table(Schema.build(
        "accounts",
        [Column("id", ColumnType.INT),
         Column("owner", ColumnType.STRING, capacity=32),
         Column("balance", ColumnType.FLOAT)],
        primary_key=["id"],
        secondary_indexes={"by_owner": ["owner"]}))

    # Single-operation transactions through the convenience API.
    db.insert("accounts", {"id": 1, "owner": "ada", "balance": 100.0})
    db.insert("accounts", {"id": 2, "owner": "bob", "balance": 50.0})

    # A multi-operation stored procedure: transfer with validation.
    def transfer(ctx, src, dst, amount):
        source = ctx.get("accounts", src)
        if source["balance"] < amount:
            ctx.abort("insufficient funds")
        target = ctx.get("accounts", dst)
        ctx.update("accounts", src,
                   {"balance": source["balance"] - amount})
        ctx.update("accounts", dst,
                   {"balance": target["balance"] + amount})

    db.execute(transfer, 1, 2, 30.0)
    print("after transfer:",
          db.get("accounts", 1)["balance"],
          db.get("accounts", 2)["balance"])

    # An aborted transaction leaves no trace.
    try:
        db.execute(transfer, 2, 1, 10_000.0)
    except TransactionAborted as exc:
        print("aborted as expected:", exc)

    # Kill the machine mid-flight and recover.
    db.crash()
    seconds = db.recover()
    print(f"recovered in {seconds * 1e6:.1f} simulated microseconds")
    print("after crash:",
          db.get("accounts", 1)["balance"],
          db.get("accounts", 2)["balance"])

    # Secondary index lookups survive too.
    owners = db.execute(
        lambda ctx: ctx.get_secondary("accounts", "by_owner", "ada"))
    print("ada's accounts:", owners)

    counters = db.nvm_counters()
    print(f"NVM traffic: {counters['loads']} loads, "
          f"{counters['stores']} stores "
          f"({db.committed_txns} txns committed, "
          f"{db.aborted_txns} aborted)")


if __name__ == "__main__":
    main()
