#!/usr/bin/env python3
"""Device-wear analysis: how engine choice stretches NVM lifetime.

The paper motivates the NVM-aware engines partly by endurance: "the
number of write cycles per bit is limited in different NVM
technologies" (Table 1). This example measures NVM stores per engine
on a write-heavy YCSB run and projects the relative device lifetime on
PCM and RRAM.

Run:  python examples/wear_analysis.py
"""

from repro import ENGINE_NAMES
from repro.analysis.tables import format_table
from repro.harness import (QUICK_SCALE, ExperimentSpec,
                           results_or_raise, run_sweep)
from repro.nvm.constants import TECHNOLOGIES, wear_fraction


def main() -> None:
    scale = QUICK_SCALE
    specs = [ExperimentSpec.ycsb(engine, "write-heavy", "low",
                                 num_tuples=scale.ycsb_tuples,
                                 num_txns=scale.ycsb_txns,
                                 engine_config=scale.engine_config(),
                                 cache_bytes=scale.cache_bytes)
             for engine in ENGINE_NAMES.ALL]
    stores = {spec.engine: result.nvm_stores
              for spec, result in zip(specs, results_or_raise(
                  run_sweep(specs)))}

    baseline = stores["inp"]
    headers = ["engine", "NVM stores", "vs InP",
               "PCM wear (x1e-6)", "relative lifetime"]
    rows = []
    for engine in ENGINE_NAMES.ALL:
        pcm = wear_fraction(stores[engine],
                            TECHNOLOGIES["PCM"].endurance_writes)
        rows.append([engine, stores[engine],
                     stores[engine] / baseline,
                     pcm * 1e6,
                     baseline / stores[engine]])
    print(format_table(headers, rows,
                       title="Device wear, YCSB write-heavy/low "
                             f"({scale.ycsb_txns} txns)"))

    best = min(stores, key=stores.get)
    worst = max(stores, key=stores.get)
    print(f"\n{best} writes {stores[worst] / stores[best]:.1f}x less "
          f"than {worst}: on endurance-limited technologies (PCM: "
          f"{TECHNOLOGIES['PCM'].endurance_writes:.0e} writes, RRAM: "
          f"{TECHNOLOGIES['RRAM'].endurance_writes:.0e}) that is a "
          f"proportional lifetime extension.")


if __name__ == "__main__":
    main()
