#!/usr/bin/env python3
"""TPC-C order-entry demo: the paper's second workload, end to end.

Loads a scaled TPC-C database (the full nine-table schema), runs the
standard transaction mix against two engines (traditional InP vs
NVM-aware InP), verifies business invariants, and reports throughput
and NVM wear.

Run:  python examples/tpcc_order_entry.py
"""

from repro import CacheConfig, Database, EngineConfig, PlatformConfig
from repro.analysis.tables import format_table
from repro.workloads.tpcc import TPCCConfig, TPCCWorkload


def run_engine(engine: str, num_txns: int = 300):
    config = TPCCConfig(warehouses=2, districts_per_warehouse=2,
                        customers_per_district=20, items=50,
                        initial_orders_per_district=10, seed=41)
    workload = TPCCWorkload(config)
    # Scale the CPU cache with the dataset (the emulator's 20 MB L3
    # covers ~2% of the paper's 1 GB TPC-C database).
    platform_config = PlatformConfig(
        cache=CacheConfig(capacity_bytes=48 * 1024), seed=41)
    db = Database(engine=engine, seed=41,
                  platform_config=platform_config,
                  engine_config=EngineConfig(nvm_cow_node_size=512))
    workload.load(db)
    db.settle()
    start_ns = db.now_ns
    loads0 = db.nvm_counters()["loads"]
    stores0 = db.nvm_counters()["stores"]
    executed = workload.run(db, num_txns)
    db.settle()  # count the writeback debt the run produced
    elapsed = (db.now_ns - start_ns) / 1e9
    counters = db.nvm_counters()

    # Business invariant: warehouse YTD equals the sum of its
    # districts' YTD (every payment updates both atomically).
    for w_id in range(1, config.warehouses + 1):
        warehouse = db.get("warehouse", w_id,
                           partition=workload.partition_of(w_id))
        district_ytd = sum(
            db.get("district", (w_id, d_id),
                   partition=workload.partition_of(w_id))["d_ytd"]
            for d_id in range(1, config.districts_per_warehouse + 1))
        assert abs(warehouse["w_ytd"] - district_ytd) < 1e-6, \
            f"YTD invariant broken on warehouse {w_id}"

    return {
        "engine": engine,
        "throughput": num_txns / elapsed,
        "loads": counters["loads"] - loads0,
        "stores": counters["stores"] - stores0,
        "mix": executed,
    }


def main() -> None:
    results = [run_engine("inp"), run_engine("nvm-inp")]
    headers = ["engine", "txn/s", "NVM loads", "NVM stores"]
    rows = [[r["engine"], r["throughput"], r["loads"], r["stores"]]
            for r in results]
    print(format_table(headers, rows, title="TPC-C order entry"))
    print("\ntransaction mix executed:", results[0]["mix"])
    print("warehouse/district YTD invariants verified on both engines")
    speedup = results[1]["throughput"] / results[0]["throughput"]
    wear = 1 - results[1]["stores"] / results[0]["stores"]
    print(f"NVM-InP: {speedup:.2f}x throughput, "
          f"{wear:.0%} fewer NVM stores than InP")


if __name__ == "__main__":
    main()
