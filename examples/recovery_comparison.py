#!/usr/bin/env python3
"""Crash-recovery comparison across the six engines (the Fig. 12 story).

Loads a table, runs a batch of transactions, kills the machine, and
measures how long each engine takes to restore a consistent state —
then verifies the state really is consistent. The traditional engines
replay history; the NVM-aware engines only undo in-flight transactions
and come back almost instantaneously; the CoW pair never recovers at
all.

Run:  python examples/recovery_comparison.py
"""

from repro import Column, ColumnType, Database, EngineConfig, Schema
from repro import ENGINE_NAMES
from repro.analysis.tables import format_table


def schema() -> Schema:
    return Schema.build(
        "events",
        [Column("id", ColumnType.INT),
         Column("kind", ColumnType.INT),
         Column("payload", ColumnType.STRING, capacity=120)],
        primary_key=["id"])


def main() -> None:
    headers = ["engine", "recovery (ms)", "state intact"]
    rows = []
    for engine in ENGINE_NAMES.ALL:
        config = EngineConfig(checkpoint_interval_txns=10 ** 9,
                              memtable_threshold_bytes=2 ** 30,
                              nvm_cow_node_size=512)
        with Database(engine=engine, engine_config=config,
                      seed=17) as db:
            db.create_table(schema())
            for i in range(800):
                db.insert("events",
                          {"id": i, "kind": i % 5,
                           "payload": f"event-{i}-" + "x" * 40})
            for i in range(0, 800, 4):
                db.update("events", i, {"kind": 99})
            db.flush()

            db.crash()
            millis = db.recover() * 1e3

            intact = all(
                (db.get("events", i) or {}).get("kind")
                == (99 if i % 4 == 0 else i % 5)
                for i in range(0, 800, 37))
            rows.append([engine, millis, "yes" if intact else "NO"])

    print(format_table(headers, rows,
                       title="Recovery after a kill (1000 committed "
                             "txns, no checkpoints)"))
    by_engine = {row[0]: row[1] for row in rows}
    speedup = by_engine["inp"] / max(by_engine["nvm-inp"], 1e-9)
    print(f"\nNVM-InP recovers {speedup:,.0f}x faster than InP; "
          f"the CoW engines need no recovery at all.")


if __name__ == "__main__":
    main()
