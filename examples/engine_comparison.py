#!/usr/bin/env python3
"""Compare all six storage engines on a YCSB mixture.

Reproduces the core of the paper's Fig. 5/10 story at example scale:
run the same pre-generated YCSB workload against every engine and
print throughput, NVM loads/stores, and the storage footprint — the
NVM-aware engines deliver higher throughput with fewer writes to the
device.

Run:  python examples/engine_comparison.py [mixture] [skew] [jobs]
      mixture in {read-only, read-heavy, balanced, write-heavy}
      skew    in {low, high}
      jobs    worker processes for the sweep (default 1)
"""

import sys

from repro import ENGINE_NAMES
from repro.analysis.tables import format_table
from repro.harness import (QUICK_SCALE, ExperimentSpec,
                           results_or_raise, run_sweep)


def main() -> None:
    mixture = sys.argv[1] if len(sys.argv) > 1 else "write-heavy"
    skew = sys.argv[2] if len(sys.argv) > 2 else "low"
    jobs = int(sys.argv[3]) if len(sys.argv) > 3 else 1
    scale = QUICK_SCALE
    headers = ["engine", "txn/s", "NVM loads", "NVM stores",
               "footprint (KB)"]
    specs = [ExperimentSpec.ycsb(engine, mixture, skew,
                                 num_tuples=scale.ycsb_tuples,
                                 num_txns=scale.ycsb_txns,
                                 engine_config=scale.engine_config(),
                                 cache_bytes=scale.cache_bytes)
             for engine in ENGINE_NAMES.ALL]
    rows = []
    for spec, result in zip(specs, results_or_raise(
            run_sweep(specs, jobs=jobs))):
        rows.append([spec.engine, result.throughput, result.nvm_loads,
                     result.nvm_stores,
                     sum(result.storage_breakdown.values()) / 1024])
    print(format_table(
        headers, rows,
        title=f"YCSB {mixture}/{skew} — engine comparison"))

    by_engine = {row[0]: row for row in rows}
    for traditional, nvm in ENGINE_NAMES.COUNTERPART.items():
        speedup = by_engine[nvm][1] / by_engine[traditional][1]
        print(f"{nvm} vs {traditional}: {speedup:.2f}x throughput")


if __name__ == "__main__":
    main()
