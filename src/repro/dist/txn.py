"""Distributed transaction description: one branch per partition.

A cross-partition transaction is a *home* branch plus one or more
*remote* branches, each a stored procedure bound to the partition it
must run on. Both execution paths —
:meth:`repro.core.database.Database.execute_distributed` (in-process)
and :class:`repro.dist.coordinator.ShardedDatabase` (one executor
process per partition) — consume the same description and run the same
two-phase commit over it (:mod:`repro.dist.twopc`).

Branch procedures must be module-level callables: the sharded tier
pickles them across the executor pipes, exactly like sweep points and
workload procedures elsewhere in the harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Sequence, Tuple

from ..errors import ConfigError

__all__ = ["Branch", "DistributedTransaction"]


@dataclass(frozen=True)
class Branch:
    """One partition's slice of a distributed transaction."""

    partition: int
    procedure: Callable[..., Any]
    args: Tuple[Any, ...] = field(default=())


class DistributedTransaction:
    """A home branch plus remote branches on distinct partitions.

    The branch order is canonical: home first, then remotes sorted by
    partition id. Prepare and finish both walk that order, which keeps
    the protocol's simulated-clock accounting deterministic.
    """

    __slots__ = ("home_branch", "remote_branches")

    def __init__(self, home: Branch,
                 remotes: Sequence[Branch] = ()) -> None:
        ordered = tuple(sorted(remotes, key=lambda b: b.partition))
        seen = {home.partition}
        for branch in ordered:
            if branch.partition in seen:
                raise ConfigError(
                    f"distributed transaction has two branches for "
                    f"partition {branch.partition}")
            seen.add(branch.partition)
        self.home_branch = home
        self.remote_branches = ordered

    @property
    def home(self) -> int:
        """Home partition id (owns the commit decision record)."""
        return self.home_branch.partition

    def branches(self) -> Tuple[Branch, ...]:
        """All branches in canonical order (home first)."""
        return (self.home_branch,) + self.remote_branches

    @property
    def participants(self) -> Tuple[int, ...]:
        return tuple(branch.partition for branch in self.branches())

    def __repr__(self) -> str:
        return (f"DistributedTransaction(home={self.home}, "
                f"remotes={[b.partition for b in self.remote_branches]})")
