"""The sharded database facade: one executor process per partition.

:class:`ShardedDatabase` duck-types the parts of
:class:`~repro.core.database.Database` the harness and workloads use —
``create_table`` / ``execute`` / ``insert`` / ``get`` / ``flush`` /
``crash`` / ``recover`` / the counter properties — but routes every
operation to a long-lived executor process that owns the target
partition (:mod:`repro.dist.executor`). Transactions against different
partitions therefore run on different cores *concurrently*; this is
what turns the testbed's simulated one-worker-per-partition model into
real wall-clock scale-out.

Two mechanisms keep sharded runs deterministic in simulated time:

- Fire-and-forget pipelining. Single-partition work (``execute``,
  ``insert``, ``flush``, ...) is buffered per executor and shipped in
  ``TAG_CMDS`` batches with no reply; each executor applies its stream
  in order, so its partition's simulation is identical to the serial
  run's. Synchronous reads flush every buffer first.
- Deterministic merge. Aggregates mirror the in-process database
  exactly: wall-clock is the max across partition clocks, counters
  sum in partition order, and the observability hooks
  (``obs_attach`` .. ``obs_detach``) merge per-executor sessions in
  partition order so exports are byte-identical to a serial run on
  single-partition-only workloads (see ``docs/scaleout.md``).

Cross-partition transactions run two-phase commit
(:mod:`repro.dist.twopc`): the coordinator process drives
``branch_prepare`` / ``log_decision`` / ``branch_finish`` as
synchronous commands against the participant executors, and
:meth:`ShardedDatabase.recover` resolves in-doubt branches against the
home partitions' decision logs after a crash.

Deliberate restrictions (documented in ``docs/scaleout.md``): fault
plans cannot be armed across the process boundary, live telemetry
heartbeats are coordinator-side only, and ``execute`` is
fire-and-forget (it returns ``None``; use ``get``/``scan`` for reads).
"""

from __future__ import annotations

import itertools
import multiprocessing
from typing import Any, Dict, List, Optional, Tuple

from ..config import EngineConfig, LatencyProfile, PlatformConfig
from ..core.database import stable_partition_hash
from ..core.schema import Schema
from ..engines.base import ENGINE_NAMES
from ..errors import (ConfigError, DatabaseClosedError, ShardedError,
                      TransactionAborted)
from ..harness import ipc
from ..obs.metrics import Histogram
from .executor import executor_main
from .txn import DistributedTransaction

__all__ = ["ShardedDatabase", "COMMAND_BATCH_SIZE"]

#: Fire-and-forget commands buffered per executor before an implicit
#: flush — large enough to amortize pickling, small enough to keep the
#: executors busy while the coordinator keeps generating work.
COMMAND_BATCH_SIZE = 256


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class _ExecutorHandle:
    """Coordinator-side endpoint of one executor process."""

    __slots__ = ("process", "cmd_send", "reply_recv", "buffer")

    def __init__(self, process, cmd_send, reply_recv) -> None:
        self.process = process
        self.cmd_send = cmd_send
        self.reply_recv = reply_recv
        self.buffer: List[Tuple[str, Tuple[Any, ...]]] = []


class ShardedDatabase:
    """A partitioned database executed by one process per partition."""

    #: Lets harness code branch without importing this module.
    is_sharded = True

    def __init__(self, engine: str = ENGINE_NAMES.NVM_INP, *,
                 partitions: int = 1,
                 latency: Optional[LatencyProfile] = None,
                 platform_config: Optional[PlatformConfig] = None,
                 engine_config: Optional[EngineConfig] = None,
                 seed: int = 0x5EED) -> None:
        if partitions < 1:
            raise ConfigError("need at least one partition")
        base_config = platform_config or PlatformConfig(seed=seed)
        if latency is not None:
            base_config = base_config.with_latency(latency)
        self.engine_name = engine
        self.engine_config = engine_config or EngineConfig()
        self._closed = False
        self._crashed = False
        self._schemas: Dict[str, Schema] = {}
        self._dtxn_ids = itertools.count(1)
        self._obs_identity: Tuple[str, str] = ("", "")
        self._obs_base_now: Optional[float] = None
        self._obs_end_now: Optional[float] = None
        context = _mp_context()
        self._executors: List[_ExecutorHandle] = []
        for pid in range(partitions):
            cmd_recv, cmd_send = context.Pipe(duplex=False)
            reply_recv, reply_send = context.Pipe(duplex=False)
            process = context.Process(
                target=executor_main,
                args=(cmd_recv, reply_send, engine, base_config,
                      self.engine_config, pid, partitions),
                daemon=True, name=f"repro-executor-{pid}")
            process.start()
            # Parent keeps only its ends; the child owns the others.
            cmd_recv.close()
            reply_send.close()
            self._executors.append(
                _ExecutorHandle(process, cmd_send, reply_recv))

    # ------------------------------------------------------------------
    # Pipe plumbing
    # ------------------------------------------------------------------

    def _flush_one(self, handle: _ExecutorHandle) -> None:
        if handle.buffer:
            batch, handle.buffer = handle.buffer, []
            try:
                ipc.send(handle.cmd_send, ipc.TAG_CMDS, batch)
            except (OSError, ValueError, BrokenPipeError) as exc:
                raise ShardedError(
                    f"executor {handle.process.name} is gone "
                    f"({exc})") from exc

    def _flush_all(self) -> None:
        for handle in self._executors:
            self._flush_one(handle)

    def _post(self, pid: int, op: str,
              args: Tuple[Any, ...] = ()) -> None:
        handle = self._executors[pid]
        handle.buffer.append((op, args))
        if len(handle.buffer) >= COMMAND_BATCH_SIZE:
            self._flush_one(handle)

    def _recv_reply(self, pid: int) -> Any:
        handle = self._executors[pid]
        try:
            tag, payload = ipc.recv(handle.reply_recv)
        except (EOFError, OSError) as exc:
            raise ShardedError(
                f"executor {handle.process.name} died before "
                f"replying") from exc
        if tag != ipc.TAG_REPLY:
            raise ShardedError(
                f"executor {handle.process.name} sent unexpected "
                f"{tag!r} message")
        ok, value = payload
        if not ok:
            raise ShardedError(
                f"executor {handle.process.name} failed:\n{value}")
        return value

    def _sync(self, pid: int, op: str,
              args: Tuple[Any, ...] = ()) -> Any:
        """One synchronous command: drain every buffer (command order
        is observable across partitions through 2PC), then wait for
        the single reply."""
        self._executors[pid].buffer.append((op, args))
        self._flush_all()
        return self._recv_reply(pid)

    def _sync_all(self, op: str,
                  args: Tuple[Any, ...] = ()) -> List[Any]:
        """Broadcast a synchronous command; replies are collected after
        every executor has been sent the command, so they all work
        concurrently."""
        for handle in self._executors:
            handle.buffer.append((op, args))
        self._flush_all()
        return [self._recv_reply(pid)
                for pid in range(len(self._executors))]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def close(self) -> None:
        """Shut down every executor process. Idempotent."""
        if self._closed:
            return
        self._closed = True
        for pid, handle in enumerate(self._executors):
            try:
                handle.buffer.append(("shutdown", ()))
                self._flush_one(handle)
                self._recv_reply(pid)
            except ShardedError:
                pass
        for handle in self._executors:
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=5.0)
            handle.cmd_send.close()
            handle.reply_recv.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def crashed(self) -> bool:
        return self._crashed

    def __enter__(self) -> "ShardedDatabase":
        if self._closed:
            raise DatabaseClosedError("database already closed")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def _require_alive(self) -> None:
        if self._closed:
            raise DatabaseClosedError(
                "sharded database closed; create a new one to continue")

    # ------------------------------------------------------------------
    # Schema & routing
    # ------------------------------------------------------------------

    def create_table(self, schema: Schema) -> None:
        self._require_alive()
        self._schemas[schema.table] = schema
        for pid in range(len(self._executors)):
            self._post(pid, "create_table", (schema,))

    def route(self, key: Any) -> int:
        return stable_partition_hash(key) % len(self._executors)

    def _schema(self, table: str) -> Schema:
        try:
            return self._schemas[table]
        except KeyError:
            raise ShardedError(f"no such table {table!r}") from None

    # ------------------------------------------------------------------
    # Transaction execution
    # ------------------------------------------------------------------

    def execute(self, procedure, *args: Any,
                partition: int = 0) -> None:
        """Queue a single-partition transaction (fire-and-forget:
        returns ``None``; failures surface at the next synchronous
        command). ``procedure`` must be picklable (module-level)."""
        self._require_alive()
        self._post(partition, "execute", (procedure, args))

    def insert(self, table: str, values: Dict[str, Any],
               partition: Optional[int] = None) -> None:
        pid = self.route(self._schema(table).key_of(values)) \
            if partition is None else partition
        self._require_alive()
        self._post(pid, "insert", (table, values))

    def update(self, table: str, key: Any, changes: Dict[str, Any],
               partition: Optional[int] = None) -> None:
        pid = self.route(key) if partition is None else partition
        self._require_alive()
        self._post(pid, "update", (table, key, changes))

    def delete(self, table: str, key: Any,
               partition: Optional[int] = None) -> None:
        pid = self.route(key) if partition is None else partition
        self._require_alive()
        self._post(pid, "delete", (table, key))

    def get(self, table: str, key: Any,
            partition: Optional[int] = None
            ) -> Optional[Dict[str, Any]]:
        pid = self.route(key) if partition is None else partition
        self._require_alive()
        return self._sync(pid, "get", (table, key))

    def scan(self, table: str, lo: Any = None, hi: Any = None
             ) -> List[Tuple[Any, Dict[str, Any]]]:
        self._require_alive()
        rows: List[Tuple[Any, Dict[str, Any]]] = []
        for chunk in self._sync_all("scan", (table, lo, hi)):
            rows.extend(chunk)
        rows.sort(key=lambda pair: pair[0])
        return rows

    def flush(self) -> None:
        self._require_alive()
        for pid in range(len(self._executors)):
            self._post(pid, "flush")

    def settle(self) -> None:
        self._require_alive()
        for pid in range(len(self._executors)):
            self._post(pid, "settle")

    def checkpoint(self) -> None:
        self._require_alive()
        for pid in range(len(self._executors)):
            self._post(pid, "checkpoint")

    def set_checkpoint_interval(self, txns: int) -> None:
        for pid in range(len(self._executors)):
            self._post(pid, "set_checkpoint_interval", (txns,))

    def barrier(self) -> None:
        """Wait until every executor has drained its command stream."""
        self._sync_all("barrier")

    # ------------------------------------------------------------------
    # Distributed transactions (2PC)
    # ------------------------------------------------------------------

    def execute_distributed(self, dtxn: DistributedTransaction) -> Any:
        """Run a cross-partition transaction with two-phase commit.
        Synchronous: the participants stall until the decision, exactly
        the synchronization-vs-persistence cost 2PC implies."""
        self._require_alive()
        dtxn_id = next(self._dtxn_ids)
        prepared: List[int] = []
        home_result = None
        for branch in dtxn.branches():
            vote, result = self._sync(
                branch.partition, "branch_prepare",
                (dtxn_id, dtxn.home, branch.procedure, branch.args))
            if not vote:
                for pid in prepared:
                    self._sync(pid, "branch_finish", (dtxn_id, False))
                raise TransactionAborted(
                    f"distributed transaction {dtxn_id}: partition "
                    f"{branch.partition} voted no")
            prepared.append(branch.partition)
            if branch.partition == dtxn.home:
                home_result = result
        self._sync(dtxn.home, "log_decision",
                   (dtxn_id, dtxn.participants))
        for pid in prepared:
            self._sync(pid, "branch_finish", (dtxn_id, True))
        return home_result

    # ------------------------------------------------------------------
    # Restart events
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Simulated power failure on every executor (their volatile
        state — including prepared 2PC branches — is wiped)."""
        if self._closed:
            raise DatabaseClosedError("cannot crash a closed database")
        self._sync_all("crash")
        self._crashed = True

    def recover(self) -> float:
        """Engine recovery on every executor, then presumed-abort
        resolution of in-doubt 2PC branches against the home
        partitions' decision logs. Returns simulated seconds (slowest
        partition)."""
        if self._closed:
            raise DatabaseClosedError("cannot recover a closed database")
        if not self._crashed:
            return 0.0
        latency = max(self._sync_all("recover"), default=0.0)
        # Presumed abort: collect in-doubt branches, ask each home for
        # its durable decisions, push the verdicts back out.
        in_doubt: List[List[Tuple[int, int]]] = \
            self._sync_all("twopc_scan")
        by_home: Dict[int, List[int]] = {}
        for pending in in_doubt:
            for dtxn_id, home in pending:
                by_home.setdefault(home, []).append(dtxn_id)
        decided: Dict[int, bool] = {}
        for home in sorted(by_home):
            ids = sorted(set(by_home[home]))
            committed = set(self._sync(home, "twopc_decisions", (ids,)))
            for dtxn_id in ids:
                decided[dtxn_id] = dtxn_id in committed
        if decided:
            resolve = self._sync_all("twopc_resolve", (decided,))
            latency = max(latency, max(resolve, default=0.0))
        self._crashed = False
        return latency

    # ------------------------------------------------------------------
    # Fault injection (unsupported across the process boundary)
    # ------------------------------------------------------------------

    def arm_faults(self, plan=None) -> None:
        raise ShardedError(
            "fault plans cannot be armed on a sharded database; run "
            "the 2PC crash campaign on an in-process database "
            "(see docs/scaleout.md)")

    def disarm_faults(self) -> None:
        raise ShardedError(
            "fault plans cannot be armed on a sharded database")

    # ------------------------------------------------------------------
    # Metrics (deterministic merge of per-executor snapshots)
    # ------------------------------------------------------------------

    def _snapshots(self) -> List[Dict[str, Any]]:
        self._require_alive()
        return self._sync_all("snapshot")

    @property
    def now_ns(self) -> float:
        return max(snap["now_ns"] for snap in self._snapshots())

    @property
    def committed_txns(self) -> int:
        return sum(snap["committed"] for snap in self._snapshots())

    @property
    def aborted_txns(self) -> int:
        return sum(snap["aborted"] for snap in self._snapshots())

    def nvm_counters(self) -> Dict[str, int]:
        loads = stores = 0
        for snap in self._snapshots():
            loads += snap["loads"]
            stores += snap["stores"]
        return {"loads": loads, "stores": stores}

    def storage_breakdown(self) -> Dict[str, int]:
        totals: Dict[str, int] = {}
        for snap in self._snapshots():
            for component, size in snap["storage"].items():
                totals[component] = totals.get(component, 0) + size
        return totals

    def category_ns(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for snap in self._snapshots():
            for name, value in snap["category_ns"].items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def time_breakdown(self) -> Dict[str, float]:
        totals = self.category_ns()
        grand_total = sum(totals.values())
        if grand_total == 0:
            return totals
        return {name: value / grand_total
                for name, value in totals.items()}

    # ------------------------------------------------------------------
    # Observability delegation (see ObservabilitySession)
    # ------------------------------------------------------------------

    def obs_attach(self, session, engine: str, workload: str) -> None:
        """Each executor runs its own per-partition session; the
        coordinator merges them back at detach in partition order."""
        self._obs_identity = (engine, workload)
        self._obs_base_now = None
        self._obs_end_now = None
        for pid in range(len(self._executors)):
            self._post(pid, "obs_attach",
                       (engine, workload, session.options))

    def obs_begin_run(self, session) -> None:
        # Snapshot the merged clock at the window start so the
        # run.sim_seconds gauge can be recomputed after the merge
        # (gauges are last-wins, not max).
        self._obs_base_now = self.now_ns
        for pid in range(len(self._executors)):
            self._post(pid, "obs_begin_run")

    def obs_end_run(self, session) -> Dict[str, Any]:
        replies = self._sync_all("obs_end_run")
        merged: Optional[Histogram] = None
        timeseries: List[Dict[str, float]] = []
        end_now = 0.0
        for reply in replies:
            histogram = reply["histogram"]
            if merged is None:
                merged = histogram
            else:
                merged.merge(histogram)
            timeseries.extend(reply["timeseries"])
            end_now = max(end_now, reply["now_ns"])
        self._obs_end_now = end_now
        assert merged is not None
        return {
            "latency_percentiles": merged.percentiles(),
            "timeseries": timeseries,
        }

    def obs_detach(self, session) -> None:
        for sub in self._sync_all("obs_detach"):
            session.records.extend(sub.records)
            session.registry.merge_from(sub.registry)
        if self._obs_base_now is not None \
                and self._obs_end_now is not None:
            engine, workload = self._obs_identity
            session.registry.gauge(
                "run.sim_seconds",
                help="Simulated duration of the run",
                engine=engine, workload=workload,
            ).set((self._obs_end_now - self._obs_base_now) / 1e9)

    def __repr__(self) -> str:
        return (f"ShardedDatabase(engine={self.engine_name!r}, "
                f"partitions={len(self._executors)})")
