"""Crash-recovery campaign for the two-phase commit protocol.

The storage campaign (:mod:`repro.fault.campaign`) proves each engine
survives a crash at every in-operation instant; this module proves the
*distributed* commit path does too. A scripted workload of pair-writes
— each transaction upserts the same key on **two** partitions through
:func:`~repro.dist.twopc.execute_two_phase` — runs against an
in-process two-partition database, crashing at every sampled hit of
the three 2PC fault points:

* ``twopc.prepare.after`` — a participant voted yes and made its
  prepare record durable, but the protocol had not yet decided;
* ``twopc.decide.before`` — all participants prepared, the decision
  was *about* to become durable (presumed abort must roll back);
* ``twopc.decide.after`` — the commit decision is durable but no
  participant has applied it (recovery must finish the commit).

After every crash the database recovers (engine recovery plus the
coordinator's in-doubt resolution hook) and a tracking oracle checks
the distributed invariants:

* every **acknowledged** transaction's write survives on *both*
  partitions;
* the interrupted transaction is **atomic across partitions** — its
  write is either applied on both or on neither (a lost commit shows
  up as "applied on one", a phantom as "applied but never decided");
* no keys outside the script appear.

The campaign is deliberately in-process (no executor processes): the
protocol code is identical on both tiers, and in-process crashes are
deterministic and fast enough to sweep every coordinate serially.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import CacheConfig, EngineConfig, PlatformConfig
from ..core.database import Database
from ..core.schema import Column, ColumnType, Schema
from ..errors import SimulatedCrash, TransactionAborted
from ..fault.injector import FaultPlan
from .twopc import FP_DECIDE_AFTER, FP_DECIDE_BEFORE, FP_PREPARE_AFTER
from .txn import Branch, DistributedTransaction

__all__ = ["TwoPCCampaignResult", "TwoPCCampaignReport",
           "run_twopc_campaign", "build_pair_script", "TWOPC_POINTS"]

TABLE = "twopc_pairs"

#: Keys the pair-writes draw from — small enough that most transactions
#: update a key with history, exercising redo replay over both the
#: insert and the update record shapes.
KEY_SPACE = 6

#: The fault points this campaign sweeps.
TWOPC_POINTS = (FP_PREPARE_AFTER, FP_DECIDE_BEFORE, FP_DECIDE_AFTER)

#: Recovery attempts before the oracle declares the database stuck.
MAX_NESTED_RECOVERIES = 10


def _schema() -> Schema:
    return Schema.build(
        TABLE,
        [Column("id", ColumnType.INT),
         Column("v", ColumnType.STRING, capacity=16)],
        primary_key=["id"])


def _make_database(engine: str, seed: int) -> Database:
    """Same harsh configuration as the storage campaign: group commit
    of one (acknowledged == durable, the oracle's invariant) and no
    lucky cache-line survival."""
    platform_config = PlatformConfig(
        seed=seed,
        cache=CacheConfig(crash_eviction_probability=0.0),
        # The hybrid engine refuses to run without a DRAM tier.
        dram_capacity_bytes=(32 * 1024 * 1024
                             if engine.startswith("hybrid") else 0))
    engine_config = EngineConfig(
        group_commit_size=1,
        checkpoint_interval_txns=12,
        memtable_threshold_bytes=512,
        lsm_max_runs_per_level=2,
        btree_node_size=256,
        cow_btree_node_size=512,
        nvm_cow_node_size=512)
    db = Database(engine=engine, partitions=2,
                  platform_config=platform_config,
                  engine_config=engine_config)
    db.create_table(_schema())
    return db


def pair_write(ctx, key: int, value: str):
    """The branch body both participants run: upsert ``key``."""
    if ctx.get(TABLE, key) is None:
        ctx.insert(TABLE, {"id": key, "v": value})
    else:
        ctx.update(TABLE, key, {"v": value})
    return value


def build_pair_script(seed: int, ops: int
                      ) -> List[Tuple[int, str, int]]:
    """The deterministic workload: ``(key, value, home_partition)``
    triples. Every value is unique so the oracle can tell which version
    of a key survived; the home alternates so decision records land on
    both partitions."""
    rng = random.Random(f"twopc-crashtest-{seed}")
    return [(rng.randrange(KEY_SPACE), f"v{i:04d}", i % 2)
            for i in range(ops)]


def _pair_dtxn(key: int, value: str, home: int) -> DistributedTransaction:
    remote = 1 - home
    return DistributedTransaction(
        Branch(home, pair_write, (key, value)),
        (Branch(remote, pair_write, (key, value)),))


@dataclass
class TwoPCCampaignResult:
    """What one campaign run (counting or coordinate) observed."""

    engine: str
    seed: int
    triggers: Tuple[Tuple[str, int], ...]
    crashes: int = 0
    recoveries: int = 0
    nested_crashes: int = 0
    txns_acked: int = 0
    #: Fault-point name -> max per-partition hit count (a trigger can
    #: only fire against one injector's counter, so the per-partition
    #: maximum — not the cross-partition sum — bounds plannable hits).
    hits: Dict[str, int] = field(default_factory=dict)
    fired: Tuple[Tuple[str, int], ...] = ()
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "engine": self.engine,
            "seed": self.seed,
            "triggers": [list(pair) for pair in self.triggers],
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "nested_crashes": self.nested_crashes,
            "txns_acked": self.txns_acked,
            "hits": dict(sorted(self.hits.items())),
            "fired": [list(pair) for pair in self.fired],
            "violations": list(self.violations),
            "ok": self.ok,
        }


@dataclass(frozen=True)
class _TwoPCSpec:
    """One campaign run; empty ``triggers`` means counting mode."""

    engine: str
    seed: int = 7
    ops: int = 48
    triggers: Tuple[Tuple[str, int], ...] = ()

    def slug(self) -> str:
        if not self.triggers:
            return f"twopc-{self.engine}-s{self.seed}-count"
        coordinate = "+".join(f"{point}@{hit}"
                              for point, hit in self.triggers)
        return (f"twopc-{self.engine}-s{self.seed}-"
                f"{coordinate.replace('.', '_')}")

    def execute(self) -> TwoPCCampaignResult:
        result = TwoPCCampaignResult(engine=self.engine, seed=self.seed,
                                     triggers=self.triggers)
        db = _make_database(self.engine, self.seed)
        try:
            self._run_script(db, result)
        finally:
            db.disarm_faults()
            db.close()
        return result

    # ------------------------------------------------------------------
    # Script + oracle
    # ------------------------------------------------------------------

    def _run_script(self, db: Database,
                    result: TwoPCCampaignResult) -> None:
        db.arm_faults(FaultPlan(self.triggers))
        expected: Dict[int, str] = {}
        script = build_pair_script(self.seed, self.ops)
        index = 0
        while index < len(script):
            key, value, home = script[index]
            try:
                db.execute_distributed(_pair_dtxn(key, value, home))
            except SimulatedCrash:
                result.crashes += 1
                self._recover(db, result)
                # The interrupted transaction was never acknowledged,
                # so either outcome is legal — but it must be atomic
                # across BOTH partitions. Read each side to learn
                # which way recovery decided.
                applied = self._pair_state(db, key, value,
                                           expected.get(key),
                                           result, f"op {index}")
                if applied:
                    expected[key] = value
                    index += 1
                self._verify(db, expected, result,
                             f"after crash at op {index}")
                continue
            except TransactionAborted:
                # A yes-vote is unconditional for pair-writes; a veto
                # means a participant saw state the oracle did not.
                result.violations.append(
                    f"op {index}: unexpected abort for key {key}")
                index += 1
                continue
            expected[key] = value
            result.txns_acked += 1
            index += 1
        # Final clean crash + recovery: catches any acked commit whose
        # durability silently depended on volatile state.
        db.crash()
        result.crashes += 1
        self._recover(db, result)
        self._verify(db, expected, result, "final")
        result.hits = {
            point: max(partition.platform.faults.hits.get(point, 0)
                       for partition in db.partitions)
            for point in TWOPC_POINTS
            if any(partition.platform.faults.hits.get(point, 0)
                   for partition in db.partitions)}
        result.fired = tuple(
            (trigger.point, trigger.hit)
            for partition in db.partitions
            for trigger in partition.platform.faults.fired)

    def _recover(self, db: Database,
                 result: TwoPCCampaignResult) -> None:
        for __ in range(MAX_NESTED_RECOVERIES):
            try:
                db.recover()
            except SimulatedCrash:
                result.crashes += 1
                result.nested_crashes += 1
                continue
            result.recoveries += 1
            return
        result.violations.append(
            f"stuck-recovery: not recovered after "
            f"{MAX_NESTED_RECOVERIES} attempts")

    def _pair_state(self, db: Database, key: int, value: str,
                    previous: Optional[str],
                    result: TwoPCCampaignResult, when: str) -> bool:
        """Did the interrupted pair-write commit? Violations if the two
        partitions disagree (a partial commit) or a side shows a value
        that is neither the new nor the last-acknowledged one."""
        sides = []
        for pid in (0, 1):
            row = db.get(TABLE, key, partition=pid)
            sides.append(None if row is None else row["v"])
        states = []
        for pid, side in enumerate(sides):
            if side == value:
                states.append("new")
            elif side == previous:
                states.append("old")
            else:
                states.append("corrupt")
                result.violations.append(
                    f"{when}: partition {pid} key {key} is {side!r}, "
                    f"expected {value!r} or {previous!r}")
        if states[0] != states[1] and "corrupt" not in states:
            result.violations.append(
                f"{when}: partial commit for key {key}: "
                f"partition 0 is {states[0]}, partition 1 is "
                f"{states[1]}")
        return states[0] == "new" and states[1] == "new"

    def _verify(self, db: Database, expected: Dict[int, str],
                result: TwoPCCampaignResult, when: str) -> None:
        """The oracle: both partitions must hold exactly the expected
        (acknowledged) keys at their latest values."""
        for pid in (0, 1):
            rows = {key: values["v"]
                    for key, values in db.partitions[pid].execute(
                        lambda ctx: list(ctx.scan(TABLE)))}
            for key, value in sorted(expected.items()):
                if key not in rows:
                    result.violations.append(
                        f"{when}: partition {pid} lost committed key "
                        f"{key} (expected {value!r})")
                elif rows[key] != value:
                    result.violations.append(
                        f"{when}: partition {pid} key {key} is "
                        f"{rows[key]!r}, expected {value!r}")
            for key in sorted(rows):
                if key not in expected:
                    result.violations.append(
                        f"{when}: partition {pid} phantom key {key} = "
                        f"{rows[key]!r}")


# ----------------------------------------------------------------------
# Campaign orchestration
# ----------------------------------------------------------------------

@dataclass
class TwoPCCampaignReport:
    """Everything a 2PC crash campaign learned."""

    engines: Tuple[str, ...]
    seed: int
    counting: Dict[str, TwoPCCampaignResult]
    results: List[TwoPCCampaignResult]
    #: engine -> 2PC points the counting run never reached.
    uncovered: Dict[str, List[str]]

    @property
    def violations(self) -> List[str]:
        found: List[str] = []
        for engine, counting in sorted(self.counting.items()):
            found.extend(f"{engine}[counting]: {violation}"
                         for violation in counting.violations)
        for result in self.results:
            label = "+".join(f"{point}:{hit}"
                             for point, hit in result.triggers)
            found.extend(f"{result.engine}[{label}]: {violation}"
                         for violation in result.violations)
        return found

    @property
    def ok(self) -> bool:
        return not self.violations and not any(self.uncovered.values())

    def point_rows(self) -> List[List[str]]:
        """Per-(engine, point) aggregation for the CLI table."""
        stats: Dict[Tuple[str, str], Dict[str, int]] = {}
        for result in self.results:
            target = result.triggers[-1][0] if result.triggers else "-"
            entry = stats.setdefault((result.engine, target), {
                "coords": 0, "crashes": 0, "violations": 0})
            entry["coords"] += 1
            entry["crashes"] += result.crashes
            entry["violations"] += len(result.violations)
        rows = []
        for (engine, point), entry in sorted(stats.items()):
            status = "VIOLATED" if entry["violations"] else "ok"
            rows.append([engine, point, str(entry["coords"]),
                         str(entry["crashes"]),
                         str(entry["violations"]), status])
        for engine in self.engines:
            for point in self.uncovered.get(engine, []):
                rows.append([engine, point, "0", "0", "0", "UNCOVERED"])
        return rows

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "repro-twopc-crashtest-report",
            "engines": list(self.engines),
            "seed": self.seed,
            "ok": self.ok,
            "uncovered": {engine: list(points) for engine, points
                          in sorted(self.uncovered.items())},
            "violations": self.violations,
            "counting": {engine: counting.to_dict()
                         for engine, counting
                         in sorted(self.counting.items())},
            "coordinates": [result.to_dict()
                            for result in self.results],
        }


def plan_coordinates(hits: Dict[str, int], max_hits_per_point: int = 3
                     ) -> List[Tuple[Tuple[str, int], ...]]:
    """Sampled ``(point, hit)`` coordinates: for every reached 2PC
    point, up to ``max_hits_per_point`` hits (always the first and the
    last, plus the middle)."""
    coordinates: List[Tuple[Tuple[str, int], ...]] = []
    for point in TWOPC_POINTS:
        total = hits.get(point, 0)
        if total <= 0:
            continue
        sampled = {1, total, (1 + total) // 2}
        for hit in sorted(sampled)[:max_hits_per_point]:
            coordinates.append(((point, hit),))
    return coordinates


def run_twopc_campaign(engines: Sequence[str], seed: int = 7,
                       ops: int = 48, max_hits_per_point: int = 3
                       ) -> TwoPCCampaignReport:
    """The full 2PC campaign: count fault-point hits per engine, then
    crash at every sampled ``(point, hit)`` coordinate and verify the
    distributed-commit oracle after recovery."""
    counting: Dict[str, TwoPCCampaignResult] = {}
    uncovered: Dict[str, List[str]] = {}
    results: List[TwoPCCampaignResult] = []
    for engine in engines:
        count_result = _TwoPCSpec(engine=engine, seed=seed,
                                  ops=ops).execute()
        counting[engine] = count_result
        uncovered[engine] = [
            point for point in TWOPC_POINTS
            if count_result.hits.get(point, 0) <= 0]
        for triggers in plan_coordinates(count_result.hits,
                                         max_hits_per_point):
            results.append(
                _TwoPCSpec(engine=engine, seed=seed, ops=ops,
                           triggers=triggers).execute())
    return TwoPCCampaignReport(engines=tuple(engines), seed=seed,
                               counting=counting, results=results,
                               uncovered=uncovered)
