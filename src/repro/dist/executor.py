"""Per-partition executor process for the sharded execution tier.

Each executor owns exactly one partition: a single-partition
:class:`~repro.core.database.Database` built with
``first_partition=<global partition id>``, which makes its platform
seed — and therefore every simulated clock tick, cache eviction, and
NVM counter — bit-identical to the corresponding partition of an
in-process multi-partition database. The coordinator
(:mod:`repro.dist.coordinator`) ships commands over a
``multiprocessing`` pipe using the tagged-pipe protocol from
:mod:`repro.harness.ipc`:

- ``TAG_CMDS`` carries a batch ``[(op, args), ...]``. Fire-and-forget
  operations (``execute``, ``insert``, ``flush``, ...) produce no
  reply; their first failure is stashed and surfaced at the next
  synchronous command, mirroring how a real shared-nothing node would
  fail the session rather than the wire.
- Synchronous operations (``get``, ``snapshot``, the 2PC branch verbs,
  ...) produce exactly one ``TAG_REPLY`` message ``(ok, payload)``
  where ``payload`` is a formatted traceback when ``ok`` is false.

The executor keeps prepared-but-undecided 2PC branches open in an
in-memory table keyed by distributed-transaction id; a simulated crash
wipes that table exactly like it wipes any other volatile state.
"""

from __future__ import annotations

import traceback
from typing import Any, Dict, List, Optional, Tuple

from ..core.database import Database
from ..errors import ShardedError
from ..harness import ipc
from ..obs.session import ObservabilitySession
from . import twopc

__all__ = ["executor_main", "SYNC_OPS"]

#: Operations that produce exactly one TAG_REPLY message.
SYNC_OPS = frozenset({
    "barrier", "get", "scan", "snapshot", "crash", "recover",
    "twopc_scan", "twopc_decisions", "twopc_resolve",
    "branch_prepare", "log_decision", "branch_finish",
    "obs_end_run", "obs_detach", "shutdown",
})


def _format_error(exc: BaseException) -> str:
    return "".join(traceback.format_exception(
        type(exc), exc, exc.__traceback__)).rstrip()


class _ExecutorState:
    """Everything one executor process owns."""

    def __init__(self, engine: str, platform_config, engine_config,
                 partition_id: int, total_partitions: int) -> None:
        self.db = Database(engine, partitions=1,
                           platform_config=platform_config,
                           engine_config=engine_config,
                           first_partition=partition_id)
        self.partition = self.db.partitions[0]
        self.partition_id = partition_id
        self.total_partitions = total_partitions
        self.obs: Optional[ObservabilitySession] = None
        #: Open prepared 2PC branches: dtxn_id -> TransactionContext.
        self.contexts: Dict[int, Any] = {}

    # -- fire-and-forget ------------------------------------------------

    def op_create_table(self, schema) -> None:
        self.db.create_table(schema)

    def op_execute(self, procedure, args: Tuple[Any, ...]) -> None:
        self.db.execute(procedure, *args, partition=0)

    def op_insert(self, table: str, values: Dict[str, Any]) -> None:
        self.db.insert(table, values, partition=0)

    def op_update(self, table: str, key: Any,
                  changes: Dict[str, Any]) -> None:
        self.db.update(table, key, changes, partition=0)

    def op_delete(self, table: str, key: Any) -> None:
        self.db.delete(table, key, partition=0)

    def op_flush(self) -> None:
        self.db.flush()

    def op_settle(self) -> None:
        self.db.settle()

    def op_checkpoint(self) -> None:
        self.db.checkpoint()

    def op_set_checkpoint_interval(self, txns: int) -> None:
        self.db.set_checkpoint_interval(txns)

    def op_obs_attach(self, engine: str, workload: str,
                      options) -> None:
        self.obs = ObservabilitySession(options)
        self.obs.attach(self.db, engine, workload)

    def op_obs_begin_run(self) -> None:
        assert self.obs is not None
        self.obs.begin_run(self.db)

    # -- synchronous ----------------------------------------------------

    def op_barrier(self) -> bool:
        return True

    def op_get(self, table: str, key: Any) -> Optional[Dict[str, Any]]:
        return self.db.get(table, key, partition=0)

    def op_scan(self, table: str, lo: Any, hi: Any):
        return self.db.scan(table, lo=lo, hi=hi)

    def op_snapshot(self) -> Dict[str, Any]:
        counters = self.db.nvm_counters()
        return {
            "now_ns": self.db.now_ns,
            "committed": self.db.committed_txns,
            "aborted": self.db.aborted_txns,
            "loads": counters["loads"],
            "stores": counters["stores"],
            "storage": self.db.storage_breakdown(),
            "category_ns": self.db.category_ns(),
        }

    def op_crash(self) -> bool:
        # Volatile protocol state dies with the power: any prepared
        # branch becomes in-doubt and waits for twopc_resolve.
        self.contexts.clear()
        self.db.crash()
        return True

    def op_recover(self) -> float:
        # Engine-level recovery only; the coordinator drives 2PC
        # in-doubt resolution explicitly across executors afterwards.
        return self.db.recover()

    def op_twopc_scan(self) -> List[Tuple[int, int]]:
        return [(dtxn_id, home) for dtxn_id, home, __
                in twopc.pending_prepares(self.partition)]

    def op_twopc_decisions(self, dtxn_ids) -> List[int]:
        return sorted(twopc.committed_decisions(self.partition,
                                                dtxn_ids))

    def op_twopc_resolve(self, decisions: Dict[int, bool]) -> float:
        start_ns = self.db.now_ns
        for dtxn_id, __, redo in twopc.pending_prepares(self.partition):
            twopc.resolve_prepared(self.partition, dtxn_id,
                                   decisions.get(dtxn_id, False), redo)
        return (self.db.now_ns - start_ns) / 1e9

    def op_branch_prepare(self, dtxn_id: int, home: int, procedure,
                          args: Tuple[Any, ...]) -> Tuple[bool, Any]:
        vote, result, context = twopc.branch_prepare(
            self.partition, dtxn_id, home, procedure, *args)
        if vote:
            self.contexts[dtxn_id] = context
        return vote, result

    def op_log_decision(self, dtxn_id: int, participants) -> bool:
        twopc.log_decision(self.partition, dtxn_id, participants)
        return True

    def op_branch_finish(self, dtxn_id: int, commit: bool) -> bool:
        try:
            context = self.contexts.pop(dtxn_id)
        except KeyError:
            raise ShardedError(
                f"no prepared branch for distributed transaction "
                f"{dtxn_id} on partition {self.partition_id}") from None
        twopc.branch_finish(self.partition, context, dtxn_id, commit)
        return True

    def op_obs_end_run(self) -> Dict[str, Any]:
        assert self.obs is not None
        stats = self.obs.end_run(self.db)
        timeseries = stats["timeseries"]
        if self.total_partitions > 1:
            timeseries = [{"partition": self.partition_id, **sample}
                          for sample in timeseries]
        histogram = self.obs.registry.histogram(
            "txn.latency_ns", engine=self.obs._engine,
            workload=self.obs._workload)
        return {"histogram": histogram, "timeseries": timeseries,
                "now_ns": self.db.now_ns}

    def op_shutdown(self) -> bool:
        self.db.close()
        return True

    def op_obs_detach(self) -> ObservabilitySession:
        assert self.obs is not None
        session = self.obs
        session.detach(self.db)
        self.obs = None
        return session


def executor_main(cmd_conn, reply_conn, engine: str, platform_config,
                  engine_config, partition_id: int,
                  total_partitions: int) -> None:
    """Executor process entry point: serve command batches until a
    ``shutdown`` command or a closed pipe."""
    state = _ExecutorState(engine, platform_config, engine_config,
                           partition_id, total_partitions)
    pending_error: Optional[str] = None
    running = True
    while running:
        try:
            tag, batch = ipc.recv(cmd_conn)
        except (EOFError, OSError):
            break
        if tag != ipc.TAG_CMDS:
            continue
        for op, args in batch:
            handler = getattr(state, f"op_{op}", None)
            if op in SYNC_OPS:
                if pending_error is not None:
                    ipc.send(reply_conn, ipc.TAG_REPLY,
                             (False, pending_error))
                    pending_error = None
                elif handler is None:
                    ipc.send(reply_conn, ipc.TAG_REPLY,
                             (False, f"unknown operation {op!r}"))
                else:
                    try:
                        payload = handler(*args)
                    except BaseException as exc:
                        ipc.send(reply_conn, ipc.TAG_REPLY,
                                 (False, _format_error(exc)))
                    else:
                        ipc.send(reply_conn, ipc.TAG_REPLY,
                                 (True, payload))
                if op == "shutdown":
                    running = False
                    break
            elif pending_error is None:
                if handler is None:
                    pending_error = f"unknown operation {op!r}"
                    continue
                try:
                    handler(*args)
                except BaseException as exc:
                    pending_error = _format_error(exc)
    cmd_conn.close()
    reply_conn.close()
