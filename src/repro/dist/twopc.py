"""Two-phase commit with presumed abort over the simulated NVM.

Cross-partition transactions run as one branch per participating
partition. The protocol (one coordinator, the *home* partition doubling
as the decision-record owner) is the classic presumed-abort 2PC:

1. **Prepare** — every branch executes inside an ordinary engine
   transaction that is left *open*, while a :class:`RecordingContext`
   captures the branch's redo operations. The participant then appends
   a durable ``prepare`` record (redo included) to its own
   ``twopc.log`` and votes yes; a branch that aborts votes no and rolls
   back immediately.
2. **Decide** — if every branch voted yes, the home partition appends a
   durable ``commit`` decision to ``twopc.decisions``. No decision is
   logged for aborts: absence of a decision *is* the abort decision
   (presumed abort).
3. **Finish** — every prepared branch commits its open engine
   transaction, forces a durable point
   (:meth:`~repro.engines.base.StorageEngine.flush_commits`), and only
   then appends a ``resolved`` marker to its ``twopc.log``. The marker
   can therefore never be durable before the data it covers.

Recovery (presumed abort): a prepare without a resolved marker is *in
doubt*. The participant asks the home partition's decision log — a
``commit`` decision means the redo operations are reapplied (they are
idempotent: inserts skip-or-update, updates carry absolute values and
apply only if the row exists, deletes apply only if the row exists);
no decision means abort, and since the engine's own recovery already
rolled back the in-flight prepared transaction there is nothing to
undo. Either way the branch then writes its resolved marker.

All records go through the engine platform's NVM filesystem with an
``append`` + ``fsync`` pair, so the existing crash model (un-synced
writes roll back wholesale) guarantees no torn protocol records, and
the static durability analyzer sees the same append-then-fsync
discipline the engines use.

Crash points (armed like any engine fault point, but scoped to the
pseudo-engine ``"2pc"`` so the standard per-engine campaigns ignore
them):

- ``twopc.prepare.after`` — participant crashed after its prepare
  record became durable (vote never reached the coordinator).
- ``twopc.decide.before`` — coordinator crashed after collecting
  unanimous yes votes, before the decision became durable.
- ``twopc.decide.after`` — coordinator crashed after the decision
  became durable, before any participant finished.
"""

from __future__ import annotations

import itertools
import pickle
import struct
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..core.partition import Partition
from ..errors import SimulatedCrash, TransactionAborted
from ..fault.injector import register_fault_point

__all__ = ["LOG_FILE", "DECISIONS_FILE", "RecordingContext",
           "branch_prepare", "log_decision", "branch_finish",
           "replay_redo", "resolve_prepared", "pending_prepares",
           "committed_decisions", "resolve_in_doubt",
           "execute_two_phase",
           "FP_PREPARE_AFTER", "FP_DECIDE_BEFORE", "FP_DECIDE_AFTER"]

#: Per-participant protocol log: ``prepare`` and ``resolved`` records.
LOG_FILE = "twopc.log"
#: Per-home decision log: ``commit`` records (absence = abort).
DECISIONS_FILE = "twopc.decisions"

FP_PREPARE_AFTER = register_fault_point(
    "twopc.prepare.after",
    "2PC participant: prepare record durable, vote not yet delivered",
    engines=("2pc",))
FP_DECIDE_BEFORE = register_fault_point(
    "twopc.decide.before",
    "2PC coordinator: all participants prepared, decision not durable",
    engines=("2pc",))
FP_DECIDE_AFTER = register_fault_point(
    "twopc.decide.after",
    "2PC coordinator: commit decision durable, participants unfinished",
    engines=("2pc",))

_LEN = struct.Struct("<I")


def _append_record(partition: Partition, name: str,
                   record: Tuple[Any, ...]) -> None:
    """Append one length-prefixed pickled record and force it durable."""
    filesystem = partition.platform.filesystem
    file = filesystem.open(name, create=True)
    blob = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
    filesystem.append(file, _LEN.pack(len(blob)) + blob)
    filesystem.fsync(file)


def _read_records(partition: Partition,
                  name: str) -> List[Tuple[Any, ...]]:
    filesystem = partition.platform.filesystem
    if not filesystem.exists(name):
        return []
    data = filesystem.read_all(filesystem.open(name))
    records: List[Tuple[Any, ...]] = []
    offset = 0
    while offset + _LEN.size <= len(data):
        (length,) = _LEN.unpack_from(data, offset)
        offset += _LEN.size
        if offset + length > len(data):
            break  # torn tail: cannot happen post-fsync, be defensive
        records.append(pickle.loads(data[offset:offset + length]))
        offset += length
    return records


class RecordingContext:
    """Transaction-context proxy that captures a branch's redo log.

    Write operations pass through to the real
    :class:`~repro.core.executor.TransactionContext` *and* are recorded
    (with absolute values, exactly as issued) so a prepared branch can
    be replayed idempotently after a crash wiped its open transaction.
    """

    __slots__ = ("_inner", "redo")

    def __init__(self, inner: Any) -> None:
        self._inner = inner
        self.redo: List[Tuple[Any, ...]] = []

    @property
    def txn(self) -> Any:
        return self._inner.txn

    def insert(self, table: str, values: Dict[str, Any]) -> None:
        self._inner.insert(table, values)
        self.redo.append(("insert", table, dict(values)))

    def update(self, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        self._inner.update(table, key, changes)
        self.redo.append(("update", table, key, dict(changes)))

    def delete(self, table: str, key: Any) -> None:
        self._inner.delete(table, key)
        self.redo.append(("delete", table, key))

    def get(self, table: str, key: Any) -> Optional[Dict[str, Any]]:
        return self._inner.get(table, key)

    def get_secondary(self, table: str, index_name: str,
                      key: Any) -> List[Any]:
        return self._inner.get_secondary(table, index_name, key)

    def scan(self, table: str, lo: Any = None, hi: Any = None):
        return self._inner.scan(table, lo=lo, hi=hi)

    def abort(self, reason: str = "aborted by procedure") -> None:
        self._inner.abort(reason)


# ----------------------------------------------------------------------
# Branch primitives (shared by the in-process driver below and by the
# sharded tier's executor processes, which invoke them one pipe command
# at a time)
# ----------------------------------------------------------------------

def branch_prepare(partition: Partition, dtxn_id: int, home: int,
                   procedure: Any, *args: Any
                   ) -> Tuple[bool, Any, Optional[Any]]:
    """Phase 1 on one participant.

    Runs ``procedure`` in an engine transaction that stays open, makes
    the prepare record (with the captured redo) durable, and returns
    ``(vote, result, context)``. A no vote (``TransactionAborted``)
    rolls the branch back on the spot; any other exception aborts and
    re-raises.
    """
    context = partition.begin()
    recording = RecordingContext(context)
    try:
        result = procedure(recording, *args)
    except SimulatedCrash:
        raise
    except TransactionAborted:
        partition.abort(context)
        return False, None, None
    except Exception:
        partition.abort(context)
        raise
    _append_record(partition, LOG_FILE,
                   ("prepare", dtxn_id, home, recording.redo))
    partition.platform.faults.fire(FP_PREPARE_AFTER)
    return True, result, context


def log_decision(partition: Partition, dtxn_id: int,
                 participants: Iterable[int]) -> None:
    """Make the commit decision durable on the home partition."""
    faults = partition.platform.faults
    faults.fire(FP_DECIDE_BEFORE)
    _append_record(partition, DECISIONS_FILE,
                   ("commit", dtxn_id, tuple(participants)))
    faults.fire(FP_DECIDE_AFTER)


def branch_finish(partition: Partition, context: Any, dtxn_id: int,
                  commit: bool) -> None:
    """Phase 2 on one participant: commit (and force durability) or
    abort the prepared branch, then mark it resolved. The resolved
    marker is appended only after ``flush_commits`` returns, so it is
    never durable before the data it covers."""
    if commit:
        partition.commit(context)
        partition.engine.flush_commits()
    else:
        partition.abort(context)
    _append_record(partition, LOG_FILE, ("resolved", dtxn_id))


# ----------------------------------------------------------------------
# Recovery
# ----------------------------------------------------------------------

def pending_prepares(partition: Partition
                     ) -> List[Tuple[int, int, List[Tuple[Any, ...]]]]:
    """In-doubt branches on this partition:
    ``[(dtxn_id, home_partition, redo), ...]`` sorted by id."""
    prepared: Dict[int, Tuple[int, List[Tuple[Any, ...]]]] = {}
    for record in _read_records(partition, LOG_FILE):
        if record[0] == "prepare":
            __, dtxn_id, home, redo = record
            prepared[dtxn_id] = (home, redo)
        elif record[0] == "resolved":
            prepared.pop(record[1], None)
    return [(dtxn_id, home, redo)
            for dtxn_id, (home, redo) in sorted(prepared.items())]


def committed_decisions(partition: Partition,
                        dtxn_ids: Optional[Iterable[int]] = None
                        ) -> Set[int]:
    """Transaction ids with a durable commit decision on this home
    partition (optionally filtered to ``dtxn_ids``)."""
    decided = {record[1]
               for record in _read_records(partition, DECISIONS_FILE)
               if record[0] == "commit"}
    if dtxn_ids is not None:
        decided &= set(dtxn_ids)
    return decided


def replay_redo(partition: Partition,
                redo: Iterable[Tuple[Any, ...]]) -> None:
    """Reapply a committed branch's redo log in a fresh transaction.

    Idempotent by construction: inserts become updates when the row
    already exists, updates carry absolute values and skip missing
    rows, deletes skip missing rows — so it is safe whether or not the
    original engine commit survived the crash.
    """
    def procedure(ctx: Any) -> None:
        for op in redo:
            kind = op[0]
            if kind == "insert":
                __, table, values = op
                schema = partition.engine._schema(table)
                key = schema.key_of(values)
                if ctx.get(table, key) is None:
                    ctx.insert(table, values)
                else:
                    primary = set(schema.primary_key)
                    changes = {column: value
                               for column, value in values.items()
                               if column not in primary}
                    if changes:
                        ctx.update(table, key, changes)
            elif kind == "update":
                __, table, key, changes = op
                if ctx.get(table, key) is not None:
                    ctx.update(table, key, changes)
            else:
                __, table, key = op
                if ctx.get(table, key) is not None:
                    ctx.delete(table, key)

    partition.execute(procedure)
    partition.engine.flush_commits()


def resolve_prepared(partition: Partition, dtxn_id: int, commit: bool,
                     redo: Iterable[Tuple[Any, ...]]) -> None:
    """Finish one in-doubt branch after a crash (the open engine
    transaction is gone; engine recovery already rolled it back)."""
    if commit:
        replay_redo(partition, redo)
    _append_record(partition, LOG_FILE, ("resolved", dtxn_id))


def resolve_in_doubt(db: Any) -> float:
    """Post-recovery hook for the in-process database: resolve every
    in-doubt prepared branch against the home partitions' decision
    logs. Returns the simulated seconds the resolution took."""
    base = db.partitions[0].partition_id
    start_ns = db.now_ns
    for partition in db.partitions:
        for dtxn_id, home, redo in pending_prepares(partition):
            home_partition = db.partitions[home - base]
            commit = dtxn_id in committed_decisions(
                home_partition, (dtxn_id,))
            resolve_prepared(partition, dtxn_id, commit, redo)
    return (db.now_ns - start_ns) / 1e9


# ----------------------------------------------------------------------
# In-process driver
# ----------------------------------------------------------------------

class _TwoPCState:
    """Per-database coordinator state (lazily attached)."""

    def __init__(self) -> None:
        self.ids = itertools.count(1)


def _coordinator_state(db: Any) -> _TwoPCState:
    state = getattr(db, "_twopc", None)
    if state is None:
        state = _TwoPCState()
        db._twopc = state
        db.register_recovery_hook(resolve_in_doubt)
    return state


def execute_two_phase(db: Any, dtxn: Any) -> Any:
    """Run a :class:`~repro.dist.txn.DistributedTransaction` across an
    in-process database's partitions; returns the home branch's result.
    Raises :class:`~repro.errors.TransactionAborted` if any branch
    votes no (all prepared branches are rolled back first)."""
    state = _coordinator_state(db)
    base = db.partitions[0].partition_id
    dtxn_id = next(state.ids)
    home_partition = db.partitions[dtxn.home - base]
    prepared: List[Tuple[Any, Any]] = []
    home_result = None
    try:
        for branch in dtxn.branches():
            partition = db.partitions[branch.partition - base]
            vote, result, context = branch_prepare(
                partition, dtxn_id, dtxn.home, branch.procedure,
                *branch.args)
            if not vote:
                for ready, open_context in prepared:
                    branch_finish(ready, open_context, dtxn_id,
                                  commit=False)
                raise TransactionAborted(
                    f"distributed transaction {dtxn_id}: partition "
                    f"{branch.partition} voted no")
            prepared.append((partition, context))
            if branch.partition == dtxn.home:
                home_result = result
        log_decision(home_partition, dtxn_id, dtxn.participants)
        for partition, context in prepared:
            branch_finish(partition, context, dtxn_id, commit=True)
    except SimulatedCrash:
        db.crash()
        raise
    return home_result
