"""Shared-nothing scale-out tier: process-per-partition execution.

The paper's H-Store-style testbed pins one partition to each worker
core. Everything in :mod:`repro.core` keeps that model inside a single
Python process — partitions are simulated cores, wall-clock is the max
across their simulated clocks, but only one real core ever runs. This
package turns that simulation into a parallel system:

- :mod:`repro.dist.coordinator` — :class:`ShardedDatabase`, a
  drop-in ``Database`` facade that spawns one long-lived executor
  process per partition and routes transactions over
  ``multiprocessing`` pipes (the tagged-pipe protocol from
  :mod:`repro.harness.ipc`).
- :mod:`repro.dist.executor` — the per-partition worker loop: owns a
  single-partition :class:`~repro.core.database.Database` whose
  simulation state is bit-identical to the corresponding partition of
  an in-process run.
- :mod:`repro.dist.twopc` — two-phase commit with presumed abort for
  cross-partition transactions, shared by the in-process and sharded
  paths (same prepare/decision records, same fault points).
- :mod:`repro.dist.txn` — :class:`DistributedTransaction`, the
  multi-branch transaction description handed to either path.

See ``docs/scaleout.md`` for the architecture, the 2PC state machine,
and the determinism contract.
"""

from .coordinator import ShardedDatabase
from .txn import Branch, DistributedTransaction

__all__ = ["Branch", "DistributedTransaction", "ShardedDatabase"]
