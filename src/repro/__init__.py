"""repro — storage & recovery methods for NVM database systems.

A faithful, simulation-backed reproduction of *"Let's Talk About
Storage & Recovery Methods for Non-Volatile Memory Database Systems"*
(Arulraj, Pavlo, Dulloor — SIGMOD 2015): a modular OLTP DBMS testbed on
an emulated NVM-only storage hierarchy, with three traditional storage
engines (in-place, copy-on-write, log-structured) and their three
NVM-aware variants.

Quick start::

    from repro import Database, Schema, Column, ColumnType

    db = Database(engine="nvm-inp")
    db.create_table(Schema.build(
        "kv", [Column("k", ColumnType.INT),
               Column("v", ColumnType.STRING, capacity=100)],
        primary_key=["k"]))
    db.insert("kv", {"k": 1, "v": "hello"})
    db.crash()
    db.recover()
    assert db.get("kv", 1)["v"] == "hello"
"""

from .config import (CacheConfig, EngineConfig, FilesystemConfig,
                     LatencyProfile, PlatformConfig)
from .core.database import Database
from .core.schema import Column, ColumnType, Schema
from .core.session import Session, SessionState
from .core.transaction import Transaction, TransactionStatus
from .engines import ENGINE_NAMES, StorageEngine, create_engine
from .errors import (CrashedError, DatabaseClosedError,
                     DuplicateKeyError, ReproError, SessionClosedError,
                     SessionError, SessionStateError, TransactionAborted,
                     TupleNotFoundError)
from .nvm.platform import Platform

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "Column",
    "ColumnType",
    "CrashedError",
    "Database",
    "DatabaseClosedError",
    "DuplicateKeyError",
    "ENGINE_NAMES",
    "EngineConfig",
    "FilesystemConfig",
    "LatencyProfile",
    "Platform",
    "PlatformConfig",
    "ReproError",
    "Schema",
    "Session",
    "SessionClosedError",
    "SessionError",
    "SessionState",
    "SessionStateError",
    "StorageEngine",
    "Transaction",
    "TransactionAborted",
    "TransactionStatus",
    "TupleNotFoundError",
    "create_engine",
    "__version__",
]
