"""BENCH_*.json emission, schema validation, and regression gating.

A bench trajectory is a directory of ``BENCH_<timestamp>.json`` files.
Each run is compared against a baseline — by default the newest prior
file in the output directory, falling back to the committed seed
baseline — and two kinds of finding are reported:

* **regression** — a bench's wall-clock ops/s dropped by more than the
  threshold (default 20%). This is what the CI bench-smoke job gates.
* **sim-divergence** — a bench's ``sim_time_ns`` or counter
  fingerprint changed while its configuration (``ops`` + ``extra``)
  did not. The emulator is deterministic, so any such change means the
  cost model itself moved, which a performance PR must never do
  silently.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from .harness import BenchResult

SCHEMA_NAME = "repro-bench/1"

#: Default wall-clock regression threshold (fraction of baseline).
DEFAULT_THRESHOLD = 0.20

_REQUIRED_TOP = ("schema", "created_utc", "quick", "results")
_REQUIRED_RESULT = ("name", "kind", "ops", "wall_s", "ops_per_s",
                    "sim_time_ns", "peak_rss_kb")


def make_payload(results: Sequence[BenchResult],
                 quick: bool) -> Dict[str, object]:
    """JSON-ready payload for a bench run."""
    import platform as host_platform
    return {
        "schema": SCHEMA_NAME,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ",
                                     time.gmtime()),
        "quick": bool(quick),
        "host": {
            "python": host_platform.python_version(),
            "machine": host_platform.machine(),
            "system": host_platform.system(),
        },
        "results": [result.to_dict() for result in results],
    }


def validate_payload(payload: object) -> List[str]:
    """Schema check; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    for key in _REQUIRED_TOP:
        if key not in payload:
            problems.append(f"missing top-level key {key!r}")
    if payload.get("schema") not in (None, SCHEMA_NAME):
        problems.append(
            f"unknown schema {payload.get('schema')!r}; "
            f"expected {SCHEMA_NAME!r}")
    results = payload.get("results")
    if not isinstance(results, list):
        problems.append("results is not a list")
        return problems
    for index, result in enumerate(results):
        if not isinstance(result, dict):
            problems.append(f"results[{index}] is not an object")
            continue
        for key in _REQUIRED_RESULT:
            if key not in result:
                problems.append(f"results[{index}] missing {key!r}")
        for key in ("wall_s", "ops_per_s", "sim_time_ns"):
            value = result.get(key)
            if value is not None and (
                    not isinstance(value, (int, float))
                    or isinstance(value, bool)
                    or not math.isfinite(value)):
                problems.append(
                    f"results[{index}].{key} is not a finite number")
    return problems


def write_payload(payload: Dict[str, object], out_dir: str) -> str:
    """Write ``BENCH_<timestamp>.json`` into ``out_dir``; returns the
    path. A suffix disambiguates same-second runs."""
    os.makedirs(out_dir, exist_ok=True)
    stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
    path = os.path.join(out_dir, f"BENCH_{stamp}.json")
    counter = 1
    while os.path.exists(path):
        path = os.path.join(out_dir, f"BENCH_{stamp}-{counter}.json")
        counter += 1
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_payload(path: str) -> Dict[str, object]:
    """Load and validate one BENCH file (raises ValueError on schema
    problems)."""
    with open(path) as handle:
        payload = json.load(handle)
    problems = validate_payload(payload)
    if problems:
        raise ValueError(
            f"{path}: invalid bench payload: {'; '.join(problems)}")
    return payload


def find_baseline(out_dir: str,
                  exclude: Optional[str] = None) -> Optional[str]:
    """Newest ``BENCH_*.json`` in ``out_dir`` other than ``exclude``
    and the committed ``BENCH_baseline.json`` (which callers pass
    explicitly when they want it)."""
    try:
        names = sorted(
            name for name in os.listdir(out_dir)
            if name.startswith("BENCH_") and name.endswith(".json")
            and name != "BENCH_baseline.json")
    except OSError:
        return None
    exclude_name = os.path.basename(exclude) if exclude else None
    names = [name for name in names if name != exclude_name]
    if not names:
        return None
    return os.path.join(out_dir, names[-1])


@dataclass
class Finding:
    """One comparison outcome for a bench present in both payloads."""

    name: str
    kind: str               # "regression" | "sim-divergence" | "ok"
    ratio: float            # new ops/s over baseline ops/s
    detail: str

    @property
    def failed(self) -> bool:
        return self.kind in ("regression", "sim-divergence")


def _result_index(payload: Dict[str, object]) -> Dict[str, dict]:
    return {result["name"]: result
            for result in payload.get("results", [])
            if isinstance(result, dict) and "name" in result}


def _config_extra(result: dict) -> dict:
    """The configuration part of a result's ``extra`` — measured wall
    times vary run to run and must not defeat the comparison."""
    extra = dict(result.get("extra") or {})
    extra.pop("load_wall_s", None)
    return extra


def _same_configuration(new: dict, old: dict) -> bool:
    """Whether two results measured the same deterministic workload
    (only then is the sim fingerprint comparable)."""
    return (new.get("ops") == old.get("ops")
            and _config_extra(new) == _config_extra(old))


def compare_payloads(new: Dict[str, object], old: Dict[str, object],
                     threshold: float = DEFAULT_THRESHOLD
                     ) -> List[Finding]:
    """Compare a run against a baseline; one finding per shared bench."""
    findings: List[Finding] = []
    old_index = _result_index(old)
    for result in new.get("results", []):
        name = result.get("name")
        baseline = old_index.get(name)
        if baseline is None:
            continue
        old_ops = baseline.get("ops_per_s") or 0.0
        new_ops = result.get("ops_per_s") or 0.0
        ratio = new_ops / old_ops if old_ops else float("inf")
        comparable = _same_configuration(result, baseline)
        if comparable and (
                result.get("sim_time_ns") != baseline.get("sim_time_ns")
                or (result.get("counters") or {})
                != (baseline.get("counters") or {})):
            findings.append(Finding(
                name=name, kind="sim-divergence", ratio=ratio,
                detail=(f"sim_time_ns {baseline.get('sim_time_ns')} -> "
                        f"{result.get('sim_time_ns')}; counters "
                        f"{baseline.get('counters')} -> "
                        f"{result.get('counters')}")))
            continue
        if old_ops and new_ops < old_ops * (1.0 - threshold):
            findings.append(Finding(
                name=name, kind="regression", ratio=ratio,
                detail=(f"ops/s {old_ops:,.0f} -> {new_ops:,.0f} "
                        f"({(1 - ratio) * 100:.1f}% slower; "
                        f"threshold {threshold * 100:.0f}%)")))
            continue
        findings.append(Finding(
            name=name, kind="ok", ratio=ratio,
            detail=f"ops/s {old_ops:,.0f} -> {new_ops:,.0f}"))
    return findings
