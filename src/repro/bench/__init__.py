"""Wall-clock benchmark harness with regression gating.

Unlike ``benchmarks/`` (which measures *simulated* time — the paper's
figures), this package measures how fast the emulator itself runs on
the host: ops per wall-clock second through the cache primitives and
the end-to-end YCSB/TPC-C smoke per engine. Results are emitted as
``BENCH_<timestamp>.json`` trajectories and compared against a prior
run (or the committed seed baseline) with a configurable regression
threshold, so hot-path speedups — and regressions — are visible.

See ``docs/performance.md`` for usage and the threshold policy.
"""

from .harness import (BenchResult, run_bench, run_macro_benches,
                      run_micro_benches)
from .report import (SCHEMA_NAME, compare_payloads, find_baseline,
                     load_payload, make_payload, validate_payload,
                     write_payload)

__all__ = [
    "BenchResult",
    "SCHEMA_NAME",
    "compare_payloads",
    "find_baseline",
    "load_payload",
    "make_payload",
    "run_bench",
    "run_macro_benches",
    "run_micro_benches",
    "validate_payload",
    "write_payload",
]
