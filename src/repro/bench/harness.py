"""Micro and macro wall-clock benchmarks over the emulated platform.

Two layers, mirroring where the host time actually goes:

* **micro** — the cache-model primitives (``load``, ``store``,
  ``sync_ranges``, ``touch_write``, ``load_batch``) driven directly
  with deterministic access patterns. These isolate the per-line
  bookkeeping the fast paths target.
* **macro** — the YCSB balanced smoke and a TPC-C smoke per engine,
  timed over the measured run phase (after the initial load, as in the
  paper's Section 5 protocol).

Every result also records ``sim_time_ns`` and a small counter
fingerprint: the simulated outputs are deterministic, so a comparison
against a prior ``BENCH_*.json`` doubles as a cost-model drift check —
a wall-clock *speedup* must not change what the emulator measures.
"""

from __future__ import annotations

import resource
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..config import CacheConfig, LatencyProfile, PlatformConfig
from ..core.database import Database
from ..engines.base import ENGINE_NAMES
from ..nvm.platform import Platform
from ..workloads.tpcc import TPCCConfig, TPCCWorkload
from ..workloads.ycsb import YCSBConfig, YCSBWorkload

#: Counters recorded as the determinism fingerprint of a bench.
FINGERPRINT_COUNTERS = (
    "cache.clflush", "cache.clwb", "cache.sfence", "cache.sync",
    "nvm.loads", "nvm.stores",
)

#: Working set driven by the micro benches (larger than the cache).
_MICRO_SPAN = 128 * 1024


@dataclass
class BenchResult:
    """One benchmark measurement (wall-clock plus sim fingerprint)."""

    name: str
    kind: str               # "micro" | "macro"
    ops: int                # operations (micro) or transactions (macro)
    wall_s: float
    sim_time_ns: float
    peak_rss_kb: int
    extra: Dict[str, float] = field(default_factory=dict)
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def ops_per_s(self) -> float:
        return self.ops / self.wall_s if self.wall_s > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "kind": self.kind,
            "ops": self.ops,
            "wall_s": self.wall_s,
            "ops_per_s": self.ops_per_s,
            "sim_time_ns": self.sim_time_ns,
            "peak_rss_kb": self.peak_rss_kb,
            "counters": dict(self.counters),
            "extra": dict(self.extra),
        }


def _peak_rss_kb() -> int:
    """Process peak RSS in KB (``ru_maxrss`` is KB on Linux)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _bench_platform() -> Platform:
    return Platform(PlatformConfig(
        latency=LatencyProfile.dram(),
        cache=CacheConfig(capacity_bytes=256 * 1024),
        nvm_capacity_bytes=4 * 1024 * 1024))


# ----------------------------------------------------------------------
# Micro benches: cache-model primitives
# ----------------------------------------------------------------------

def _micro(name: str, ops: int, body: Callable[[Platform], None],
           repeats: int) -> BenchResult:
    """Best-of-N wall time over fresh platforms (the minimum is the
    least noisy estimator for a deterministic body on a busy host);
    the sim fingerprint comes from the last repeat."""
    wall = None
    platform = None
    for __ in range(repeats):
        platform = _bench_platform()
        start = time.perf_counter()
        body(platform)
        elapsed = time.perf_counter() - start
        if wall is None or elapsed < wall:
            wall = elapsed
    assert platform is not None
    counters = {key: platform.stats.counter(key)
                for key in FINGERPRINT_COUNTERS
                if platform.stats.counter(key)}
    return BenchResult(
        name=name, kind="micro", ops=ops, wall_s=wall or 0.0,
        sim_time_ns=platform.clock.now_ns,
        peak_rss_kb=_peak_rss_kb(), counters=counters)


def _micro_specs(quick: bool
                 ) -> List[Tuple[str, int, Callable[[Platform], None]]]:
    scale = 1 if quick else 4
    span = _MICRO_SPAN
    n = 20_000 * scale
    runs = 4_000 * scale
    syncs = 2_000 * scale
    batches = 2_000 * scale

    def load_single(p: Platform) -> None:
        load = p.cache.load
        for i in range(n):
            load((i * 192) % span, 8)

    def store_single(p: Platform) -> None:
        store = p.cache.store
        payload = b"abcdefgh"
        for i in range(n):
            store((i * 192) % span, payload)

    def load_run(p: Platform) -> None:
        load = p.cache.load
        for i in range(runs):
            load((i * 384) % span, 256)

    def touch_write_run(p: Platform) -> None:
        touch = p.cache.touch_write
        for i in range(runs):
            touch((i * 640) % span, 512)

    def store_sync_ranges(p: Platform) -> None:
        store = p.cache.store
        sync = p.cache.sync_ranges
        payload = b"x" * 48
        for i in range(syncs):
            base = (i * 512) % span
            store(base, payload)
            store(base + 64, payload)
            sync(((base, 48), (base + 64, 48)))

    def load_batch(p: Platform) -> None:
        batch = p.cache.load_batch
        for i in range(batches):
            base = (i * 1024) % span
            batch(((base, 40), (base + 200, 40), (base + 700, 40)))

    def mixed(p: Platform) -> None:
        cache = p.cache
        for i in range(n // 4):
            base = (i * 320) % (96 * 1024)
            cache.store(base, b"0123456789abcdef")
            cache.load(base, 16)
            cache.sync(base, 16)
            cache.load((base + 4096) % (96 * 1024), 8)

    return [
        ("micro/load_single_line", n, load_single),
        ("micro/store_single_line", n, store_single),
        ("micro/load_run_256B", runs, load_run),
        ("micro/touch_write_512B", runs, touch_write_run),
        ("micro/store_sync_ranges", syncs, store_sync_ranges),
        ("micro/load_batch_3x40B", batches, load_batch),
        ("micro/mixed_store_load_sync", n, mixed),
    ]


def run_micro_benches(quick: bool = False, repeats: int = 3,
                      only: Optional[str] = None) -> List[BenchResult]:
    """Benchmark the cache primitives with deterministic patterns."""
    return [_micro(name, ops, body, repeats)
            for name, ops, body in _micro_specs(quick)
            if not only or only in name]


# ----------------------------------------------------------------------
# Macro benches: end-to-end engine smoke
# ----------------------------------------------------------------------

def _macro_database(engine: str, seed: int,
                    cache_bytes: int) -> Database:
    # Mirrors the harness runner's platform defaults so the simulated
    # outputs match `repro ycsb` / `repro tpcc` runs point for point.
    return Database(engine=engine,
                    platform_config=PlatformConfig(
                        latency=LatencyProfile.dram(),
                        cache=CacheConfig(capacity_bytes=cache_bytes),
                        seed=seed),
                    seed=seed)


def _fingerprint(db: Database) -> Dict[str, int]:
    totals: Dict[str, int] = {}
    for partition in db.partitions:
        for name in FINGERPRINT_COUNTERS:
            value = partition.platform.stats.counter(name)
            if value:
                totals[name] = totals.get(name, 0) + value
    return totals


def _timed_smoke(name: str, make: Callable[[], Tuple[Database,
                                                     Callable[[], None],
                                                     Callable[[], None]]],
                 txns: int, extra: Dict[str, float],
                 repeats: int) -> BenchResult:
    """Best-of-N over fresh database/workload pairs (same estimator as
    :func:`_micro`: on a shared host a single macro sample routinely
    swings 2x, which reads as a phantom regression). The simulated
    outputs are deterministic across repeats, so the fingerprint comes
    from the last one."""
    wall = load_wall = sim_ns = None
    counters: Dict[str, int] = {}
    for __ in range(max(repeats, 1)):
        db, load, run = make()
        load_start = time.perf_counter()
        load()
        db.checkpoint()
        db.settle()
        load_elapsed = time.perf_counter() - load_start
        sim_start = db.now_ns
        start = time.perf_counter()
        run()
        db.settle()
        elapsed = time.perf_counter() - start
        if wall is None or elapsed < wall:
            wall = elapsed
        if load_wall is None or load_elapsed < load_wall:
            load_wall = load_elapsed
        sim_ns = db.now_ns - sim_start
        counters = _fingerprint(db)
        db.close()
    extra = dict(extra)
    extra["load_wall_s"] = load_wall or 0.0
    return BenchResult(
        name=name, kind="macro", ops=txns, wall_s=wall or 0.0,
        sim_time_ns=sim_ns or 0.0,
        peak_rss_kb=_peak_rss_kb(), counters=counters, extra=extra)


def _macro_ycsb(engine: str, tuples: int, txns: int,
                seed: int = 31, repeats: int = 1) -> BenchResult:
    def make():
        workload = YCSBWorkload(YCSBConfig(
            num_tuples=tuples, mixture="balanced", skew="low",
            seed=seed))
        db = _macro_database(engine, seed, cache_bytes=256 * 1024)
        return (db, lambda: workload.load(db),
                lambda: workload.run(db, txns))

    return _timed_smoke(
        f"macro/ycsb_balanced/{engine}", make, txns,
        {"tuples": tuples, "seed": seed}, repeats)


def _macro_tpcc(engine: str, txns: int, seed: int = 47,
                repeats: int = 1) -> BenchResult:
    def make():
        workload = TPCCWorkload(TPCCConfig(seed=seed))
        db = _macro_database(engine, seed, cache_bytes=512 * 1024)
        return (db, lambda: workload.load(db),
                lambda: workload.run(db, txns))

    return _timed_smoke(f"macro/tpcc/{engine}", make, txns,
                        {"seed": seed}, repeats)


def run_macro_benches(quick: bool = False,
                      engines: Optional[List[str]] = None,
                      only: Optional[str] = None,
                      repeats: int = 3) -> List[BenchResult]:
    """YCSB balanced + TPC-C smoke per engine (run phase timed)."""
    engines = list(engines) if engines else list(ENGINE_NAMES.ALL)
    tuples, txns = (1000, 1000) if quick else (2000, 4000)
    tpcc_txns = 100 if quick else 300
    results = []
    for engine in engines:
        name = f"macro/ycsb_balanced/{engine}"
        if not only or only in name:
            results.append(_macro_ycsb(engine, tuples, txns,
                                       repeats=repeats))
    for engine in engines:
        name = f"macro/tpcc/{engine}"
        if not only or only in name:
            results.append(_macro_tpcc(engine, tpcc_txns,
                                       repeats=repeats))
    return results


def run_bench(quick: bool = False,
              engines: Optional[List[str]] = None,
              only: Optional[str] = None,
              repeats: int = 3) -> List[BenchResult]:
    """Run the full harness; ``only`` substring-filters bench names."""
    results = run_micro_benches(quick=quick, repeats=repeats, only=only)
    results.extend(run_macro_benches(quick=quick, engines=engines,
                                     only=only, repeats=repeats))
    return results
