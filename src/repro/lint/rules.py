"""The project lint rules (LNT001–LNT005).

Rules encode NVM-specific invariants that a generic linter cannot
know about:

========  ==========================================================
LNT001    raw ``clflush``/``clwb`` call in a function with no
          ``sfence`` — an unfenced flush gives no ordering guarantee;
          engine code must use the ``sync``/``sync_ranges`` primitive
LNT002    ``faults.fire("name")`` whose name is not registered with
          ``register_fault_point`` anywhere in the scanned tree
LNT003    ``register_fault_point("name")`` that no code ever fires —
          dead fault points silently shrink crash-campaign coverage
LNT004    ``@register_engine`` constructor taking positional
          parameters beyond ``(self, platform, config)`` — engine
          options must be keyword-only so sweep specs stay readable
LNT005    small value class (bare ``__init__`` of plain attribute
          assignments) without ``__slots__`` — these are hot-path
          per-table/per-txn objects allocated in bulk
========  ==========================================================

``DEFAULT_LINT_PATHS`` covers ``src/repro/engines``,
``src/repro/nvm``, and ``src/repro/fault`` (the fault package is
included so the registry cross-check sees the ``recovery.*``
registrations that live in ``fault/injector.py``).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .framework import LintViolation, Rule, SourceFile, register_rule

__all__ = ["DEFAULT_LINT_PATHS", "LINT_RULES"]

_PACKAGE_ROOT = Path(__file__).resolve().parents[1]

#: Directories `repro lint` scans when no paths are given.
DEFAULT_LINT_PATHS: Tuple[str, ...] = (
    str(_PACKAGE_ROOT / "engines"),
    str(_PACKAGE_ROOT / "nvm"),
    str(_PACKAGE_ROOT / "fault"),
)


def _functions(tree: ast.AST) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_calls(function: ast.AST) -> Iterator[ast.Call]:
    """Calls in ``function``'s own body, not in nested functions."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def _call_name(call: ast.Call) -> Optional[str]:
    if isinstance(call.func, ast.Attribute):
        return call.func.attr
    if isinstance(call.func, ast.Name):
        return call.func.id
    return None


def _literal_arg(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant) \
            and isinstance(call.args[0].value, str):
        return call.args[0].value
    return None


@register_rule
class RawFlushWithoutFence(Rule):
    """LNT001: an unfenced CLFLUSH/CLWB orders nothing (Section 2.3)."""

    code = "LNT001"
    name = "raw-flush-without-fence"
    description = ("clflush/clwb call in a function that never issues "
                   "sfence; use the sync primitive instead")

    #: Facade wrappers that merely forward the instruction downward.
    _WRAPPERS = frozenset({"clflush", "clwb"})

    def check(self, file: SourceFile) -> Iterator[LintViolation]:
        for function in _functions(file.tree):
            if function.name in self._WRAPPERS:
                continue
            calls = list(_own_calls(function))
            if any(_call_name(call) == "sfence" for call in calls):
                continue
            for call in calls:
                if _call_name(call) in ("clflush", "clwb"):
                    yield self.violation(
                        file, call,
                        f"{_call_name(call)} in {function.name}() with "
                        f"no sfence in the same function — the flush "
                        f"is unordered; use sync()/sync_ranges()")


class _FaultPointScan:
    """Shared literal scan for the two fault-point rules."""

    def __init__(self, files: Sequence[SourceFile]) -> None:
        self.registered: Dict[str, Tuple[SourceFile, ast.Call]] = {}
        self.fired: Dict[str, List[Tuple[SourceFile, ast.Call]]] = {}
        for file in files:
            for node in ast.walk(file.tree):
                if not isinstance(node, ast.Call):
                    continue
                name = _call_name(node)
                literal = _literal_arg(node)
                if literal is None:
                    continue
                if name == "register_fault_point":
                    self.registered.setdefault(literal, (file, node))
                elif name == "fire":
                    self.fired.setdefault(literal, []).append(
                        (file, node))


@register_rule
class UnregisteredFaultPoint(Rule):
    """LNT002: firing a name the registry does not know is a silent
    no-op for crash campaigns (they enumerate the registry)."""

    code = "LNT002"
    name = "unregistered-fault-point"
    description = ("faults.fire() name without a matching "
                   "register_fault_point() in the scanned tree")
    project_wide = True

    def check_project(
            self, files: Sequence[SourceFile]) -> Iterator[LintViolation]:
        scan = _FaultPointScan(files)
        for name, sites in sorted(scan.fired.items()):
            if name in scan.registered:
                continue
            for file, call in sites:
                yield self.violation(
                    file, call,
                    f"fault point {name!r} is fired but never "
                    f"registered; crash campaigns cannot target it")


@register_rule
class NeverFiredFaultPoint(Rule):
    """LNT003: a registered point nothing fires is dead coverage."""

    code = "LNT003"
    name = "never-fired-fault-point"
    description = ("register_fault_point() name that no faults.fire() "
                   "call uses in the scanned tree")
    project_wide = True

    def check_project(
            self, files: Sequence[SourceFile]) -> Iterator[LintViolation]:
        scan = _FaultPointScan(files)
        for name, (file, call) in sorted(scan.registered.items()):
            if name not in scan.fired:
                yield self.violation(
                    file, call,
                    f"fault point {name!r} is registered but never "
                    f"fired; it inflates campaign coverage targets")


def _has_decorator(node: ast.ClassDef, name: str) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name) and target.id == name:
            return True
        if isinstance(target, ast.Attribute) and target.attr == name:
            return True
    return False


@register_rule
class EngineOptionsKeywordOnly(Rule):
    """LNT004: engine constructors are called positionally by the
    harness as ``cls(platform, config)``; any extra option must be
    keyword-only so sweep specs and test overrides stay explicit."""

    code = "LNT004"
    name = "engine-options-keyword-only"
    description = ("@register_engine __init__ with positional "
                   "parameters beyond (self, platform, config)")

    _ALLOWED = ("self", "platform", "config")

    def check(self, file: SourceFile) -> Iterator[LintViolation]:
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.ClassDef) \
                    or not _has_decorator(node, "register_engine"):
                continue
            init = next(
                (item for item in node.body
                 if isinstance(item, ast.FunctionDef)
                 and item.name == "__init__"), None)
            if init is None:
                continue
            positional = init.args.posonlyargs + init.args.args
            extras = [arg.arg for arg in positional
                      if arg.arg not in self._ALLOWED]
            if extras or init.args.vararg is not None:
                names = ", ".join(extras) or "*" + init.args.vararg.arg
                yield self.violation(
                    file, init,
                    f"engine {node.name}.__init__ takes positional "
                    f"parameter(s) {names} beyond (self, platform, "
                    f"config); make them keyword-only")


@register_rule
class MissingSlots(Rule):
    """LNT005: bare value classes (an ``__init__`` of plain attribute
    assignments, no other behaviour) are allocated per table / per
    transaction on hot paths; ``__slots__`` drops the per-instance
    dict."""

    code = "LNT005"
    name = "missing-slots"
    description = ("small value class (attribute-only __init__) "
                   "without __slots__")

    _METHODS = frozenset({"__init__", "__repr__"})

    def check(self, file: SourceFile) -> Iterator[LintViolation]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef) \
                    and self._qualifies(node):
                yield self.violation(
                    file, node,
                    f"value class {node.name} has an attribute-only "
                    f"__init__ but no __slots__")

    def _qualifies(self, node: ast.ClassDef) -> bool:
        if node.decorator_list or node.keywords:
            return False
        if any(not (isinstance(base, ast.Name)
                    and base.id == "object")
               for base in node.bases):
            return False
        init = None
        for index, item in enumerate(node.body):
            if index == 0 and isinstance(item, ast.Expr) \
                    and isinstance(item.value, ast.Constant):
                continue  # docstring
            if not isinstance(item, ast.FunctionDef) \
                    or item.name not in self._METHODS:
                return False  # class attrs (incl. __slots__) or logic
            if item.name == "__init__":
                init = item
        return init is not None and self._plain_init(init)

    @staticmethod
    def _plain_init(init: ast.FunctionDef) -> bool:
        for index, statement in enumerate(init.body):
            if index == 0 and isinstance(statement, ast.Expr) \
                    and isinstance(statement.value, ast.Constant):
                continue  # docstring
            if isinstance(statement, ast.Assign):
                targets = statement.targets
            elif isinstance(statement, ast.AnnAssign):
                targets = [statement.target]
            else:
                return False
            for target in targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    return False
        return True


#: code -> (name, description) for docs and ``repro lint --rules``.
LINT_RULES: Dict[str, Tuple[str, str]] = {
    cls.code: (cls.name, cls.description)
    for cls in (RawFlushWithoutFence, UnregisteredFaultPoint,
                NeverFiredFaultPoint, EngineOptionsKeywordOnly,
                MissingSlots)
}
