"""Lint framework: source model, rule registry, noqa waivers, runner.

The framework mirrors how ruff plugins are structured — a rule is a
class with a stable code and a ``check`` hook yielding violations —
but is built purely on the stdlib :mod:`ast` module so it runs in the
bare container (no third-party linter install).

Two rule scopes exist:

* **file** rules inspect one parsed module at a time;
* **project** rules see every scanned module at once (needed for the
  fault-point registry cross-check, where registrations and fire sites
  live in different files).

Waivers: a ``# noqa`` comment on the flagged physical line suppresses
every code; ``# noqa: LNT001`` (comma-separated list allowed)
suppresses just those codes.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence,
                    Set, Type, Union)

__all__ = ["LintViolation", "Rule", "RULE_REGISTRY", "SourceFile",
           "lint_files", "lint_paths", "register_rule"]

_NOQA = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*))?",
    re.IGNORECASE)


@dataclass(frozen=True)
class LintViolation:
    """One finding: rule code + message anchored to a source line.

    ``symbol`` (the enclosing function's qualname, when the rule knows
    it) anchors baseline fingerprints so findings survive line drift;
    file-granularity rules leave it empty.
    """

    code: str
    message: str
    path: str
    line: int
    col: int = 0
    symbol: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {"code": self.code, "message": self.message,
                "path": self.path, "line": self.line, "col": self.col,
                "symbol": self.symbol}

    def __str__(self) -> str:
        return (f"{self.path}:{self.line}:{self.col + 1}: "
                f"{self.code} {self.message}")


def _parse_noqa(source: str) -> Dict[int, Optional[Set[str]]]:
    """Map 1-based line number -> waived codes (``None`` = all)."""
    waivers: Dict[int, Optional[Set[str]]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        waivers[number] = (None if codes is None else
                           {code.strip().upper()
                            for code in codes.split(",")})
    return waivers


class SourceFile:
    """A parsed module: path, raw source, AST, and noqa waivers."""

    __slots__ = ("path", "source", "tree", "noqa")

    def __init__(self, path: Union[str, Path], source: str) -> None:
        self.path = str(path)
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self.noqa = _parse_noqa(source)

    @classmethod
    def read(cls, path: Union[str, Path]) -> "SourceFile":
        return cls(path, Path(path).read_text())

    def waives(self, violation: LintViolation) -> bool:
        codes = self.noqa.get(violation.line, frozenset())
        return codes is None or violation.code in codes


class Rule:
    """Base class for lint rules. Subclasses set ``code``, ``name``,
    ``description`` and override :meth:`check` (file scope) or
    :meth:`check_project` (project scope, ``project_wide = True``)."""

    code: str = ""
    name: str = ""
    description: str = ""
    project_wide: bool = False

    def check(self, file: SourceFile) -> Iterator[LintViolation]:
        return iter(())

    def check_project(
            self, files: Sequence[SourceFile]) -> Iterator[LintViolation]:
        return iter(())

    def violation(self, file: SourceFile, node: ast.AST,
                  message: str) -> LintViolation:
        return LintViolation(
            code=self.code, message=message, path=file.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0))


#: code -> rule class; populated by :func:`register_rule`.
RULE_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in RULE_REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def iter_source_files(
        paths: Iterable[Union[str, Path]]) -> List[SourceFile]:
    """Expand files/directories into parsed :class:`SourceFile`\\ s.
    Directories are walked recursively for ``*.py``."""
    seen: Set[str] = set()
    files: List[SourceFile] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            key = str(candidate.resolve())
            if key in seen:
                continue
            seen.add(key)
            files.append(SourceFile.read(candidate))
    return files


def lint_files(files: Sequence[SourceFile],
               select: Optional[Iterable[str]] = None
               ) -> List[LintViolation]:
    """Run all registered (or ``select``-ed) rules over ``files``,
    apply noqa waivers, return violations sorted by location."""
    wanted = None if select is None else {code.upper()
                                          for code in select}
    unknown = (wanted or set()) - set(RULE_REGISTRY)
    if unknown:
        raise ValueError(
            f"unknown rule codes: {', '.join(sorted(unknown))}; "
            f"choose from {', '.join(sorted(RULE_REGISTRY))}")
    by_path = {file.path: file for file in files}
    violations: List[LintViolation] = []
    for code in sorted(RULE_REGISTRY):
        if wanted is not None and code not in wanted:
            continue
        rule = RULE_REGISTRY[code]()
        if rule.project_wide:
            violations.extend(rule.check_project(files))
        else:
            for file in files:
                violations.extend(rule.check(file))
    kept = [violation for violation in violations
            if not by_path[violation.path].waives(violation)]
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.code))
    return kept


def lint_paths(paths: Iterable[Union[str, Path]],
               select: Optional[Iterable[str]] = None
               ) -> List[LintViolation]:
    return lint_files(iter_source_files(paths), select=select)
