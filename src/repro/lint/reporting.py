"""Shared report/exit-code/JSON/baseline plumbing for the source
tools (``repro lint`` and ``repro analyze``).

Extracted from the lint CLI so both commands present findings the same
way: one human format, one JSON schema, one ``--select`` parser, and —
for the analyzer — one baseline-ratchet format. A baseline maps
finding *fingerprints* to counts; fingerprints anchor on the enclosing
symbol when the rule provides one, so findings survive unrelated line
drift but a genuinely new finding in the same function still shows up
as a count increase.
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .framework import LintViolation

__all__ = ["BASELINE_KIND", "baseline_diff", "emit_findings",
           "fingerprint", "load_baseline", "parse_select",
           "print_rule_catalogue", "save_baseline"]

BASELINE_KIND = "repro-analyze-baseline/1"


def parse_select(text: Optional[str]) -> Optional[List[str]]:
    """``"SDA001, ACD002"`` → ``["SDA001", "ACD002"]``; None/empty →
    None (run everything)."""
    if not text:
        return None
    return [code.strip() for code in text.split(",") if code.strip()]


def print_rule_catalogue(title: str,
                         rules: Dict[str, Tuple[str, str]]) -> None:
    from repro.analysis.tables import format_table
    print(format_table(
        ["code", "name", "description"],
        [[code, name, description]
         for code, (name, description) in sorted(rules.items())],
        title=title))


def emit_findings(violations: Sequence[LintViolation],
                  json_out: Optional[str] = None) -> int:
    """Print findings (human lines, or JSON when ``json_out`` is
    ``'-'``/a path) and return the exit code: 0 clean, 1 findings."""
    if json_out is not None:
        payload = [violation.to_dict() for violation in violations]
        if json_out == "-":
            json.dump(payload, sys.stdout, indent=2)
            print()
        else:
            with open(json_out, "w") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"report -> {json_out}")
    else:
        for violation in violations:
            print(violation)
        print(f"{len(violations)} finding(s)")
    return 1 if violations else 0


def fingerprint(violation: LintViolation,
                root: Optional[Union[str, Path]] = None) -> str:
    """Stable identity of a finding for baseline matching:
    ``code::relative-path::symbol`` (falling back to the line number
    when the rule did not attach a symbol)."""
    path = Path(violation.path)
    base = Path(root) if root is not None else Path.cwd()
    try:
        rel = path.resolve().relative_to(base.resolve())
    except ValueError:
        rel = path
    anchor = violation.symbol or f"L{violation.line}"
    return f"{violation.code}::{rel.as_posix()}::{anchor}"


def _counts(violations: Sequence[LintViolation],
            root: Optional[Union[str, Path]]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for violation in violations:
        key = fingerprint(violation, root)
        counts[key] = counts.get(key, 0) + 1
    return counts


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Read a baseline file; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return {}
    with open(path) as handle:
        payload = json.load(handle)
    if payload.get("kind") != BASELINE_KIND:
        raise ValueError(
            f"{path}: not a {BASELINE_KIND} file "
            f"(kind={payload.get('kind')!r})")
    findings = payload.get("findings", {})
    if not isinstance(findings, dict):
        raise ValueError(f"{path}: findings must be an object")
    return {str(key): int(value)
            for key, value in findings.items()}


def save_baseline(path: Union[str, Path],
                  violations: Sequence[LintViolation],
                  root: Optional[Union[str, Path]] = None) -> None:
    payload = {
        "kind": BASELINE_KIND,
        "findings": dict(sorted(_counts(violations, root).items())),
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def baseline_diff(violations: Sequence[LintViolation],
                  baseline: Dict[str, int],
                  root: Optional[Union[str, Path]] = None
                  ) -> Tuple[List[LintViolation], List[str]]:
    """(new findings not covered by the baseline, stale baseline
    entries no current finding matches). The gate fails on either:
    new findings regress the code, stale entries mean the baseline
    should shrink (the ratchet only ever tightens)."""
    remaining = dict(baseline)
    fresh: List[LintViolation] = []
    for violation in violations:
        key = fingerprint(violation, root)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(violation)
    stale = sorted(key for key, count in remaining.items()
                   if count > 0)
    return fresh, stale
