"""Project-specific static lint pass (``repro lint``).

A ruff-plugin-style framework over the stdlib :mod:`ast` module — no
third-party linter is needed to enforce the project's NVM-specific
invariants. Each rule is a small visitor class with a stable ``LNTxxx``
code; ``# noqa: LNTxxx`` on the flagged line waives a finding.

See ``docs/static-analysis.md`` for the rule catalogue.
"""

from .framework import (LintViolation, Rule, RULE_REGISTRY, SourceFile,
                        lint_files, lint_paths, register_rule)
from .reporting import (baseline_diff, emit_findings, fingerprint,
                        load_baseline, parse_select,
                        print_rule_catalogue, save_baseline)
from .rules import DEFAULT_LINT_PATHS, LINT_RULES

__all__ = ["LintViolation", "Rule", "RULE_REGISTRY", "SourceFile",
           "lint_files", "lint_paths", "register_rule",
           "DEFAULT_LINT_PATHS", "LINT_RULES",
           "baseline_diff", "emit_findings", "fingerprint",
           "load_baseline", "parse_select", "print_rule_catalogue",
           "save_baseline"]
