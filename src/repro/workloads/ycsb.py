"""YCSB workload (Section 5.1, reference [20]).

A single table of tuples with an integer primary key and 10 columns of
100-byte random string data (~1 KB per tuple). Two transaction types:

* **read** — retrieve one tuple by primary key;
* **update** — modify one column of one tuple by primary key.

Four mixtures (read-only 100/0, read-heavy 90/10, balanced 50/50,
write-heavy 10/90) crossed with two skews (low: 50% of accesses to 20%
of tuples; high: 90% to 10%) reproduce the paper's eight YCSB
configurations. The paper runs 2M tuples / 8M transactions on the
hardware emulator; the simulator defaults are scaled down and recorded
per experiment in EXPERIMENTS.md.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Tuple

from ..core.database import Database
from ..core.schema import Column, ColumnType, Schema
from ..errors import WorkloadError
from ..sim.rng import derive_rng
from .distributions import HotspotDistribution

#: mixture name -> fraction of update transactions
MIXTURES: Dict[str, float] = {
    "read-only": 0.0,
    "read-heavy": 0.1,
    "balanced": 0.5,
    "write-heavy": 0.9,
}

YCSB_MIXTURE_NAMES = tuple(MIXTURES)

#: skew name -> (hot fraction of tuples, probability of hitting it)
SKEWS: Dict[str, Tuple[float, float]] = {
    "low": (0.2, 0.5),
    "high": (0.1, 0.9),
}

NUM_VALUE_COLUMNS = 10
VALUE_COLUMN_BYTES = 100

_ALPHABET = string.ascii_letters + string.digits


@dataclass(frozen=True)
class YCSBConfig:
    """Scaled YCSB parameters."""

    num_tuples: int = 4000
    mixture: str = "balanced"
    skew: str = "low"
    seed: int = 31

    def __post_init__(self) -> None:
        if self.mixture not in MIXTURES:
            raise WorkloadError(
                f"unknown mixture {self.mixture!r}; "
                f"expected one of {sorted(MIXTURES)}")
        if self.skew not in SKEWS:
            raise WorkloadError(
                f"unknown skew {self.skew!r}; "
                f"expected one of {sorted(SKEWS)}")
        if self.num_tuples < 1:
            raise WorkloadError("num_tuples must be >= 1")


class YCSBWorkload:
    """Generator + loader + stored procedures for YCSB."""

    TABLE = "usertable"

    def __init__(self, config: YCSBConfig,
                 partitions: int = 1) -> None:
        self.config = config
        self.partitions = partitions
        self._data_rng = derive_rng(config.seed, "ycsb", "data")
        self._op_rng = derive_rng(config.seed, "ycsb", "ops")
        hot_fraction, hot_probability = SKEWS[config.skew]
        # Independent hotspot per partition ("a localized hotspot
        # within each partition").
        tuples_per_partition = config.num_tuples // partitions
        self._dists = [
            HotspotDistribution(tuples_per_partition, hot_fraction,
                                hot_probability,
                                derive_rng(config.seed, "ycsb", "skew",
                                           str(pid)))
            for pid in range(partitions)
        ]
        self.tuples_per_partition = tuples_per_partition

    # ------------------------------------------------------------------
    # Schema & loading
    # ------------------------------------------------------------------

    @staticmethod
    def schema() -> Schema:
        columns = [Column("ycsb_key", ColumnType.INT)]
        columns.extend(
            Column(f"field{i}", ColumnType.STRING,
                   capacity=VALUE_COLUMN_BYTES)
            for i in range(NUM_VALUE_COLUMNS))
        return Schema.build(YCSBWorkload.TABLE, columns,
                            primary_key=["ycsb_key"])

    def _random_string(self, length: int = VALUE_COLUMN_BYTES) -> str:
        return "".join(self._data_rng.choices(_ALPHABET, k=length))

    def make_tuple(self, key: int) -> Dict[str, Any]:
        values: Dict[str, Any] = {"ycsb_key": key}
        for i in range(NUM_VALUE_COLUMNS):
            values[f"field{i}"] = self._random_string()
        return values

    def load(self, db: Database) -> int:
        """Populate the table; returns the number of tuples loaded.

        Keys are partition-local: partition p holds keys
        ``p * tuples_per_partition .. (p+1) * tpp - 1``.
        """
        db.create_table(self.schema())
        count = 0
        for pid in range(self.partitions):
            base = pid * self.tuples_per_partition
            for offset in range(self.tuples_per_partition):
                db.insert(self.TABLE, self.make_tuple(base + offset),
                          partition=pid)
                count += 1
        db.flush()
        return count

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    def operations(self, count: int) -> Iterator[Tuple[str, int, int]]:
        """Yield ``(kind, partition, key)`` tuples; kind is "read" or
        "update". The workload is pre-generated and identical across
        engines so storage footprints and read/write amplification are
        comparable (Section 5.1)."""
        update_fraction = MIXTURES[self.config.mixture]
        for index in range(count):
            pid = index % self.partitions
            local_key = self._dists[pid].sample()
            key = pid * self.tuples_per_partition + local_key
            kind = "update" \
                if self._op_rng.random() < update_fraction else "read"
            yield kind, pid, key

    def transactions(self, num_txns: int
                     ) -> Iterator[Tuple[Any, tuple, int]]:
        """Yield the next ``num_txns`` transactions as ``(procedure,
        args, partition)`` triples — the same RNG stream :meth:`run`
        consumes, exposed so callers (the scale-out sweep) can
        pre-generate the stream outside a timed window."""
        table = self.TABLE
        for kind, pid, key in self.operations(num_txns):
            if kind == "read":
                yield _read_txn, (table, key), pid
            else:
                field = f"field{self._op_rng.randrange(NUM_VALUE_COLUMNS)}"
                value = self._random_string()
                yield _update_txn, (table, key, field, value), pid

    def run(self, db: Database, num_txns: int) -> int:
        """Execute ``num_txns`` pre-generated transactions; returns the
        number committed."""
        committed = 0
        for procedure, args, pid in self.transactions(num_txns):
            db.execute(procedure, *args, partition=pid)
            committed += 1
        db.flush()
        return committed


def _read_txn(ctx, table: str, key: int) -> Dict[str, Any]:
    row = ctx.get(table, key)
    assert row is not None, f"YCSB key {key} missing"
    return row


def _update_txn(ctx, table: str, key: int, field: str,
                value: str) -> None:
    ctx.update(table, key, {field: value})
