"""Key-access distributions for workload generators.

The paper's modified YCSB generator "supports two different levels of
skew in the tuple access patterns that allows us to create a localized
hotspot within each partition" (Section 5.1):

* **low skew** — 50% of transactions access 20% of the tuples;
* **high skew** — 90% of transactions access 10% of the tuples.
"""

from __future__ import annotations

import random
from typing import List

from ..errors import WorkloadError


class HotspotDistribution:
    """Hot-set access distribution over keys ``0 .. population-1``.

    With probability ``hot_probability`` a key is drawn uniformly from
    the first ``hot_fraction`` of the population (the hotspot), else
    uniformly from the remainder.
    """

    def __init__(self, population: int, hot_fraction: float,
                 hot_probability: float, rng: random.Random) -> None:
        if population < 1:
            raise WorkloadError("population must be >= 1")
        if not 0.0 < hot_fraction <= 1.0:
            raise WorkloadError("hot_fraction must be in (0, 1]")
        if not 0.0 <= hot_probability <= 1.0:
            raise WorkloadError("hot_probability must be in [0, 1]")
        self.population = population
        self.hot_size = max(1, int(population * hot_fraction))
        self.hot_probability = hot_probability
        self._rng = rng

    def sample(self) -> int:
        """Draw one key."""
        if self.hot_size >= self.population:
            return self._rng.randrange(self.population)
        if self._rng.random() < self.hot_probability:
            return self._rng.randrange(self.hot_size)
        return self._rng.randrange(self.hot_size, self.population)

    def sample_many(self, count: int) -> List[int]:
        return [self.sample() for __ in range(count)]
