"""TPC-C workload (Section 5.1, reference [61]).

The industry-standard order-entry benchmark: nine tables and five
transaction types (New-Order, Payment, Order-Status, Delivery,
Stock-Level) in the standard 45/43/4/4/4 mix — "transactions involving
database modifications comprise around 88% of the workload". Each
warehouse maps to one partition. By default all transactions are
single-partition; with ``remote_order_fraction > 0`` a fraction of
New-Order transactions source one order line from a *remote* supply
warehouse. On the in-process database those remote stock accesses are
redirected to the home warehouse (the paper's single-partition cheat)
and counted in :attr:`TPCCWorkload.remote_redirected`; on the sharded
tier (:class:`~repro.dist.coordinator.ShardedDatabase`) they execute
on their true home partition as a real cross-partition two-phase
commit transaction (see docs/scaleout.md).

The paper runs 8 warehouses and 100,000 items (~1 GB); the simulator
defaults are scaled down (see EXPERIMENTS.md) while keeping the schema,
transaction logic, secondary indexes (customer by last name, orders by
customer), and relative table sizes intact.
"""

from __future__ import annotations

import string
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..core.database import Database
from ..core.schema import Column, ColumnType, Schema
from ..errors import TupleNotFoundError, WorkloadError
from ..sim.rng import derive_rng

_ALPHABET = string.ascii_letters
_LAST_NAMES = ["BAR", "OUGHT", "ABLE", "PRI", "PRES",
               "ESE", "ANTI", "CALLY", "ATION", "EING"]

#: Standard transaction mix.
TXN_MIX: List[Tuple[str, float]] = [
    ("new_order", 0.45),
    ("payment", 0.43),
    ("order_status", 0.04),
    ("delivery", 0.04),
    ("stock_level", 0.04),
]

_MAX_ORDER_ID = 10 ** 9


@dataclass(frozen=True)
class TPCCConfig:
    """Scaled TPC-C parameters (spec values in comments)."""

    warehouses: int = 2              # paper: 8
    districts_per_warehouse: int = 4  # spec: 10
    customers_per_district: int = 30  # spec: 3000
    items: int = 100                  # paper: 100,000
    initial_orders_per_district: int = 20  # spec: 3000
    min_order_lines: int = 5
    max_order_lines: int = 15
    seed: int = 47
    #: Fraction of New-Order transactions with one remote-warehouse
    #: order line (the spec's remote supply rule). 0.0 draws no extra
    #: random numbers, so default runs are bit-for-bit unchanged.
    remote_order_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.warehouses < 1:
            raise WorkloadError("need at least one warehouse")
        if self.min_order_lines > self.max_order_lines:
            raise WorkloadError("min_order_lines > max_order_lines")
        if not 0.0 <= self.remote_order_fraction <= 1.0:
            raise WorkloadError(
                "remote_order_fraction must be in [0, 1]")
        if self.remote_order_fraction > 0.0 and self.warehouses < 2:
            raise WorkloadError(
                "remote order lines need at least two warehouses")


def tpcc_schemas() -> List[Schema]:
    """All nine TPC-C table schemas."""
    return [
        Schema.build("item", [
            Column("i_id", ColumnType.INT),
            Column("i_name", ColumnType.STRING, capacity=24),
            Column("i_price", ColumnType.FLOAT),
            Column("i_data", ColumnType.STRING, capacity=50),
        ], primary_key=["i_id"]),
        Schema.build("warehouse", [
            Column("w_id", ColumnType.INT),
            Column("w_name", ColumnType.STRING, capacity=10),
            Column("w_tax", ColumnType.FLOAT),
            Column("w_ytd", ColumnType.FLOAT),
        ], primary_key=["w_id"]),
        Schema.build("district", [
            Column("d_w_id", ColumnType.INT),
            Column("d_id", ColumnType.INT),
            Column("d_name", ColumnType.STRING, capacity=10),
            Column("d_tax", ColumnType.FLOAT),
            Column("d_ytd", ColumnType.FLOAT),
            Column("d_next_o_id", ColumnType.INT),
        ], primary_key=["d_w_id", "d_id"]),
        Schema.build("customer", [
            Column("c_w_id", ColumnType.INT),
            Column("c_d_id", ColumnType.INT),
            Column("c_id", ColumnType.INT),
            Column("c_first", ColumnType.STRING, capacity=16),
            Column("c_last", ColumnType.STRING, capacity=16),
            Column("c_balance", ColumnType.FLOAT),
            Column("c_ytd_payment", ColumnType.FLOAT),
            Column("c_payment_cnt", ColumnType.INT),
            Column("c_data", ColumnType.STRING, capacity=250),
        ], primary_key=["c_w_id", "c_d_id", "c_id"],
            secondary_indexes={"by_name": ["c_w_id", "c_d_id", "c_last"]}),
        Schema.build("history", [
            Column("h_id", ColumnType.INT),
            Column("h_c_w_id", ColumnType.INT),
            Column("h_c_d_id", ColumnType.INT),
            Column("h_c_id", ColumnType.INT),
            Column("h_amount", ColumnType.FLOAT),
            Column("h_data", ColumnType.STRING, capacity=24),
        ], primary_key=["h_id"]),
        Schema.build("new_order", [
            Column("no_w_id", ColumnType.INT),
            Column("no_d_id", ColumnType.INT),
            Column("no_o_id", ColumnType.INT),
        ], primary_key=["no_w_id", "no_d_id", "no_o_id"]),
        Schema.build("orders", [
            Column("o_w_id", ColumnType.INT),
            Column("o_d_id", ColumnType.INT),
            Column("o_id", ColumnType.INT),
            Column("o_c_id", ColumnType.INT),
            Column("o_entry_d", ColumnType.INT),
            Column("o_carrier_id", ColumnType.INT),
            Column("o_ol_cnt", ColumnType.INT),
        ], primary_key=["o_w_id", "o_d_id", "o_id"],
            secondary_indexes={
                "by_customer": ["o_w_id", "o_d_id", "o_c_id"]}),
        Schema.build("order_line", [
            Column("ol_w_id", ColumnType.INT),
            Column("ol_d_id", ColumnType.INT),
            Column("ol_o_id", ColumnType.INT),
            Column("ol_number", ColumnType.INT),
            Column("ol_i_id", ColumnType.INT),
            Column("ol_delivery_d", ColumnType.INT),
            Column("ol_quantity", ColumnType.INT),
            Column("ol_amount", ColumnType.FLOAT),
            Column("ol_dist_info", ColumnType.STRING, capacity=24),
        ], primary_key=["ol_w_id", "ol_d_id", "ol_o_id", "ol_number"]),
        Schema.build("stock", [
            Column("s_w_id", ColumnType.INT),
            Column("s_i_id", ColumnType.INT),
            Column("s_quantity", ColumnType.INT),
            Column("s_ytd", ColumnType.INT),
            Column("s_order_cnt", ColumnType.INT),
            Column("s_data", ColumnType.STRING, capacity=50),
        ], primary_key=["s_w_id", "s_i_id"]),
    ]


class TPCCWorkload:
    """Loader and transaction generator for scaled TPC-C."""

    def __init__(self, config: TPCCConfig, partitions: int = 1) -> None:
        self.config = config
        self.partitions = partitions
        self._rng = derive_rng(config.seed, "tpcc", "ops")
        self._data_rng = derive_rng(config.seed, "tpcc", "data")
        self._history_ids = [iter(range(p, 10 ** 12, partitions))
                             for p in range(partitions)]
        self.new_order_count = 0
        self.payment_count = 0
        #: Remote order lines redirected to the home warehouse by the
        #: single-process path (the visible cost of the paper's cheat).
        self.remote_redirected = 0
        #: Remote order lines executed on their true partition via 2PC.
        self.remote_distributed = 0

    def partition_of(self, w_id: int) -> int:
        return (w_id - 1) % self.partitions

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def _rand_str(self, length: int) -> str:
        return "".join(self._data_rng.choices(_ALPHABET, k=length))

    @staticmethod
    def last_name(number: int) -> str:
        """Standard TPC-C syllable last-name generator."""
        return (_LAST_NAMES[(number // 100) % 10]
                + _LAST_NAMES[(number // 10) % 10]
                + _LAST_NAMES[number % 10])

    def load(self, db: Database) -> Dict[str, int]:
        """Populate all nine tables; returns row counts per table."""
        for schema in tpcc_schemas():
            db.create_table(schema)
        counts = {schema.table: 0 for schema in tpcc_schemas()}
        config = self.config
        # Items are read-only and replicated to every partition so all
        # transactions stay single-partition.
        for pid in range(self.partitions):
            for i_id in range(1, config.items + 1):
                db.insert("item", {
                    "i_id": i_id, "i_name": self._rand_str(12),
                    "i_price": 1.0 + (i_id % 100),
                    "i_data": self._rand_str(26),
                }, partition=pid)
        counts["item"] = config.items * self.partitions
        for w_id in range(1, config.warehouses + 1):
            pid = self.partition_of(w_id)
            db.insert("warehouse", {
                "w_id": w_id, "w_name": self._rand_str(6),
                "w_tax": 0.05, "w_ytd": 0.0,
            }, partition=pid)
            counts["warehouse"] += 1
            for i_id in range(1, config.items + 1):
                db.insert("stock", {
                    "s_w_id": w_id, "s_i_id": i_id,
                    "s_quantity": 50 + (i_id % 50), "s_ytd": 0,
                    "s_order_cnt": 0, "s_data": self._rand_str(26),
                }, partition=pid)
                counts["stock"] += 1
            for d_id in range(1, config.districts_per_warehouse + 1):
                self._load_district(db, pid, w_id, d_id, counts)
        db.flush()
        return counts

    def _load_district(self, db: Database, pid: int, w_id: int,
                       d_id: int, counts: Dict[str, int]) -> None:
        config = self.config
        next_o_id = config.initial_orders_per_district + 1
        db.insert("district", {
            "d_w_id": w_id, "d_id": d_id, "d_name": self._rand_str(6),
            "d_tax": 0.08, "d_ytd": 0.0, "d_next_o_id": next_o_id,
        }, partition=pid)
        counts["district"] += 1
        for c_id in range(1, config.customers_per_district + 1):
            db.insert("customer", {
                "c_w_id": w_id, "c_d_id": d_id, "c_id": c_id,
                "c_first": self._rand_str(8),
                "c_last": self.last_name(c_id - 1),
                "c_balance": -10.0, "c_ytd_payment": 10.0,
                "c_payment_cnt": 1, "c_data": self._rand_str(200),
            }, partition=pid)
            counts["customer"] += 1
        for o_id in range(1, config.initial_orders_per_district + 1):
            c_id = 1 + self._data_rng.randrange(
                config.customers_per_district)
            ol_cnt = self._data_rng.randint(config.min_order_lines,
                                            config.max_order_lines)
            db.insert("orders", {
                "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id,
                "o_c_id": c_id, "o_entry_d": o_id, "o_carrier_id": 0,
                "o_ol_cnt": ol_cnt,
            }, partition=pid)
            counts["orders"] += 1
            for number in range(1, ol_cnt + 1):
                db.insert("order_line", {
                    "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
                    "ol_number": number,
                    "ol_i_id": 1 + self._data_rng.randrange(config.items),
                    "ol_delivery_d": o_id, "ol_quantity": 5,
                    "ol_amount": 0.0, "ol_dist_info": self._rand_str(24),
                }, partition=pid)
                counts["order_line"] += 1
            # The most recent third of orders are not yet delivered.
            if o_id > 2 * config.initial_orders_per_district // 3:
                db.insert("new_order", {
                    "no_w_id": w_id, "no_d_id": d_id, "no_o_id": o_id,
                }, partition=pid)
                counts["new_order"] += 1

    # ------------------------------------------------------------------
    # Transaction generation
    # ------------------------------------------------------------------

    def _pick_txn_type(self) -> str:
        roll = self._rng.random()
        cumulative = 0.0
        for name, fraction in TXN_MIX:
            cumulative += fraction
            if roll < cumulative:
                return name
        return TXN_MIX[-1][0]

    def transactions(self, count: int
                     ) -> Iterator[Tuple[str, Callable, tuple, int]]:
        """Yield ``(name, procedure, args, partition)``."""
        config = self.config
        for sequence in range(count):
            w_id = 1 + self._rng.randrange(config.warehouses)
            d_id = 1 + self._rng.randrange(
                config.districts_per_warehouse)
            pid = self.partition_of(w_id)
            name = self._pick_txn_type()
            if name == "new_order":
                c_id = 1 + self._rng.randrange(
                    config.customers_per_district)
                lines: List[Tuple[int, ...]] = [
                    (1 + self._rng.randrange(config.items),
                     1 + self._rng.randrange(10))
                    for __ in range(self._rng.randint(
                        config.min_order_lines, config.max_order_lines))
                ]
                # Remote supply rule: one line of a remote New-Order is
                # sourced from another warehouse. Guarded so the
                # default (0.0) draws nothing and stays bit-identical
                # to historical runs.
                if config.remote_order_fraction > 0.0 \
                        and self._rng.random() \
                        < config.remote_order_fraction:
                    index = self._rng.randrange(len(lines))
                    supply_w = 1 + self._rng.randrange(
                        config.warehouses - 1)
                    if supply_w >= w_id:
                        supply_w += 1
                    lines[index] = lines[index] + (supply_w,)
                yield name, new_order_txn, \
                    (w_id, d_id, c_id, lines, sequence), pid
            elif name == "payment":
                c_id = 1 + self._rng.randrange(
                    config.customers_per_district)
                if self._rng.random() < 0.6:
                    selector: Tuple[str, Any] = (
                        "name", self.last_name(c_id - 1))
                else:
                    selector = ("id", c_id)
                amount = 1.0 + self._rng.random() * 4999.0
                history_id = next(self._history_ids[pid])
                yield name, payment_txn, \
                    (w_id, d_id, selector, amount, history_id), pid
            elif name == "order_status":
                c_id = 1 + self._rng.randrange(
                    config.customers_per_district)
                yield name, order_status_txn, (w_id, d_id, c_id), pid
            elif name == "delivery":
                yield name, delivery_txn, \
                    (w_id, config.districts_per_warehouse, sequence), pid
            else:
                yield name, stock_level_txn, (w_id, d_id, 60), pid

    def run(self, db: Database, num_txns: int) -> Dict[str, int]:
        """Execute ``num_txns`` transactions; returns per-type counts.

        New-Order transactions with remote order lines run as real
        cross-partition 2PC transactions on a sharded database; on the
        in-process database the remote stock accesses are redirected to
        the home warehouse and counted (the paper's cheat, made
        visible)."""
        executed: Dict[str, int] = {name: 0 for name, __ in TXN_MIX}
        for txn in self.transactions(num_txns):
            executed[self.execute_one(db, txn)] += 1
        db.flush()
        return executed

    def execute_one(self, db: Database,
                    txn: Tuple[str, Any, tuple, int]) -> str:
        """Dispatch one :meth:`transactions` entry on ``db``; returns
        the transaction's type name."""
        name, procedure, args, pid = txn
        if name == "new_order":
            remote = [line for line in args[3] if len(line) > 2]
            if remote and getattr(db, "is_sharded", False):
                db.execute_distributed(self._new_order_dtxn(pid, *args))
                self.remote_distributed += len(remote)
                return name
            self.remote_redirected += len(remote)
        db.execute(procedure, *args, partition=pid)
        return name

    def _new_order_dtxn(self, home_pid: int, w_id: int, d_id: int,
                        c_id: int, lines: List[Tuple[int, ...]],
                        entry_d: int):
        """Split a remote New-Order into its per-partition branches:
        the home branch does everything except stock updates for lines
        supplied by other partitions; each remote partition gets one
        branch applying its stock updates."""
        from ..dist.txn import Branch, DistributedTransaction
        tagged: List[Tuple[int, int, int, bool]] = []
        by_partition: Dict[int, List[Tuple[int, int, int]]] = {}
        for line in lines:
            i_id, quantity = line[0], line[1]
            supply_w = line[2] if len(line) > 2 else w_id
            supply_pid = self.partition_of(supply_w)
            local = supply_pid == home_pid
            tagged.append((i_id, quantity, supply_w, local))
            if not local:
                by_partition.setdefault(supply_pid, []).append(
                    (supply_w, i_id, quantity))
        home = Branch(home_pid, new_order_home_branch,
                      (w_id, d_id, c_id, tagged, entry_d))
        remotes = [Branch(pid, new_order_remote_branch,
                          (tuple(updates),))
                   for pid, updates in sorted(by_partition.items())]
        return DistributedTransaction(home, remotes)


# ----------------------------------------------------------------------
# Stored procedures
# ----------------------------------------------------------------------

def _consume_stock(ctx, s_w_id: int, i_id: int, quantity: int) -> None:
    """Decrement one stock row (with the spec's +91 restock rule)."""
    stock = ctx.get("stock", (s_w_id, i_id))
    new_quantity = stock["s_quantity"] - quantity
    if new_quantity < 10:
        new_quantity += 91
    ctx.update("stock", (s_w_id, i_id), {
        "s_quantity": new_quantity,
        "s_ytd": stock["s_ytd"] + quantity,
        "s_order_cnt": stock["s_order_cnt"] + 1,
    })


def _new_order_header(ctx, w_id: int, d_id: int, c_id: int,
                      entry_d: int, ol_cnt: int) -> int:
    """Shared New-Order prologue: reads, order-id bump, order rows."""
    warehouse = ctx.get("warehouse", w_id)
    district = ctx.get("district", (w_id, d_id))
    customer = ctx.get("customer", (w_id, d_id, c_id))
    assert warehouse and district and customer
    o_id = district["d_next_o_id"]
    ctx.update("district", (w_id, d_id), {"d_next_o_id": o_id + 1})
    ctx.insert("orders", {
        "o_w_id": w_id, "o_d_id": d_id, "o_id": o_id, "o_c_id": c_id,
        "o_entry_d": entry_d, "o_carrier_id": 0,
        "o_ol_cnt": ol_cnt,
    })
    ctx.insert("new_order", {"no_w_id": w_id, "no_d_id": d_id,
                             "no_o_id": o_id})
    return o_id


def new_order_txn(ctx, w_id: int, d_id: int, c_id: int,
                  lines: List[Tuple[int, ...]], entry_d: int) -> int:
    """Place an order: read warehouse/district/customer, consume stock,
    insert the order, its order lines, and the new-order record.

    Single-partition variant: a line carrying a remote supply
    warehouse (a 3-tuple) is *redirected* to the home warehouse's
    stock, reproducing the paper's single-partition cheat. The caller
    (:meth:`TPCCWorkload.run`) counts these redirections."""
    o_id = _new_order_header(ctx, w_id, d_id, c_id, entry_d,
                             len(lines))
    for number, line in enumerate(lines, start=1):
        i_id, quantity = line[0], line[1]
        item = ctx.get("item", i_id)
        if item is None:
            ctx.abort("unused item number (1% rollback)")
        _consume_stock(ctx, w_id, i_id, quantity)
        ctx.insert("order_line", {
            "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
            "ol_number": number, "ol_i_id": i_id,
            "ol_delivery_d": 0, "ol_quantity": quantity,
            "ol_amount": quantity * item["i_price"],
            "ol_dist_info": "dist-info-" + str(d_id).rjust(13, "0"),
        })
    return o_id


def new_order_home_branch(ctx, w_id: int, d_id: int, c_id: int,
                          lines: List[Tuple[int, int, int, bool]],
                          entry_d: int) -> int:
    """Home branch of a distributed New-Order: the full order minus
    stock updates owned by other partitions. ``lines`` carry
    ``(i_id, quantity, supply_w, local)``; item rows are replicated so
    prices resolve locally either way."""
    o_id = _new_order_header(ctx, w_id, d_id, c_id, entry_d,
                             len(lines))
    for number, (i_id, quantity, supply_w, local) in \
            enumerate(lines, start=1):
        item = ctx.get("item", i_id)
        if item is None:
            ctx.abort("unused item number (1% rollback)")
        if local:
            _consume_stock(ctx, supply_w, i_id, quantity)
        ctx.insert("order_line", {
            "ol_w_id": w_id, "ol_d_id": d_id, "ol_o_id": o_id,
            "ol_number": number, "ol_i_id": i_id,
            "ol_delivery_d": 0, "ol_quantity": quantity,
            "ol_amount": quantity * item["i_price"],
            "ol_dist_info": "dist-info-" + str(d_id).rjust(13, "0"),
        })
    return o_id


def new_order_remote_branch(
        ctx, stock_updates: Tuple[Tuple[int, int, int], ...]) -> int:
    """Remote branch of a distributed New-Order: apply the stock
    updates this partition owns (``(supply_w, i_id, quantity)``)."""
    for supply_w, i_id, quantity in stock_updates:
        _consume_stock(ctx, supply_w, i_id, quantity)
    return len(stock_updates)


def _find_customer(ctx, w_id: int, d_id: int,
                   selector: Tuple[str, Any]) -> Tuple[Any, Dict]:
    """Resolve a customer by id or (spec rule) by last name, picking
    the middle match from the secondary index."""
    kind, value = selector
    if kind == "id":
        key = (w_id, d_id, value)
        customer = ctx.get("customer", key)
        if customer is None:
            raise TupleNotFoundError(f"customer {key}")
        return key, customer
    matches = ctx.get_secondary("customer", "by_name",
                                (w_id, d_id, value))
    if not matches:
        raise TupleNotFoundError(
            f"no customer named {value!r} in ({w_id}, {d_id})")
    key = matches[len(matches) // 2]
    return key, ctx.get("customer", key)


def payment_txn(ctx, w_id: int, d_id: int, selector: Tuple[str, Any],
                amount: float, history_id: int) -> None:
    """Record a customer payment against warehouse and district YTD."""
    warehouse = ctx.get("warehouse", w_id)
    ctx.update("warehouse", w_id, {"w_ytd": warehouse["w_ytd"] + amount})
    district = ctx.get("district", (w_id, d_id))
    ctx.update("district", (w_id, d_id),
               {"d_ytd": district["d_ytd"] + amount})
    key, customer = _find_customer(ctx, w_id, d_id, selector)
    ctx.update("customer", key, {
        "c_balance": customer["c_balance"] - amount,
        "c_ytd_payment": customer["c_ytd_payment"] + amount,
        "c_payment_cnt": customer["c_payment_cnt"] + 1,
    })
    ctx.insert("history", {
        "h_id": history_id, "h_c_w_id": w_id, "h_c_d_id": d_id,
        "h_c_id": key[2], "h_amount": amount,
        "h_data": "payment",
    })


def order_status_txn(ctx, w_id: int, d_id: int,
                     c_id: int) -> Optional[Dict[str, Any]]:
    """Read a customer's most recent order and its order lines."""
    customer = ctx.get("customer", (w_id, d_id, c_id))
    assert customer is not None
    order_keys = ctx.get_secondary("orders", "by_customer",
                                   (w_id, d_id, c_id))
    if not order_keys:
        return None
    last_key = max(order_keys)
    order = ctx.get("orders", last_key)
    lines = list(ctx.scan(
        "order_line",
        lo=(w_id, d_id, last_key[2], 0),
        hi=(w_id, d_id, last_key[2], _MAX_ORDER_ID)))
    return {"order": order, "lines": [values for __, values in lines]}


def delivery_txn(ctx, w_id: int, districts: int,
                 delivery_d: int) -> int:
    """Deliver the oldest undelivered order in every district."""
    delivered = 0
    for d_id in range(1, districts + 1):
        pending = list(ctx.scan(
            "new_order",
            lo=(w_id, d_id, 0), hi=(w_id, d_id, _MAX_ORDER_ID)))
        if not pending:
            continue
        no_key, __ = pending[0]
        o_id = no_key[2]
        ctx.delete("new_order", no_key)
        order = ctx.get("orders", (w_id, d_id, o_id))
        ctx.update("orders", (w_id, d_id, o_id),
                   {"o_carrier_id": 1 + (delivery_d % 10)})
        total = 0.0
        for ol_key, line in list(ctx.scan(
                "order_line", lo=(w_id, d_id, o_id, 0),
                hi=(w_id, d_id, o_id, _MAX_ORDER_ID))):
            ctx.update("order_line", ol_key,
                       {"ol_delivery_d": delivery_d})
            total += line["ol_amount"]
        customer_key = (w_id, d_id, order["o_c_id"])
        customer = ctx.get("customer", customer_key)
        ctx.update("customer", customer_key,
                   {"c_balance": customer["c_balance"] + total})
        delivered += 1
    return delivered


def stock_level_txn(ctx, w_id: int, d_id: int, threshold: int) -> int:
    """Count recently-ordered items whose stock is below threshold."""
    district = ctx.get("district", (w_id, d_id))
    next_o_id = district["d_next_o_id"]
    recent_lines = ctx.scan(
        "order_line",
        lo=(w_id, d_id, max(1, next_o_id - 20), 0),
        hi=(w_id, d_id, next_o_id, 0))
    item_ids = {line["ol_i_id"] for __, line in recent_lines}
    low = 0
    for i_id in item_ids:
        stock = ctx.get("stock", (w_id, i_id))
        if stock is not None and stock["s_quantity"] < threshold:
            low += 1
    return low
