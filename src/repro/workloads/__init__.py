"""Workloads: YCSB and TPC-C (Section 5.1), the TPC-C consistency
audit, and the HTAP extension (Appendix D)."""

from .distributions import HotspotDistribution
from .htap import HTAPConfig, HTAPWorkload
from .tpcc import TPCCConfig, TPCCWorkload
from .tpcc_audit import audit_tpcc
from .ycsb import (MIXTURES, SKEWS, YCSBConfig, YCSBWorkload,
                   YCSB_MIXTURE_NAMES)

__all__ = [
    "HTAPConfig",
    "HTAPWorkload",
    "HotspotDistribution",
    "MIXTURES",
    "SKEWS",
    "TPCCConfig",
    "TPCCWorkload",
    "YCSBConfig",
    "YCSBWorkload",
    "YCSB_MIXTURE_NAMES",
    "audit_tpcc",
]
