"""TPC-C consistency audit.

Adaptations of the TPC-C specification's consistency conditions,
usable as invariant checks after any run (including across crash and
recovery):

* **C1** — for each warehouse, ``W_YTD`` equals the sum of its
  districts' ``D_YTD`` (payments update both in one transaction).
* **C2** — for each district, ``d_next_o_id - 1`` equals the maximum
  order id among its orders (and no order exceeds it).
* **C3** — every NEW-ORDER row references an existing order, and its
  order id does not exceed the district's ``d_next_o_id - 1``.
* **C4** — for each order, ``o_ol_cnt`` equals the number of its
  order-line rows.
"""

from __future__ import annotations

from typing import Any, Dict, List

from ..core.database import Database
from .tpcc import TPCCConfig, TPCCWorkload

_MAX = 10 ** 9


def audit_tpcc(db: Database, config: TPCCConfig,
               partitions: int = 1) -> List[str]:
    """Run all consistency conditions; returns violation descriptions
    (empty list == consistent)."""
    workload = TPCCWorkload(config, partitions=partitions)
    violations: List[str] = []
    for w_id in range(1, config.warehouses + 1):
        pid = workload.partition_of(w_id)
        violations.extend(_audit_warehouse(db, config, w_id, pid))
    return violations


def _audit_warehouse(db: Database, config: TPCCConfig, w_id: int,
                     pid: int) -> List[str]:
    violations: List[str] = []
    warehouse = db.get("warehouse", w_id, partition=pid)
    if warehouse is None:
        return [f"warehouse {w_id} missing"]

    district_ytd_total = 0.0
    for d_id in range(1, config.districts_per_warehouse + 1):
        district = db.get("district", (w_id, d_id), partition=pid)
        if district is None:
            violations.append(f"district ({w_id},{d_id}) missing")
            continue
        district_ytd_total += district["d_ytd"]
        violations.extend(_audit_district(db, w_id, d_id, district, pid))

    if abs(warehouse["w_ytd"] - district_ytd_total) > 1e-6:
        violations.append(
            f"C1: warehouse {w_id} w_ytd={warehouse['w_ytd']:.2f} != "
            f"sum(d_ytd)={district_ytd_total:.2f}")
    return violations


def _audit_district(db: Database, w_id: int, d_id: int,
                    district: Dict[str, Any], pid: int) -> List[str]:
    violations: List[str] = []
    next_o_id = district["d_next_o_id"]

    def scan(table, width=3):
        lo = (w_id, d_id, 0) if width == 3 else (w_id, d_id, 0, 0)
        hi = (w_id, d_id, _MAX) if width == 3 \
            else (w_id, d_id, _MAX, 0)
        if getattr(db, "is_sharded", False):
            # The sharded facade cannot ship closures; its merged
            # range scan is equivalent here because the key range is
            # bounded to one warehouse (= one partition).
            return db.scan(table, lo, hi)
        return db.execute(
            lambda ctx: list(ctx.scan(table, lo=lo, hi=hi)),
            partition=pid)

    orders = scan("orders")
    order_ids = {key[2] for key, __ in orders}
    if orders:
        max_o_id = max(order_ids)
        if max_o_id != next_o_id - 1:
            violations.append(
                f"C2: district ({w_id},{d_id}) next_o_id={next_o_id} "
                f"but max order id is {max_o_id}")

    for key, __ in scan("new_order"):
        o_id = key[2]
        if o_id not in order_ids:
            violations.append(
                f"C3: new_order ({w_id},{d_id},{o_id}) has no order")
        if o_id > next_o_id - 1:
            violations.append(
                f"C3: new_order ({w_id},{d_id},{o_id}) beyond "
                f"next_o_id={next_o_id}")

    lines_per_order: Dict[int, int] = {}
    for key, __ in scan("order_line", width=4):
        lines_per_order[key[2]] = lines_per_order.get(key[2], 0) + 1
    for key, values in orders:
        o_id = key[2]
        expected = values["o_ol_cnt"]
        actual = lines_per_order.get(o_id, 0)
        if expected != actual:
            violations.append(
                f"C4: order ({w_id},{d_id},{o_id}) o_ol_cnt="
                f"{expected} but {actual} order lines")
    return violations
