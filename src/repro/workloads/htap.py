"""HTAP workload extension: OLTP mixed with analytical range scans.

The paper's future-work discussion (Appendix D) calls out "methods for
supporting hybrid workloads (i.e., OLTP + OLAP) on NVM". This workload
takes a first step: the YCSB table served by a mixture of point
transactions and periodic analytical queries — a range aggregate over
a configurable fraction of the key space. The log-structured engines'
read amplification shows up sharply here, because every scanned tuple
must be coalesced across LSM runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

from ..core.database import Database
from ..errors import WorkloadError
from ..sim.rng import derive_rng
from .ycsb import NUM_VALUE_COLUMNS, YCSBConfig, YCSBWorkload


@dataclass(frozen=True)
class HTAPConfig:
    """Mixed OLTP/OLAP parameters."""

    num_tuples: int = 2000
    #: Fraction of transactions that are analytical scans.
    scan_fraction: float = 0.05
    #: Fraction of the key space each analytical query covers.
    scan_coverage: float = 0.10
    update_fraction: float = 0.45
    seed: int = 53

    def __post_init__(self) -> None:
        if not 0.0 <= self.scan_fraction <= 1.0:
            raise WorkloadError("scan_fraction must be in [0, 1]")
        if not 0.0 < self.scan_coverage <= 1.0:
            raise WorkloadError("scan_coverage must be in (0, 1]")
        if self.update_fraction + self.scan_fraction > 1.0:
            raise WorkloadError("fractions exceed 1.0")


class HTAPWorkload:
    """OLTP point operations + analytical range aggregates."""

    TABLE = YCSBWorkload.TABLE

    def __init__(self, config: HTAPConfig) -> None:
        self.config = config
        self._ycsb = YCSBWorkload(YCSBConfig(
            num_tuples=config.num_tuples, mixture="balanced",
            skew="low", seed=config.seed))
        self._rng = derive_rng(config.seed, "htap", "ops")

    def load(self, db: Database) -> int:
        return self._ycsb.load(db)

    def operations(self, count: int) -> Iterator[Tuple[str, int]]:
        """Yield (kind, key) where kind is read/update/scan."""
        config = self.config
        for __ in range(count):
            roll = self._rng.random()
            key = self._rng.randrange(config.num_tuples)
            if roll < config.scan_fraction:
                yield "scan", key
            elif roll < config.scan_fraction + config.update_fraction:
                yield "update", key
            else:
                yield "read", key

    def run(self, db: Database, num_txns: int) -> Dict[str, int]:
        """Execute the mixed workload; returns per-kind counts."""
        counts = {"read": 0, "update": 0, "scan": 0}
        span = max(1, int(self.config.num_tuples
                          * self.config.scan_coverage))
        for kind, key in self.operations(num_txns):
            if kind == "read":
                db.execute(_read_txn, self.TABLE, key, partition=0)
            elif kind == "update":
                field = f"field{self._rng.randrange(NUM_VALUE_COLUMNS)}"
                db.execute(_update_txn, self.TABLE, key, field,
                           "h" * 100, partition=0)
            else:
                lo = min(key, self.config.num_tuples - span)
                db.execute(_scan_txn, self.TABLE, lo, lo + span,
                           partition=0)
            counts[kind] += 1
        db.flush()
        return counts


def _read_txn(ctx, table: str, key: int):
    return ctx.get(table, key)


def _update_txn(ctx, table: str, key: int, field: str,
                value: str) -> None:
    ctx.update(table, key, {field: value})


def _scan_txn(ctx, table: str, lo: int, hi: int) -> int:
    """Analytical query: aggregate total payload length over a range."""
    total = 0
    for __, values in ctx.scan(table, lo=lo, hi=hi):
        total += len(values["field0"])
    return total
