"""Emulated NVM platform: device, CPU cache, allocator, and filesystem.

This package is the software substitute for the Intel Labs NVM hardware
emulator used in the paper (Section 2.2). It provides the same two
interfaces the emulator exposes:

* the **allocator interface** (:class:`~repro.nvm.allocator.NVMAllocator`)
  — POSIX-malloc-style allocation directly on NVM, with a ``sync``
  durability primitive and non-volatile pointers; and
* the **filesystem interface**
  (:class:`~repro.nvm.filesystem.NVMFilesystem`) — PMFS-like files with
  ``read``/``write``/``fsync``, paying a kernel crossing and one buffer
  copy per call.

All accesses are charged simulated nanoseconds against a
:class:`~repro.sim.clock.SimClock` and counted as NVM loads/stores,
reproducing what the hardware emulator measures with latency throttling
and ``perf`` counters.
"""

from .allocator import Allocation, NVMAllocator
from .cache import CPUCache
from .device import NVMDevice
from .filesystem import NVMFile, NVMFilesystem
from .memory import NVMMemory
from .platform import Platform
from .pointers import NULL_PTR, NVPtr

__all__ = [
    "Allocation",
    "CPUCache",
    "NVMAllocator",
    "NVMDevice",
    "NVMFile",
    "NVMFilesystem",
    "NVMMemory",
    "NULL_PTR",
    "NVPtr",
    "Platform",
]
