"""PMFS-like NVM-backed filesystem interface (Section 2.2).

The emulator exposes an NVM-backed volume through a filesystem that is
optimized for persistent memory: file I/O needs only **one** copy
between the file and the user buffer (a block filesystem would need
two), but every call still crosses the kernel's VFS layer. This is why
the allocator interface delivers ~10-12x higher durable write bandwidth
for small chunks (Fig. 1) — the filesystem pays a syscall plus a buffer
copy per call, while a userspace store pays neither.

Cost model per call::

    write(n)  = syscall + copies_per_write * n * copy_cost + bulk store
    read(n)   = syscall + n * copy_cost + bulk load
    fsync()   = syscall + flush of bytes written since the last fsync
                + fence

Crash model: writes that were not yet covered by an ``fsync`` are rolled
back (the engines in this testbed never rely on un-synced file data, so
the conservative model is exact for them).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..config import FilesystemConfig
from ..errors import FileExistsInNVMError, FileNotFoundInNVMError
from ..sim.clock import SimClock
from ..sim.stats import StatsCollector
from .device import NVMDevice


class NVMFile:
    """A file on the NVM filesystem."""

    __slots__ = ("name", "data", "_pending", "_durable_length",
                 "pending_bytes")

    def __init__(self, name: str) -> None:
        self.name = name
        self.data = bytearray()
        #: (offset, old_bytes) undo records for writes since last fsync.
        self._pending: List[Tuple[int, bytes]] = []
        self._durable_length = 0
        #: Bytes written since the last fsync (what fsync must flush).
        self.pending_bytes = 0

    @property
    def size(self) -> int:
        return len(self.data)

    @property
    def durable_size(self) -> int:
        return self._durable_length

    def _record_write(self, offset: int, old_length: int,
                      written_length: int) -> None:
        old = bytes(self.data[offset:offset + old_length])
        self._pending.append((offset, old))
        self.pending_bytes += written_length

    def _mark_durable(self) -> None:
        self._pending.clear()
        self._durable_length = len(self.data)
        self.pending_bytes = 0

    def _rollback_pending(self) -> None:
        for offset, old in reversed(self._pending):
            end = offset + len(old)
            if offset <= len(self.data):
                self.data[offset:end] = old
        del self.data[self._durable_length:]
        self._pending.clear()
        self.pending_bytes = 0


class NVMFilesystem:
    """Filesystem interface over the emulated NVM."""

    def __init__(self, config: FilesystemConfig, device: NVMDevice,
                 clock: SimClock, stats: StatsCollector) -> None:
        self.config = config
        self._device = device
        self._clock = clock
        self._stats = stats
        self._files: Dict[str, NVMFile] = {}

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------

    def _charge_syscall(self) -> None:
        self._stats.bump("fs.syscalls")
        self._clock.advance(self.config.syscall_latency_ns)

    def _charge_copy(self, nbytes: int, copies: int = 1) -> None:
        self._clock.advance(copies * nbytes * self.config.copy_ns_per_byte)

    # ------------------------------------------------------------------
    # File operations
    # ------------------------------------------------------------------

    def create(self, name: str, exist_ok: bool = False) -> NVMFile:
        """Create an empty file."""
        self._charge_syscall()
        if name in self._files:
            if exist_ok:
                return self._files[name]
            raise FileExistsInNVMError(name)
        file = NVMFile(name)
        self._files[name] = file
        return file

    def open(self, name: str, create: bool = False) -> NVMFile:
        """Open an existing file (optionally creating it)."""
        self._charge_syscall()
        file = self._files.get(name)
        if file is None:
            if not create:
                raise FileNotFoundInNVMError(name)
            file = NVMFile(name)
            self._files[name] = file
        return file

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._charge_syscall()
        if name not in self._files:
            raise FileNotFoundInNVMError(name)
        del self._files[name]

    def list_files(self, prefix: str = "") -> List[str]:
        return sorted(name for name in self._files
                      if name.startswith(prefix))

    # ------------------------------------------------------------------
    # I/O
    # ------------------------------------------------------------------

    def write(self, file: NVMFile, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` (extends the file if needed)."""
        self._charge_syscall()
        self._charge_copy(len(data), self.config.copies_per_write)
        if offset > len(file.data):
            file.data.extend(b"\x00" * (offset - len(file.data)))
        overwritten = min(len(data), len(file.data) - offset)
        file._record_write(offset, overwritten, len(data))
        end = offset + len(data)
        file.data[offset:end] = data
        self._stats.bump("fs.writes")
        self._stats.bump("fs.bytes_written", len(data))

    def append(self, file: NVMFile, data: bytes) -> int:
        """Append ``data``; returns the offset it was written at."""
        offset = len(file.data)
        self.write(file, offset, data)
        return offset

    def read(self, file: NVMFile, offset: int, size: int) -> bytes:
        """Read up to ``size`` bytes at ``offset``."""
        self._charge_syscall()
        data = bytes(file.data[offset:offset + size])
        self._charge_copy(len(data))
        if data:
            self._device.charge_bulk_load(len(data))
        self._stats.bump("fs.reads")
        self._stats.bump("fs.bytes_read", len(data))
        return data

    def read_all(self, file: NVMFile) -> bytes:
        return self.read(file, 0, len(file.data))

    def charge_page_read(self, size: int) -> None:
        """Charge the cost of reading ``size`` bytes from a file
        without returning data (page-cache miss accounting for callers
        that keep deserialized pages in memory)."""
        self._charge_syscall()
        self._charge_copy(size)
        self._device.charge_bulk_load(size)
        self._stats.bump("fs.reads")
        self._stats.bump("fs.bytes_read", size)

    def fsync(self, file: NVMFile) -> None:
        """Make all pending writes to ``file`` durable."""
        self._charge_syscall()
        pending = file.pending_bytes
        if pending:
            # The kernel flushes the dirtied lines to NVM and fences.
            self._device.charge_bulk_store(pending)
        self._clock.advance(self._fence_ns())
        file._mark_durable()
        self._stats.bump("fs.fsyncs")

    def _fence_ns(self) -> float:
        return 20.0

    def truncate(self, file: NVMFile, length: int = 0) -> None:
        """Truncate the file to ``length`` bytes, durably."""
        self._charge_syscall()
        del file.data[length:]
        file._mark_durable()
        self._stats.bump("fs.truncates")

    # ------------------------------------------------------------------
    # Failure model & accounting
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Roll every file back to its last fsync'd state."""
        for file in self._files.values():
            file._rollback_pending()

    def total_bytes(self, prefix: str = "") -> int:
        """Total file bytes, optionally restricted to a name prefix."""
        return sum(file.size for name, file in self._files.items()
                   if name.startswith(prefix))

    def bytes_by_prefix(self, prefixes: Dict[str, str]) -> Dict[str, int]:
        """Aggregate file sizes into categories.

        ``prefixes`` maps category name -> file-name prefix; files not
        matching any prefix are reported under ``"other"``.
        """
        totals = {category: 0 for category in prefixes}
        totals.setdefault("other", 0)
        for name, file in self._files.items():
            for category, prefix in prefixes.items():
                if name.startswith(prefix):
                    totals[category] += file.size
                    break
            else:
                totals["other"] += file.size
        return totals
