"""NVM-aware memory allocator (Section 2.3).

The allocator satisfies the paper's two requirements:

1. **Durability** — a ``sync`` primitive (CLFLUSH + SFENCE through the
   cache model) that makes a region's pending writes durable.
2. **Naming** — allocation addresses are stable across restarts
   (non-volatile pointers), and :meth:`resolve` maps a pointer back to
   its allocation after recovery.

It follows a *rotating best-fit* policy (the paper extends libpmem the
same way): the free-list search starts from a rotating cursor so that
repeated alloc/free cycles spread allocations across the device, which
levels wear. After a crash, the allocator "reclaims memory that has not
been persisted and restores its internal metadata to a consistent
state" — allocations never passed to :meth:`persist` are freed.

Two kinds of allocation are supported:

* ``bytes`` — a byte-backed region in the device address space,
  accessed via :class:`~repro.nvm.memory.NVMMemory` load/store.
* ``object`` — an *accounting* region that carries a live Python object
  (index nodes, MemTable entries...). Accesses are charged through the
  cache model with ``touch_read``/``touch_write``; crash consistency of
  the object's content is the owning data structure's responsibility
  (registered via platform crash hooks).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import InvalidAddressError, OutOfMemoryError
from ..sim.stats import StatsCollector
from .memory import NVMMemory
from .pointers import NVPtr

#: Accounting overhead per allocation (allocator header), bytes.
HEADER_SIZE = 16

_ALIGNMENT = 8


def _align_up(value: int, alignment: int = _ALIGNMENT) -> int:
    return (value + alignment - 1) // alignment * alignment


class Allocation:
    """A live allocation returned by :meth:`NVMAllocator.malloc`."""

    __slots__ = ("addr", "size", "tag", "kind", "persisted", "obj",
                 "obj_size")

    def __init__(self, addr: NVPtr, size: int, tag: str, kind: str) -> None:
        self.addr = addr
        self.size = size
        self.tag = tag
        self.kind = kind
        #: Whether :meth:`NVMAllocator.persist` has marked this region
        #: as surviving allocator recovery.
        self.persisted = False
        self.obj: object = None
        self.obj_size = size

    def __repr__(self) -> str:
        flag = "P" if self.persisted else "-"
        return (f"Allocation(addr={self.addr:#x}, size={self.size}, "
                f"tag={self.tag!r}, kind={self.kind}, {flag})")


class NVMAllocator:
    """Rotating best-fit allocator over the emulated NVM device."""

    def __init__(self, memory: NVMMemory, capacity_bytes: int,
                 stats: StatsCollector, tracer=None) -> None:
        self._memory = memory
        self._stats = stats
        self._tracer = tracer
        #: Persistence-ordering observer (malloc/persist/free events);
        #: ``None`` means "off" — one attribute check per call.
        self.observer = None
        self.capacity_bytes = capacity_bytes
        # Reserve [0, _ALIGNMENT) so that 0 is never a valid pointer.
        self._free: List[Tuple[int, int]] = [
            (_ALIGNMENT, capacity_bytes - _ALIGNMENT)]
        self._cursor = 0
        self._allocations: Dict[NVPtr, Allocation] = {}
        self._bytes_by_tag: Dict[str, int] = {}
        self._peak_by_tag: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def malloc(self, size: int, tag: str = "other",
               kind: str = "bytes") -> Allocation:
        """Allocate ``size`` bytes tagged ``tag``.

        ``kind`` is ``"bytes"`` for byte-backed regions or ``"object"``
        for accounting regions carrying a Python object.
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if kind not in ("bytes", "object"):
            raise ValueError(f"unknown allocation kind {kind!r}")
        needed = _align_up(size + HEADER_SIZE)
        index = self._find_best_fit(needed)
        if index is None:
            raise OutOfMemoryError(
                f"cannot allocate {size} bytes "
                f"({self.free_bytes} free, fragmented)")
        base, block_size = self._free[index]
        if block_size == needed:
            del self._free[index]
        else:
            self._free[index] = (base + needed, block_size - needed)
        addr = base + HEADER_SIZE
        allocation = Allocation(addr, size, tag, kind)
        self._allocations[addr] = allocation
        self._account(tag, needed)
        self._stats.bump("alloc.malloc")
        # Writing the allocation header touches NVM.
        self._memory.touch_write(base, HEADER_SIZE)
        if self.observer is not None:
            self.observer.on_malloc(allocation)
        return allocation

    def malloc_object(self, obj: object, size: int,
                      tag: str = "other") -> Allocation:
        """Allocate an accounting region holding ``obj`` (``size`` is
        the object's accounted NVM footprint in bytes)."""
        allocation = self.malloc(size, tag=tag, kind="object")
        allocation.obj = obj
        return allocation

    def _find_best_fit(self, needed: int) -> Optional[int]:
        """Best-fit search starting at the rotating cursor."""
        count = len(self._free)
        if count == 0:
            return None
        best_index: Optional[int] = None
        best_size = None
        for offset in range(count):
            index = (self._cursor + offset) % count
            __, block_size = self._free[index]
            if block_size >= needed and (best_size is None
                                         or block_size < best_size):
                best_index, best_size = index, block_size
                if block_size == needed:
                    break
        if best_index is not None:
            self._cursor = (best_index + 1) % max(count, 1)
        return best_index

    def free(self, allocation: Allocation) -> None:
        """Return ``allocation``'s region to the free list."""
        live = self._allocations.pop(allocation.addr, None)
        if live is not allocation:
            raise InvalidAddressError(
                f"double free or foreign allocation at {allocation.addr:#x}")
        base = allocation.addr - HEADER_SIZE
        needed = _align_up(allocation.size + HEADER_SIZE)
        self._insert_free(base, needed)
        self._account(allocation.tag, -needed)
        self._stats.bump("alloc.free")
        allocation.obj = None
        if self.observer is not None:
            self.observer.on_free(allocation)

    def _insert_free(self, base: int, size: int) -> None:
        """Insert a free block, coalescing with adjacent blocks."""
        free = self._free
        lo, hi = 0, len(free)
        while lo < hi:
            mid = (lo + hi) // 2
            if free[mid][0] < base:
                lo = mid + 1
            else:
                hi = mid
        free.insert(lo, (base, size))
        # Coalesce with successor, then predecessor.
        if lo + 1 < len(free) and base + size == free[lo + 1][0]:
            free[lo] = (base, size + free[lo + 1][1])
            del free[lo + 1]
        if lo > 0 and free[lo - 1][0] + free[lo - 1][1] == free[lo][0]:
            free[lo - 1] = (free[lo - 1][0],
                            free[lo - 1][1] + free[lo][1])
            del free[lo]

    # ------------------------------------------------------------------
    # Durability & naming
    # ------------------------------------------------------------------

    def persist(self, allocation: Allocation) -> None:
        """Mark the allocation as durable allocator metadata: it will
        survive allocator recovery after a crash. Idempotent — a
        second call on an already-persisted allocation is a no-op, so
        repeated persists cannot inflate the ``alloc.persist`` stat."""
        if allocation.persisted:
            return
        allocation.persisted = True
        self._stats.bump("alloc.persist")
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.event("alloc.persist", size=allocation.size,
                               tag=allocation.tag)
        if self.observer is not None:
            self.observer.on_persist(allocation)

    def persist_all(self) -> int:
        """Persist every live allocation (bulk-load epilogue / orderly
        shutdown helper). Idempotent: already-persisted allocations are
        skipped, so calling it twice persists nothing the second time.
        Returns how many allocations transitioned to persisted."""
        transitioned = 0
        for allocation in self._allocations.values():
            if not allocation.persisted:
                self.persist(allocation)
                transitioned += 1
        return transitioned

    def sync(self, allocation: Allocation, offset: int = 0,
             size: Optional[int] = None) -> None:
        """Durably flush (part of) the allocation's region and mark the
        allocation persisted (Section 2.3 sync primitive)."""
        if size is None:
            size = allocation.size - offset
        if offset < 0 or offset + size > allocation.size:
            raise InvalidAddressError(
                f"sync range [{offset}, {offset + size}) outside "
                f"allocation of {allocation.size} bytes")
        self._memory.sync(allocation.addr + offset, size)
        if not allocation.persisted:
            allocation.persisted = True
            if self.observer is not None:
                self.observer.on_persist(allocation)
        self._stats.bump("alloc.sync")

    def sync_many(self, allocations: Sequence[Allocation],
                  extra_ranges: Sequence[Tuple[int, int]] = ()) -> None:
        """Durably flush several allocations (plus optional raw
        ``(addr, size)`` ranges, e.g. the fixed slot the allocations
        hang off) as one batched sync: each distinct cache line is
        flushed once and a single fence orders them all. Marks every
        allocation persisted, like :meth:`sync`."""
        ranges = list(extra_ranges)
        ranges.extend((allocation.addr, allocation.size)
                      for allocation in allocations)
        if not ranges:
            return
        self._memory.sync_ranges(ranges)
        for allocation in allocations:
            if not allocation.persisted:
                allocation.persisted = True
                if self.observer is not None:
                    self.observer.on_persist(allocation)
        if allocations:
            self._stats.bump("alloc.sync", len(allocations))

    def resolve(self, addr: NVPtr) -> Allocation:
        """Map a non-volatile pointer back to its live allocation."""
        try:
            return self._allocations[addr]
        except KeyError:
            raise InvalidAddressError(
                f"no live allocation at {addr:#x}") from None

    def resolve_optional(self, addr: NVPtr) -> Optional[Allocation]:
        return self._allocations.get(addr)

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash_recover(self) -> int:
        """Post-crash allocator recovery: reclaim every allocation that
        was never persisted; return how many were reclaimed."""
        doomed = [allocation for allocation in self._allocations.values()
                  if not allocation.persisted]
        for allocation in doomed:
            self.free(allocation)
        self._stats.bump("alloc.crash_reclaimed", len(doomed))
        return len(doomed)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def _account(self, tag: str, delta: int) -> None:
        current = self._bytes_by_tag.get(tag, 0) + delta
        self._bytes_by_tag[tag] = current
        if current > self._peak_by_tag.get(tag, 0):
            self._peak_by_tag[tag] = current

    @property
    def allocated_bytes(self) -> int:
        return sum(self._bytes_by_tag.values())

    @property
    def free_bytes(self) -> int:
        return sum(size for __, size in self._free)

    def bytes_by_tag(self) -> Dict[str, int]:
        """Live allocated bytes per tag (footprint accounting)."""
        return dict(self._bytes_by_tag)

    def peak_bytes_by_tag(self) -> Dict[str, int]:
        """Peak allocated bytes per tag."""
        return dict(self._peak_by_tag)

    @property
    def live_allocations(self) -> int:
        return len(self._allocations)
