"""Optional DRAM tier for hybrid storage hierarchies (Appendix D).

The paper's future-work discussion notes that "a hybrid DRAM and NVM
storage hierarchy is a viable alternative, particularly in case of
high NVM latency technologies". This module adds a volatile DRAM
region to the platform: allocations placed on the DRAM tier are read
and written at DRAM latency/bandwidth, and everything on the tier is
lost in a crash — no sync primitive exists for it.

Engines opt in per allocation (``tier="dram"``); the default remains
the NVM-only hierarchy the paper evaluates.
"""

from __future__ import annotations

from typing import Dict

from ..config import DRAM_BANDWIDTH_BYTES_PER_NS, DRAM_LATENCY_NS
from ..errors import InvalidAddressError, OutOfMemoryError
from ..sim.clock import SimClock
from ..sim.stats import StatsCollector


class DRAMTier:
    """A volatile scratch tier charged at DRAM speed.

    Much simpler than the NVM path: no persistence, no flush ordering,
    no crash survivors — just capacity accounting and access charges
    (DRAM latency per first touch of an access, bandwidth for the
    bytes). The CPU cache in front of DRAM is approximated by charging
    a fraction of accesses (hot structures mostly hit cache).
    """

    def __init__(self, capacity_bytes: int, clock: SimClock,
                 stats: StatsCollector,
                 hit_fraction: float = 0.9) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if not 0.0 <= hit_fraction < 1.0:
            raise ValueError("hit_fraction must be in [0, 1)")
        self.capacity_bytes = capacity_bytes
        self._clock = clock
        self._stats = stats
        self._hit_fraction = hit_fraction
        self._used = 0
        self._allocations: Dict[int, int] = {}  # addr -> size
        self._next_addr = 8
        self._access_counter = 0

    def malloc(self, size: int) -> int:
        """Allocate ``size`` bytes of DRAM; returns its address."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        if self._used + size > self.capacity_bytes:
            raise OutOfMemoryError(
                f"DRAM tier full ({self._used}/{self.capacity_bytes})")
        addr = self._next_addr
        self._next_addr += (size + 7) // 8 * 8
        self._allocations[addr] = size
        self._used += size
        self._stats.bump("dram.malloc")
        return addr

    def free(self, addr: int) -> None:
        size = self._allocations.pop(addr, None)
        if size is None:
            raise InvalidAddressError(f"no DRAM allocation at {addr:#x}")
        self._used -= size

    def touch(self, addr: int, size: int) -> None:
        """Charge one access of ``size`` bytes.

        Every ``1/(1-hit_fraction)``-th access pays DRAM latency (the
        rest hit the CPU cache); all accesses pay the bandwidth term.
        """
        self._access_counter += 1
        period = max(1, round(1.0 / (1.0 - self._hit_fraction)))
        if self._access_counter % period == 0:
            self._clock.advance(DRAM_LATENCY_NS)
        self._clock.advance(size / DRAM_BANDWIDTH_BYTES_PER_NS)
        self._stats.bump("dram.accesses")

    def crash(self) -> int:
        """Power failure: everything on the tier is gone."""
        lost = len(self._allocations)
        self._allocations.clear()
        self._used = 0
        return lost

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def live_allocations(self) -> int:
        return len(self._allocations)


class DRAMBackedIndexCostModel:
    """Index cost model placing nodes on the DRAM tier.

    Drop-in alternative to
    :class:`~repro.index.cost.NVMIndexCostModel` for hybrid-hierarchy
    engines that keep their volatile indexes in DRAM (Appendix D).
    """

    def __init__(self, tier: DRAMTier) -> None:
        self._tier = tier
        self._nodes: Dict[int, int] = {}  # node_id -> dram addr
        self._sizes: Dict[int, int] = {}

    def node_allocated(self, node_id: int, size: int) -> None:
        self._nodes[node_id] = self._tier.malloc(size)
        self._sizes[node_id] = size
        self._tier.touch(self._nodes[node_id], size)

    def node_freed(self, node_id: int) -> None:
        addr = self._nodes.pop(node_id, None)
        self._sizes.pop(node_id, None)
        if addr is not None and addr in self._tier._allocations:
            self._tier.free(addr)

    def _touch(self, node_id: int, size: int) -> None:
        addr = self._nodes.get(node_id)
        if addr is not None:
            self._tier.touch(addr, min(size, self._sizes[node_id]))

    def node_probed(self, node_id: int, size: int) -> None:
        self._touch(node_id, min(size, 512))

    def node_read(self, node_id: int, size: int) -> None:
        self._touch(node_id, size)

    def node_written(self, node_id: int, size: int) -> None:
        self._touch(node_id, size)

    def sync_node(self, node_id: int, offset: int, size: int) -> None:
        raise InvalidAddressError(
            "DRAM-tier structures cannot be made durable")

    def drop_all(self) -> None:
        for node_id in list(self._nodes):
            self.node_freed(node_id)

    def total_bytes(self) -> int:
        return sum(self._sizes.values())
