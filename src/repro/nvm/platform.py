"""The emulated platform: clock, stats, device, cache, allocator, FS.

A :class:`Platform` is the simulator's equivalent of one DBMS process
running on the Intel Labs hardware emulator. It owns the simulated
clock, the NVM device and the CPU cache in front of it, the NVM-aware
allocator, and the PMFS-backed filesystem — and it implements the two
restart events from the paper's evaluation:

* :meth:`crash` — power failure / ``SIGKILL``: volatile CPU-cache
  contents are (mostly) lost, un-fsync'd file writes are rolled back,
  unpersisted allocations are reclaimed, and registered crash hooks run
  so non-volatile data structures can discard unsynced state.
* :meth:`clean_shutdown` — orderly restart: the cache is drained first,
  so nothing is lost (used to separate "DBMS restart" from "OS
  restart" effects).
"""

from __future__ import annotations

from typing import Callable, List, Optional

import logging

from ..config import PlatformConfig
from ..fault.injector import FaultInjector
from ..obs.tracer import Tracer
from ..sim.clock import SimClock
from ..sim.rng import derive_rng
from ..sim.stats import StatsCollector
from .allocator import NVMAllocator
from .cache import CPUCache
from .device import NVMDevice
from .filesystem import NVMFilesystem
from .memory import NVMMemory

CrashHook = Callable[[], None]

logger = logging.getLogger("repro.platform")


class Platform:
    """One emulated NVM-only machine running the DBMS testbed."""

    def __init__(self, config: Optional[PlatformConfig] = None) -> None:
        self.config = config or PlatformConfig()
        self.clock = SimClock()
        self.stats = StatsCollector(self.clock)
        #: Span tracer (inactive unless an observability session
        #: activates it); engines cache a reference at construction.
        self.tracer = Tracer(self.clock)
        #: Observability hooks set by an attached session: a latency
        #: histogram fed by the partition executor, per-operation
        #: counters fed by the query executor, and the time-series
        #: sampler. None means "off" and costs one check per use.
        self.txn_latency = None
        self.op_counters = None
        self.sampler = None
        #: Telemetry heartbeat probe (see repro.obs.bus): called once
        #: per committed transaction when a live-telemetry session is
        #: attached. None means "off" and costs one check per commit.
        self.txn_probe = None
        self.device = NVMDevice(
            self.config.nvm_capacity_bytes, self.config.latency,
            self.clock, self.stats, line_size=self.config.cache.line_size,
            track_wear=self.config.track_wear)
        self._crash_rng = derive_rng(self.config.seed, "crash")
        self.cache = CPUCache(self.config.cache, self.device,
                              self.clock, self.stats, self._crash_rng)
        self.memory = NVMMemory(self.cache)
        self.allocator = NVMAllocator(
            self.memory, self.config.nvm_capacity_bytes, self.stats,
            tracer=self.tracer)
        self.filesystem = NVMFilesystem(
            self.config.filesystem, self.device, self.clock, self.stats)
        #: Optional volatile DRAM tier (hybrid hierarchy, Appendix D).
        self.dram = None
        if self.config.dram_capacity_bytes > 0:
            from .dram import DRAMTier
            self.dram = DRAMTier(self.config.dram_capacity_bytes,
                                 self.clock, self.stats)
        #: Fault-point switchboard (disabled by default; armed by crash
        #: campaigns); engines cache a reference at construction, like
        #: the tracer.
        self.faults = FaultInjector(stats=self.stats, tracer=self.tracer)
        #: Persistence-ordering checker attached to this platform
        #: (:class:`repro.analysis.ordering.OrderingChecker`); ``None``
        #: means no checking. Engines consult it on txn lifecycle
        #: events, the platform on crashes.
        self.ordering = None
        self._crash_hooks: List[CrashHook] = []
        self.crash_count = 0

    # ------------------------------------------------------------------

    def register_crash_hook(self, hook: CrashHook) -> None:
        """Register a callback run during :meth:`crash` so a
        non-volatile structure can drop unsynced state."""
        self._crash_hooks.append(hook)

    def unregister_crash_hook(self, hook: CrashHook) -> None:
        self._crash_hooks.remove(hook)

    def crash(self) -> None:
        """Simulate a power failure (or a ``SIGKILL`` of the DBMS)."""
        if self.ordering is not None:
            self.ordering.on_crash()
        self.cache.crash()
        self.filesystem.crash()
        self.allocator.crash_recover()
        if self.dram is not None:
            self.dram.crash()
        for hook in self._crash_hooks:
            hook()
        self.crash_count += 1
        self.stats.bump("platform.crashes")
        logger.info("platform crashed (count=%d)", self.crash_count)

    def clean_shutdown(self) -> None:
        """Orderly shutdown: drain the cache so nothing is lost."""
        self.cache.drain()

    # ------------------------------------------------------------------

    def storage_footprint(self) -> dict:
        """Live NVM bytes by allocator tag, plus total filesystem bytes."""
        footprint = self.allocator.bytes_by_tag()
        footprint["filesystem"] = self.filesystem.total_bytes()
        return footprint
