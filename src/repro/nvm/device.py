"""The emulated byte-addressable NVM device.

The device owns the raw byte array backing the allocator's address
space, the latency/bandwidth cost model, and the hardware-style
load/store counters that the paper reads with ``perf`` (Section 5.3).

Timing model: a cacheline **load** (miss serviced from NVM) costs the
profile's read latency. A cacheline **store** (writeback or flush
reaching NVM) is *posted*: "since the CPU uses a write-back cache for
NVM, the high latency of writes to NVM is not observed on every write
but the sustainable write bandwidth of NVM is lower compared to DRAM"
(Section 2.2) — so stores cost only the bandwidth term
``bytes / bandwidth`` (the emulator throttles DDR operations per
microsecond, exactly this). Ordering costs (CLFLUSH/SFENCE latency)
are charged by the cache model, not the device.
"""

from __future__ import annotations

from typing import Optional

from ..config import CACHE_LINE_SIZE, LatencyProfile
from ..errors import InvalidAddressError
from ..sim.clock import SimClock
from ..sim.stats import StatsCollector


class NVMDevice:
    """Byte-addressable emulated NVM with access accounting."""

    #: Granularity of the wear histogram (bytes per tracked segment).
    WEAR_SEGMENT_BYTES = 4096

    def __init__(self, capacity_bytes: int, latency: LatencyProfile,
                 clock: SimClock, stats: StatsCollector,
                 line_size: int = CACHE_LINE_SIZE,
                 track_wear: bool = False) -> None:
        if capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.latency = latency
        self.line_size = line_size
        self._clock = clock
        self._stats = stats
        self._data = bytearray(capacity_bytes)
        self.loads = 0       # cachelines loaded from NVM
        self.stores = 0      # cachelines stored to NVM
        self.bytes_loaded = 0
        self.bytes_stored = 0
        #: Optional per-segment store histogram: write endurance is
        #: the paper's Table 1 motivation, and wear leveling (NVMalloc
        #: [49]) needs evenness, not just totals.
        self._wear = ([0] * (-(-capacity_bytes
                               // self.WEAR_SEGMENT_BYTES))
                      if track_wear else None)

    # ------------------------------------------------------------------
    # Cost accounting (called by the CPU cache model)
    # ------------------------------------------------------------------

    def charge_load(self, lines: int = 1,
                    equivalent_lines: Optional[float] = None) -> None:
        """Account for ``lines`` cacheline loads serviced from NVM.

        ``equivalent_lines`` lets the cache model discount latency for
        prefetched sequential misses while still counting every line.
        """
        self.loads += lines
        nbytes = lines * self.line_size
        self.bytes_loaded += nbytes
        self._stats.bump("nvm.loads", lines)
        if equivalent_lines is None:
            equivalent_lines = lines
        self._clock.advance(
            equivalent_lines * self.latency.read_latency_ns)

    def charge_store(self, lines: int = 1,
                     addr: Optional[int] = None) -> None:
        """Account for ``lines`` posted cacheline stores reaching NVM
        (bandwidth-throttled, latency hidden by the write-back cache).
        ``addr`` feeds the optional wear histogram."""
        self.stores += lines
        nbytes = lines * self.line_size
        self.bytes_stored += nbytes
        self._stats.bump("nvm.stores", lines)
        if self._wear is not None and addr is not None:
            self._wear[addr // self.WEAR_SEGMENT_BYTES] += lines
        self._clock.advance(nbytes / self.latency.bandwidth_bytes_per_ns)

    def charge_bulk_store(self, nbytes: int) -> None:
        """Account for a bulk sequential store of ``nbytes``."""
        lines = -(-nbytes // self.line_size)
        self.stores += lines
        self.bytes_stored += nbytes
        self._stats.bump("nvm.stores", lines)
        self._clock.advance(nbytes / self.latency.bandwidth_bytes_per_ns)

    def charge_bulk_load(self, nbytes: int,
                         prefetch_discount: float = 0.25) -> None:
        """Account for a bulk sequential load of ``nbytes``: the first
        line pays full latency, prefetched followers are discounted,
        plus the bandwidth term."""
        lines = -(-nbytes // self.line_size)
        self.loads += lines
        self.bytes_loaded += nbytes
        self._stats.bump("nvm.loads", lines)
        equivalent = 1 + (lines - 1) * prefetch_discount
        self._clock.advance(
            equivalent * self.latency.read_latency_ns
            + nbytes / self.latency.bandwidth_bytes_per_ns)

    # ------------------------------------------------------------------
    # Raw data access (timing is handled by the cache layer)
    # ------------------------------------------------------------------

    def read_raw(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at ``addr`` without charging time."""
        self._check_range(addr, size)
        return bytes(self._data[addr:addr + size])

    def write_raw(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` without charging time."""
        self._check_range(addr, len(data))
        self._data[addr:addr + len(data)] = data

    def _check_range(self, addr: int, size: int) -> None:
        if addr < 0 or size < 0 or addr + size > self.capacity_bytes:
            raise InvalidAddressError(
                f"access [{addr}, {addr + size}) outside device "
                f"of {self.capacity_bytes} bytes")

    def reset_counters(self) -> None:
        self.loads = 0
        self.stores = 0
        self.bytes_loaded = 0
        self.bytes_stored = 0
        if self._wear is not None:
            self._wear = [0] * len(self._wear)

    def wear_histogram(self) -> "list[int]":
        """Per-4KB-segment store counts (requires ``track_wear``)."""
        if self._wear is None:
            raise ValueError("device built without track_wear=True")
        return list(self._wear)

    def wear_skew(self) -> float:
        """Max/mean ratio over written segments: 1.0 is perfectly even
        wear; large values mean hot spots that shorten device life."""
        if self._wear is None:
            raise ValueError("device built without track_wear=True")
        written = [count for count in self._wear if count]
        if not written:
            return 1.0
        return max(written) / (sum(written) / len(written))
