"""NVM technology characteristics (Table 1 of the paper).

These values compare emerging NVM technologies with DRAM, SSD, and HDD.
They are exposed so that the Table 1 benchmark can print the comparison
and so that latency profiles for specific technologies can be derived.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config import LatencyProfile


@dataclass(frozen=True)
class TechnologyProfile:
    """One column of Table 1."""

    name: str
    read_latency_ns: float
    write_latency_ns: float
    addressability: str  # "byte" or "block"
    volatile: bool
    energy_per_bit_pj: float
    endurance_writes: float

    def latency_profile(self) -> LatencyProfile:
        """A :class:`LatencyProfile` using this technology's latencies."""
        return LatencyProfile(
            name=self.name.lower(),
            read_latency_ns=self.read_latency_ns,
            write_latency_ns=self.write_latency_ns,
        )


#: Table 1 — Comparison of emerging NVM technologies with other storage
#: technologies [15, 27, 54, 49]. Latencies in ns, energy in pJ/bit,
#: endurance in writes per address.
TECHNOLOGIES: Dict[str, TechnologyProfile] = {
    "DRAM": TechnologyProfile("DRAM", 60, 60, "byte", True, 2.0, 1e16),
    "PCM": TechnologyProfile("PCM", 50, 150, "byte", False, 2.0, 1e10),
    "RRAM": TechnologyProfile("RRAM", 100, 100, "byte", False, 100.0, 1e8),
    "MRAM": TechnologyProfile("MRAM", 20, 20, "byte", False, 0.02, 1e15),
    "SSD": TechnologyProfile("SSD", 25_000, 300_000, "block", False,
                             10_000.0, 1e5),
    "HDD": TechnologyProfile("HDD", 10_000_000, 10_000_000, "block", False,
                             1e11, 1e16),
}


def wear_fraction(stores: int, endurance_writes: float) -> float:
    """Fraction of a single cell's write endurance consumed by ``stores``.

    A coarse device-wear proxy: the paper motivates the NVM-aware
    engines partly by their ~2x reduction in writes, which directly
    extends device lifetime for endurance-limited technologies (PCM,
    RRAM).
    """
    if endurance_writes <= 0:
        raise ValueError("endurance must be positive")
    return stores / endurance_writes
