"""The memory interface engines use to reach NVM (load/store/sync).

This is the "Memory Interface (load, store)" box from Fig. 2 of the
paper: a thin facade that routes byte accesses and object-region
accounting through the CPU cache model, and exposes the persistence
primitives.
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from .cache import CPUCache

_U64 = struct.Struct("<Q")

#: ``(addr, size)`` ranges a commit marker publishes (see
#: :meth:`NVMMemory.atomic_durable_store_u64`).
PublishRanges = Tuple[Tuple[int, int], ...]


class NVMMemory:
    """Load/store interface over the cache + device pair."""

    __slots__ = ("_cache", "line_size", "observer")

    def __init__(self, cache: CPUCache) -> None:
        self._cache = cache
        self.line_size = cache.line_size
        #: Persistence-ordering observer (see
        #: :class:`repro.analysis.ordering.OrderingChecker`). ``None``
        #: means "off" and costs one attribute check per primitive.
        self.observer = None

    # -- byte-backed data ------------------------------------------------

    def load(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at ``addr``."""
        return self._cache.load(addr, size)

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` (buffered in the CPU cache)."""
        self._cache.store(addr, data)
        if self.observer is not None:
            self.observer.on_store(addr, len(data), byte_backed=True)

    def load_batch(self, ranges) -> list:
        """Read independent (addr, size) ranges with memory-level
        parallelism (one full-latency miss for the whole batch)."""
        return self._cache.load_batch(ranges)

    def load_u64(self, addr: int) -> int:
        """Read one little-endian 8-byte unsigned integer."""
        return _U64.unpack(self._cache.load(addr, 8))[0]

    def store_u64(self, addr: int, value: int) -> None:
        """Write one little-endian 8-byte unsigned integer.

        An aligned 8-byte store is the paper's atomic durable write
        building block (used e.g. for the CoW master record).
        """
        self._cache.store(addr, _U64.pack(value))
        if self.observer is not None:
            self.observer.on_store(addr, 8, byte_backed=True)

    # -- object regions (accounting only) --------------------------------

    def touch_read(self, addr: int, size: int) -> None:
        """Charge the cost of reading an object region."""
        self._cache.touch_read(addr, size)

    def touch_write(self, addr: int, size: int) -> None:
        """Charge the cost of writing an object region."""
        self._cache.touch_write(addr, size)
        if self.observer is not None:
            self.observer.on_store(addr, size, byte_backed=False)

    def touch_read_scattered(self, addr: int, size: int,
                             probes: int) -> None:
        """Charge scattered single-line reads (Bloom filter probes)."""
        self._cache.touch_read_scattered(addr, size, probes)

    # -- persistence primitives ------------------------------------------

    def sync(self, addr: int, size: int) -> None:
        """Durable sync: CLFLUSH range + SFENCE (Section 2.3)."""
        self._cache.sync(addr, size)
        if self.observer is not None:
            self.observer.on_sync(addr, size)

    def sync_ranges(self, ranges) -> None:
        """Batched durable sync of several ``(addr, size)`` ranges:
        each distinct cache line is flushed once, then one SFENCE
        orders them all (avoids re-flushing lines that adjacent ranges
        share and fencing once per range)."""
        ranges = tuple(ranges)
        if not ranges:
            return
        self._cache.sync_ranges(ranges)
        if self.observer is not None:
            self.observer.on_sync_ranges(ranges)

    def clflush(self, addr: int, size: int) -> None:
        self._cache.clflush(addr, size)
        if self.observer is not None:
            self.observer.on_flush(addr, size, keep=False)

    def clwb(self, addr: int, size: int) -> None:
        self._cache.clwb(addr, size)
        if self.observer is not None:
            self.observer.on_flush(addr, size, keep=True)

    def sfence(self) -> None:
        self._cache.sfence()
        if self.observer is not None:
            self.observer.on_sfence()

    def atomic_durable_store_u64(self, addr: int, value: int, *,
                                 publishes: Optional[PublishRanges] = None
                                 ) -> None:
        """8-byte store that is immediately durable and atomic.

        Used for master-record updates and WAL list-head pointers; the
        8-byte aligned write either fully reaches NVM or not at all.

        ``publishes`` declares the ``(addr, size)`` ranges this marker
        makes *reachable* (e.g. the WAL entry a list-head now points
        at). The persistence-ordering checker verifies every published
        range was flushed **and** fenced before the marker — the
        Section 2.3 ordering contract. Pass ``None`` for markers that
        publish a scalar (timestamps, counts) rather than a pointer.
        """
        if self.observer is not None:
            self.observer.on_commit_marker(addr, value,
                                           publishes or ())
        self.store_u64(addr, value)
        self.sync(addr, 8)
