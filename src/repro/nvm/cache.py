"""Write-back CPU cache model fronting the emulated NVM device.

The paper's central correctness hazard is that "the changes made by a
transaction to a location on NVM may still reside in volatile CPU
caches when the transaction commits" (Section 2.3) — and, conversely,
that "the memory controller can evict cache lines containing those
changes to NVM at any time" (Section 4.1). This model reproduces both:

* Stores are buffered in cache lines; the backing device is updated
  only on **eviction** (LRU, capacity pressure) or an explicit
  **CLFLUSH/CLWB**.
* On :meth:`crash`, each dirty unflushed line independently survives
  with a configurable probability (seeded), modelling arbitrary
  controller evictions before power failure. Everything else is lost.

The durable **sync primitive** from Section 2.3 (CLFLUSH of the
affected lines followed by SFENCE) is provided by :meth:`sync`; its
extra latency knob backs the Fig. 16 PCOMMIT/CLWB what-if experiment.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from ..config import CacheConfig
from ..sim.clock import SimClock
from ..sim.stats import StatsCollector
from .device import NVMDevice


class _Line:
    """One cached line. ``buffer`` holds pending bytes for byte-backed
    lines; accounting-only lines (index nodes and other object regions)
    have ``buffer is None``."""

    __slots__ = ("dirty", "buffer")

    def __init__(self, dirty: bool, buffer: Optional[bytearray]) -> None:
        self.dirty = dirty
        self.buffer = buffer


class CPUCache:
    """LRU write-back cache over an :class:`NVMDevice`."""

    def __init__(self, config: CacheConfig, device: NVMDevice,
                 clock: SimClock, stats: StatsCollector,
                 rng: random.Random) -> None:
        self.config = config
        self.device = device
        self._clock = clock
        self._stats = stats
        self._rng = rng
        self.line_size = config.line_size
        self.capacity_lines = config.capacity_lines
        #: line base address -> _Line, in LRU order (front = coldest)
        self._lines: Dict[int, _Line] = {}
        self.hits = 0
        self.misses = 0
        #: Next-line stream prefetcher state: the line base one past the
        #: last touched run. A new access starting there is treated as a
        #: continuation of the stream (its first miss is discounted).
        self._stream_next = -1

    # ------------------------------------------------------------------
    # Internal line management
    # ------------------------------------------------------------------

    def _touch_line(self, base: int, write: bool, byte_backed: bool,
                    miss_equivalent: float = 1.0) -> Tuple[_Line, bool]:
        """Bring the line at ``base`` into the cache and refresh LRU.

        ``miss_equivalent`` discounts the latency of prefetched
        sequential misses (the miss is still counted in full). Returns
        (line, missed).
        """
        missed = False
        line = self._lines.pop(base, None)
        if line is not None:
            self.hits += 1
            self._clock.advance(self.config.hit_latency_ns)
        else:
            missed = True
            self.misses += 1
            # A miss fetches the line from NVM (read-for-ownership on a
            # store miss, plain fill on a load miss).
            self.device.charge_load(1, equivalent_lines=miss_equivalent)
            line = _Line(dirty=False, buffer=None)
            if len(self._lines) >= self.capacity_lines:
                self._evict_one()
        if write:
            line.dirty = True
            if byte_backed and line.buffer is None:
                line.buffer = bytearray(
                    self.device.read_raw(base, self.line_size))
        self._lines[base] = line  # reinsert at MRU position
        return line, missed

    def _touch_run(self, addr: int, size: int, write: bool,
                   byte_backed: bool) -> None:
        """Touch a contiguous range: the first miss pays full latency,
        consecutive follower misses are prefetch-discounted. A run that
        starts exactly where the previous one ended continues the
        hardware prefetcher's stream, so even its first miss is
        discounted (adjacent pool allocations read back-to-back)."""
        discount = self.config.prefetch_discount
        lines = self._line_range(addr, size)
        missed_before = lines.start == self._stream_next
        for base in lines:
            equivalent = discount if missed_before else 1.0
            __, missed = self._touch_line(base, write, byte_backed,
                                          miss_equivalent=equivalent)
            missed_before = missed_before or missed
        self._stream_next = lines[-1] + self.line_size

    def _evict_one(self) -> None:
        base = next(iter(self._lines))
        line = self._lines.pop(base)
        if line.dirty:
            self._writeback(base, line)

    def _writeback(self, base: int, line: _Line) -> None:
        if line.buffer is not None:
            self.device.write_raw(base, bytes(line.buffer))
        self.device.charge_store(1, addr=base)
        line.dirty = False

    def _line_range(self, addr: int, size: int) -> range:
        first = (addr // self.line_size) * self.line_size
        last = ((addr + max(size, 1) - 1) // self.line_size) * self.line_size
        return range(first, last + 1, self.line_size)

    # ------------------------------------------------------------------
    # Byte-backed access
    # ------------------------------------------------------------------

    def load(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at ``addr`` through the cache."""
        self._touch_run(addr, size, write=False, byte_backed=True)
        data = bytearray(self.device.read_raw(addr, size))
        # Overlay dirty buffered content that has not reached the device.
        for base in self._line_range(addr, size):
            line = self._lines.get(base)
            if line is None or line.buffer is None:
                continue
            lo = max(addr, base)
            hi = min(addr + size, base + self.line_size)
            data[lo - addr:hi - addr] = line.buffer[lo - base:hi - base]
        return bytes(data)

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr``; bytes stay in cache until
        evicted or flushed."""
        size = len(data)
        if size == 0:
            return
        discount = self.config.prefetch_discount
        lines = self._line_range(addr, size)
        missed_before = lines.start == self._stream_next
        for base in lines:
            equivalent = discount if missed_before else 1.0
            line, missed = self._touch_line(base, write=True,
                                            byte_backed=True,
                                            miss_equivalent=equivalent)
            missed_before = missed_before or missed
            lo = max(addr, base)
            hi = min(addr + size, base + self.line_size)
            assert line.buffer is not None
            line.buffer[lo - base:hi - base] = data[lo - addr:hi - addr]
        self._stream_next = lines[-1] + self.line_size

    def load_batch(self, ranges) -> list:
        """Read several independent ranges whose addresses are all
        known up front (e.g. a tuple's variable-length fields after its
        slot was read). Out-of-order hardware overlaps such loads
        (memory-level parallelism), so only the first miss of the whole
        batch pays full latency."""
        discount = self.config.prefetch_discount
        missed_before = False
        results = []
        for addr, size in ranges:
            for base in self._line_range(addr, size):
                equivalent = discount if missed_before else 1.0
                __, missed = self._touch_line(
                    base, write=False, byte_backed=True,
                    miss_equivalent=equivalent)
                missed_before = missed_before or missed
            data = bytearray(self.device.read_raw(addr, size))
            for base in self._line_range(addr, size):
                line = self._lines.get(base)
                if line is None or line.buffer is None:
                    continue
                lo = max(addr, base)
                hi = min(addr + size, base + self.line_size)
                data[lo - addr:hi - addr] = \
                    line.buffer[lo - base:hi - base]
            results.append(bytes(data))
        return results

    # ------------------------------------------------------------------
    # Accounting-only access (object regions: index nodes, MemTables...)
    # ------------------------------------------------------------------

    def touch_read(self, addr: int, size: int) -> None:
        """Charge the cost of reading an object region (no byte move)."""
        self._touch_run(addr, size, write=False, byte_backed=False)

    def touch_write(self, addr: int, size: int) -> None:
        """Charge the cost of writing an object region (no byte move)."""
        self._touch_run(addr, size, write=True, byte_backed=False)

    def touch_read_scattered(self, addr: int, size: int,
                             probes: int) -> None:
        """Charge ``probes`` non-sequential single-line reads spread
        over a region (Bloom filter probes): no prefetch discount."""
        if size <= 0:
            return
        span = max(1, size // max(probes, 1))
        for index in range(probes):
            position = addr + (index * span) % size
            self._touch_line((position // self.line_size)
                             * self.line_size,
                             write=False, byte_backed=False)

    # ------------------------------------------------------------------
    # Persistence primitives
    # ------------------------------------------------------------------

    def _flush_line(self, base: int, keep: bool) -> None:
        if keep:
            line = self._lines.get(base)
            self._stats.bump("cache.clwb")
        else:
            line = self._lines.pop(base, None)
            self._stats.bump("cache.clflush")
        self._clock.advance(self.config.flush_latency_ns)
        if line is not None and line.dirty:
            self._writeback(base, line)

    def clflush(self, addr: int, size: int) -> None:
        """Flush-and-invalidate every line overlapping the range."""
        for base in self._line_range(addr, size):
            self._flush_line(base, keep=False)

    def clwb(self, addr: int, size: int) -> None:
        """Write back dirty lines but keep them cached (clean)."""
        for base in self._line_range(addr, size):
            self._flush_line(base, keep=True)

    def sfence(self) -> None:
        """Store fence: order preceding flushes before later stores."""
        self._stats.bump("cache.sfence")
        self._clock.advance(self.config.fence_latency_ns)

    def sync(self, addr: int, size: int) -> None:
        """The allocator's durable sync primitive (Section 2.3):
        CLFLUSH (or, with ``use_clwb``, the Appendix C CLWB variant
        that keeps lines cached) over the range, then SFENCE, plus the
        configurable extra latency swept in the Fig. 16 experiment."""
        if self.config.use_clwb:
            self.clwb(addr, size)
        else:
            self.clflush(addr, size)
        self.sfence()
        self._stats.bump("cache.sync")
        if self.config.sync_extra_latency_ns:
            self._clock.advance(self.config.sync_extra_latency_ns)

    def sync_ranges(self, ranges) -> None:
        """Batched sync primitive: flush each distinct line covered by
        the ``(addr, size)`` ranges once, then a single SFENCE.
        Adjacent ranges (e.g. a tuple's variable-length slots, which
        the allocator places back to back) share boundary lines;
        syncing them one by one flushes those lines twice and pays one
        fence per range."""
        keep = self.config.use_clwb
        seen = set()
        for addr, size in ranges:
            for base in self._line_range(addr, size):
                if base not in seen:
                    seen.add(base)
                    self._flush_line(base, keep)
        self.sfence()
        self._stats.bump("cache.sync")
        if self.config.sync_extra_latency_ns:
            self._clock.advance(self.config.sync_extra_latency_ns)

    def drain(self) -> None:
        """Write back every dirty line (used by orderly shutdown)."""
        for base, line in list(self._lines.items()):
            if line.dirty:
                self._writeback(base, line)
        self._lines.clear()

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> Tuple[int, int]:
        """Simulate a power failure.

        Each dirty unflushed line is independently written to NVM with
        ``crash_eviction_probability`` (the controller may have evicted
        it at any earlier point); otherwise its content is lost and the
        device retains the pre-store bytes. Returns
        ``(lines_survived, lines_lost)``.
        """
        survived = lost = 0
        probability = self.config.crash_eviction_probability
        for base, line in self._lines.items():
            if not line.dirty:
                continue
            if self._rng.random() < probability:
                if line.buffer is not None:
                    self.device.write_raw(base, bytes(line.buffer))
                survived += 1
            else:
                lost += 1
        self._lines.clear()
        return survived, lost

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
