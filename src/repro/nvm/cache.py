"""Write-back CPU cache model fronting the emulated NVM device.

The paper's central correctness hazard is that "the changes made by a
transaction to a location on NVM may still reside in volatile CPU
caches when the transaction commits" (Section 2.3) — and, conversely,
that "the memory controller can evict cache lines containing those
changes to NVM at any time" (Section 4.1). This model reproduces both:

* Stores are buffered in cache lines; the backing device is updated
  only on **eviction** (LRU, capacity pressure) or an explicit
  **CLFLUSH/CLWB**.
* On :meth:`crash`, each dirty unflushed line independently survives
  with a configurable probability (seeded), modelling arbitrary
  controller evictions before power failure. Everything else is lost.

The durable **sync primitive** from Section 2.3 (CLFLUSH of the
affected lines followed by SFENCE) is provided by :meth:`sync`; its
extra latency knob backs the Fig. 16 PCOMMIT/CLWB what-if experiment.

Fast paths (see docs/performance.md): this model is the wall-clock hot
spot of the whole reproduction, so each public operation batches its
bookkeeping — simulated-time charges accumulate in locals and post to
the clock once, counter deltas post once per operation — while
replaying *the same per-event float additions in the same order* as
the line-at-a-time generic path, so every simulated output stays
byte-identical. The rules that keep that true:

* Every charge lands as the same ``+=`` float addition, in the same
  order, whether it goes through :meth:`SimClock.advance` or a batched
  local that is written back to the clock afterwards. Nothing is ever
  arithmetically merged or reassociated — in particular the writeback
  bandwidth term (the one non-dyadic charge) stays one addition per
  evicted/flushed line at its original position.
* Counter deltas post once at the end of each operation, load (or
  flush) counts before store counts — the same relative order in
  which the per-event path would first insert those keys — preserving
  the first-insertion order of the counter table (visible in exports).
* The batched multi-line paths bypass :meth:`SimClock.advance`, so
  they are only taken when no clock listeners are subscribed; with an
  observability sampler attached the generic per-line path runs
  instead. Single-line operations charge through ``advance`` and are
  always fast.

The hot loops deliberately repeat the touch/evict bookkeeping inline
(three copies: touch runs, multi-line stores, batched loads) instead
of sharing a helper — a function call per cache line is exactly the
cost this module exists to avoid. Change one copy, change all three;
``tests/nvm/test_cache_fastpath.py`` holds them to the reference
model's outputs bit for bit.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import Iterable, List, Optional, Tuple

from ..config import CacheConfig
from ..sim.clock import SimClock
from ..sim.stats import StatsCollector
from .device import NVMDevice


class _Line:
    """One cached line. ``buffer`` holds pending bytes for byte-backed
    lines; accounting-only lines (index nodes and other object regions)
    have ``buffer is None``."""

    __slots__ = ("dirty", "buffer")

    def __init__(self, dirty: bool, buffer: Optional[bytearray]) -> None:
        self.dirty = dirty
        self.buffer = buffer


class CPUCache:
    """LRU write-back cache over an :class:`NVMDevice`."""

    def __init__(self, config: CacheConfig, device: NVMDevice,
                 clock: SimClock, stats: StatsCollector,
                 rng: random.Random) -> None:
        self.config = config
        self.device = device
        self._clock = clock
        self._stats = stats
        self._rng = rng
        self.line_size = config.line_size
        self.capacity_lines = config.capacity_lines
        #: line base address -> _Line, in LRU order (front = coldest).
        #: An OrderedDict so the hit path can refresh recency with one
        #: C-level ``move_to_end`` and eviction can pop the coldest
        #: entry with ``popitem(last=False)``.
        self._lines: "OrderedDict[int, _Line]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Next-line stream prefetcher state: the line base one past the
        #: last touched run. A new access starting there is treated as a
        #: continuation of the stream (its first miss is discounted).
        self._stream_next = -1
        # Prebound hot counters: one dict add per batched event group
        # instead of a bump() call per line.
        self._n_loads = stats.counter_handle("nvm.loads")
        self._n_stores = stats.counter_handle("nvm.stores")
        self._n_clflush = stats.counter_handle("cache.clflush")
        self._n_clwb = stats.counter_handle("cache.clwb")
        self._n_sfence = stats.counter_handle("cache.sfence")
        self._n_sync = stats.counter_handle("cache.sync")

    # ------------------------------------------------------------------
    # Internal line management (single-line / generic path)
    # ------------------------------------------------------------------

    def _touch_line(self, base: int, write: bool, byte_backed: bool,
                    miss_equivalent: float = 1.0) -> Tuple[_Line, bool]:
        """Bring the line at ``base`` into the cache and refresh LRU.

        ``miss_equivalent`` discounts the latency of prefetched
        sequential misses (the miss is still counted in full). Returns
        (line, missed). Charges go through ``advance``, so this path is
        valid with clock listeners attached.
        """
        missed = False
        lines = self._lines
        line = lines.get(base)
        if line is not None:
            self.hits += 1
            self._clock.advance(self.config.hit_latency_ns)
            lines.move_to_end(base)  # refresh to MRU position
        else:
            missed = True
            self.misses += 1
            # A miss fetches the line from NVM (read-for-ownership on a
            # store miss, plain fill on a load miss).
            device = self.device
            device.loads += 1
            device.bytes_loaded += device.line_size
            self._n_loads.add(1)
            self._clock.advance(
                miss_equivalent * device.latency.read_latency_ns)
            line = _Line(dirty=False, buffer=None)
            if len(lines) >= self.capacity_lines:
                self._evict_one()
            lines[base] = line  # insert at MRU position
        if write:
            line.dirty = True
            if byte_backed and line.buffer is None:
                line.buffer = bytearray(
                    self.device.read_raw(base, self.line_size))
        return line, missed

    def _touch_run_generic(self, addr: int, size: int, write: bool,
                           byte_backed: bool) -> None:
        """Line-at-a-time reference path (kept for clock listeners)."""
        discount = self.config.prefetch_discount
        lines = self._line_range(addr, size)
        missed_before = lines.start == self._stream_next
        for base in lines:
            equivalent = discount if missed_before else 1.0
            __, missed = self._touch_line(base, write, byte_backed,
                                          miss_equivalent=equivalent)
            missed_before = missed_before or missed
        self._stream_next = lines[-1] + self.line_size

    def _touch_run(self, addr: int, size: int, write: bool,
                   byte_backed: bool) -> None:
        """Touch a contiguous range: the first miss pays full latency,
        consecutive follower misses are prefetch-discounted. A run that
        starts exactly where the previous one ended continues the
        hardware prefetcher's stream, so even its first miss is
        discounted (adjacent pool allocations read back-to-back)."""
        line_size = self.line_size
        base = addr - addr % line_size
        if addr + size <= base + line_size:
            equivalent = (self.config.prefetch_discount
                          if base == self._stream_next else 1.0)
            self._touch_line(base, write, byte_backed, equivalent)
            self._stream_next = base + line_size
            return
        if self._clock._listeners:
            self._touch_run_generic(addr, size, write, byte_backed)
            return
        config = self.config
        device = self.device
        clock = self._clock
        cell = clock._cell
        lines_map = self._lines
        get_line = lines_map.get
        move_line = lines_map.move_to_end
        popitem = lines_map.popitem
        new_line = _Line
        capacity = self.capacity_lines
        dev_line = device.line_size
        hit_ns = config.hit_latency_ns
        discount = config.prefetch_discount
        read_ns = device.latency.read_latency_ns
        wb_ns = dev_line / device.latency.bandwidth_bytes_per_ns
        wear = device._wear
        read_raw = device.read_raw
        seg = device.WEAR_SEGMENT_BYTES
        now = clock._now_ns
        cat = cell[0]
        hits = miss_total = pending = stores = 0
        last = ((addr + (size if size > 1 else 1) - 1)
                // line_size) * line_size
        missed_before = base == self._stream_next
        if write:
            for line_base in range(base, last + 1, line_size):
                line = get_line(line_base)
                if line is not None:
                    hits += 1
                    now += hit_ns
                    cat += hit_ns
                    line.dirty = True
                    if byte_backed and line.buffer is None:
                        line.buffer = bytearray(read_raw(line_base,
                                                         line_size))
                    move_line(line_base)
                    continue
                miss_total += 1
                pending += 1
                charge = (discount if missed_before else 1.0) * read_ns
                missed_before = True
                now += charge
                cat += charge
                line = new_line(True, None)
                if len(lines_map) >= capacity:
                    evict_base, evicted = popitem(False)
                    if evicted.dirty:
                        stores += 1
                        if evicted.buffer is not None:
                            device.write_raw(evict_base,
                                             bytes(evicted.buffer))
                        if wear is not None:
                            wear[evict_base // seg] += 1
                        evicted.dirty = False
                        now += wb_ns
                        cat += wb_ns
                if byte_backed:
                    line.buffer = bytearray(read_raw(line_base,
                                                     line_size))
                lines_map[line_base] = line
        else:
            for line_base in range(base, last + 1, line_size):
                line = get_line(line_base)
                if line is not None:
                    hits += 1
                    now += hit_ns
                    cat += hit_ns
                    move_line(line_base)
                    continue
                miss_total += 1
                pending += 1
                charge = (discount if missed_before else 1.0) * read_ns
                missed_before = True
                now += charge
                cat += charge
                line = new_line(False, None)
                if len(lines_map) >= capacity:
                    evict_base, evicted = popitem(False)
                    if evicted.dirty:
                        stores += 1
                        if evicted.buffer is not None:
                            device.write_raw(evict_base,
                                             bytes(evicted.buffer))
                        if wear is not None:
                            wear[evict_base // seg] += 1
                        evicted.dirty = False
                        now += wb_ns
                        cat += wb_ns
                lines_map[line_base] = line
        self.hits += hits
        self.misses += miss_total
        # Post batched counters once per call, loads before stores:
        # within a call the first load-miss always precedes the first
        # eviction writeback, so first-insertion order in the counter
        # table matches the per-event reference path.
        if pending:
            device.loads += pending
            device.bytes_loaded += pending * dev_line
            self._n_loads.add(pending)
        if stores:
            device.stores += stores
            device.bytes_stored += stores * dev_line
            self._n_stores.add(stores)
        clock._now_ns = now
        cell[0] = cat
        self._stream_next = last + line_size

    def _evict_one(self) -> None:
        base, line = self._lines.popitem(last=False)
        if line.dirty:
            self._writeback(base, line)

    def _writeback(self, base: int, line: _Line) -> None:
        """Posted store of one dirty line reaching NVM (inlined
        equivalent of :meth:`NVMDevice.charge_store`)."""
        device = self.device
        if line.buffer is not None:
            device.write_raw(base, bytes(line.buffer))
        device.stores += 1
        device.bytes_stored += device.line_size
        self._n_stores.add(1)
        wear = device._wear
        if wear is not None:
            wear[base // device.WEAR_SEGMENT_BYTES] += 1
        self._clock.advance(
            device.line_size / device.latency.bandwidth_bytes_per_ns)
        line.dirty = False

    def _line_range(self, addr: int, size: int) -> range:
        first = (addr // self.line_size) * self.line_size
        last = ((addr + max(size, 1) - 1) // self.line_size) * self.line_size
        return range(first, last + 1, self.line_size)

    # ------------------------------------------------------------------
    # Byte-backed access
    # ------------------------------------------------------------------

    def load(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at ``addr`` through the cache."""
        line_size = self.line_size
        base = addr - addr % line_size
        if addr + size <= base + line_size:
            equivalent = (self.config.prefetch_discount
                          if base == self._stream_next else 1.0)
            line, __ = self._touch_line(base, False, True, equivalent)
            self._stream_next = base + line_size
            buffer = line.buffer
            if buffer is None:
                return self.device.read_raw(addr, size)
            # Line fully buffer-resident: the device copy is stale for
            # these bytes anyway, so skip the read_raw round trip.
            offset = addr - base
            return bytes(buffer[offset:offset + size])
        if self._clock._listeners:
            self._touch_run_generic(addr, size, write=False,
                                    byte_backed=True)
            return self._overlay(addr, size)
        self._touch_run(addr, size, write=False, byte_backed=True)
        return self._assemble(addr, size)

    def _overlay(self, addr: int, size: int) -> bytes:
        """Reference materialisation: device bytes overlaid with dirty
        buffered content that has not reached the device."""
        data = bytearray(self.device.read_raw(addr, size))
        for base in self._line_range(addr, size):
            line = self._lines.get(base)
            if line is None or line.buffer is None:
                continue
            lo = max(addr, base)
            hi = min(addr + size, base + self.line_size)
            data[lo - addr:hi - addr] = line.buffer[lo - base:hi - base]
        return bytes(data)

    def _assemble(self, addr: int, size: int) -> bytes:
        """Materialise a loaded range: when every overlapping line is
        buffer-resident the device read is skipped entirely (the
        buffers already hold the current logical bytes); otherwise fall
        back to the reference overlay."""
        line_size = self.line_size
        end = addr + size
        get_line = self._lines.get
        parts = []
        for base in self._line_range(addr, size):
            line = get_line(base)
            if line is None or line.buffer is None:
                return self._overlay(addr, size)
            lo = addr if addr > base else base
            line_end = base + line_size
            hi = end if end < line_end else line_end
            parts.append(line.buffer[lo - base:hi - base])
        return b"".join(parts)

    def store(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr``; bytes stay in cache until
        evicted or flushed."""
        size = len(data)
        if size == 0:
            return
        line_size = self.line_size
        base = addr - addr % line_size
        if addr + size <= base + line_size:
            equivalent = (self.config.prefetch_discount
                          if base == self._stream_next else 1.0)
            line, __ = self._touch_line(base, True, True, equivalent)
            self._stream_next = base + line_size
            offset = addr - base
            line.buffer[offset:offset + size] = data
            return
        if self._clock._listeners:
            discount = self.config.prefetch_discount
            lines = self._line_range(addr, size)
            missed_before = lines.start == self._stream_next
            for line_base in lines:
                equivalent = discount if missed_before else 1.0
                line, missed = self._touch_line(line_base, write=True,
                                                byte_backed=True,
                                                miss_equivalent=equivalent)
                missed_before = missed_before or missed
                lo = max(addr, line_base)
                hi = min(addr + size, line_base + line_size)
                line.buffer[lo - line_base:hi - line_base] = \
                    data[lo - addr:hi - addr]
            self._stream_next = lines[-1] + line_size
            return
        config = self.config
        device = self.device
        clock = self._clock
        cell = clock._cell
        lines_map = self._lines
        get_line = lines_map.get
        move_line = lines_map.move_to_end
        popitem = lines_map.popitem
        new_line = _Line
        capacity = self.capacity_lines
        dev_line = device.line_size
        hit_ns = config.hit_latency_ns
        discount = config.prefetch_discount
        read_ns = device.latency.read_latency_ns
        wb_ns = dev_line / device.latency.bandwidth_bytes_per_ns
        wear = device._wear
        read_raw = device.read_raw
        seg = device.WEAR_SEGMENT_BYTES
        now = clock._now_ns
        cat = cell[0]
        hits = miss_total = pending = stores = 0
        end = addr + size
        last = ((end - 1) // line_size) * line_size
        missed_before = base == self._stream_next
        for line_base in range(base, last + 1, line_size):
            line = get_line(line_base)
            if line is not None:
                hits += 1
                now += hit_ns
                cat += hit_ns
                move_line(line_base)
            else:
                miss_total += 1
                pending += 1
                charge = (discount if missed_before else 1.0) * read_ns
                missed_before = True
                now += charge
                cat += charge
                line = new_line(False, None)
                if len(lines_map) >= capacity:
                    evict_base, evicted = popitem(False)
                    if evicted.dirty:
                        stores += 1
                        if evicted.buffer is not None:
                            device.write_raw(evict_base,
                                             bytes(evicted.buffer))
                        if wear is not None:
                            wear[evict_base // seg] += 1
                        evicted.dirty = False
                        now += wb_ns
                        cat += wb_ns
                lines_map[line_base] = line
            line.dirty = True
            buffer = line.buffer
            if buffer is None:
                buffer = line.buffer = bytearray(read_raw(line_base,
                                                          line_size))
            # The byte write happens line by line, inside the run: a
            # run long enough to evict its own earlier lines must write
            # back those lines *with* the new bytes, exactly as the
            # generic path does.
            lo = addr if addr > line_base else line_base
            line_end = line_base + line_size
            hi = end if end < line_end else line_end
            buffer[lo - line_base:hi - line_base] = \
                data[lo - addr:hi - addr]
        self.hits += hits
        self.misses += miss_total
        # Loads posted before stores — see _touch_run.
        if pending:
            device.loads += pending
            device.bytes_loaded += pending * dev_line
            self._n_loads.add(pending)
        if stores:
            device.stores += stores
            device.bytes_stored += stores * dev_line
            self._n_stores.add(stores)
        clock._now_ns = now
        cell[0] = cat
        self._stream_next = last + line_size

    def load_batch(self, ranges) -> list:
        """Read several independent ranges whose addresses are all
        known up front (e.g. a tuple's variable-length fields after its
        slot was read). Out-of-order hardware overlaps such loads
        (memory-level parallelism), so only the first miss of the whole
        batch pays full latency."""
        if self._clock._listeners:
            return self._load_batch_generic(ranges)
        config = self.config
        device = self.device
        clock = self._clock
        cell = clock._cell
        lines_map = self._lines
        get_line = lines_map.get
        move_line = lines_map.move_to_end
        popitem = lines_map.popitem
        new_line = _Line
        capacity = self.capacity_lines
        line_size = self.line_size
        dev_line = device.line_size
        hit_ns = config.hit_latency_ns
        discount = config.prefetch_discount
        read_ns = device.latency.read_latency_ns
        wb_ns = dev_line / device.latency.bandwidth_bytes_per_ns
        wear = device._wear
        read_raw = device.read_raw
        seg = device.WEAR_SEGMENT_BYTES
        now = clock._now_ns
        cat = cell[0]
        hits = miss_total = pending = stores = 0
        missed_before = False
        results = []
        for addr, size in ranges:
            base = addr - addr % line_size
            if addr + size <= base + line_size:
                # Single-line range: by far the common case (a tuple's
                # individual variable-length fields).
                line = get_line(base)
                if line is not None:
                    hits += 1
                    now += hit_ns
                    cat += hit_ns
                    move_line(base)
                else:
                    miss_total += 1
                    pending += 1
                    charge = (discount if missed_before else 1.0) * read_ns
                    missed_before = True
                    now += charge
                    cat += charge
                    line = new_line(False, None)
                    if len(lines_map) >= capacity:
                        evict_base, evicted = popitem(False)
                        if evicted.dirty:
                            stores += 1
                            if evicted.buffer is not None:
                                device.write_raw(evict_base,
                                                 bytes(evicted.buffer))
                            if wear is not None:
                                wear[evict_base // seg] += 1
                            evicted.dirty = False
                            now += wb_ns
                            cat += wb_ns
                    lines_map[base] = line
                buffer = line.buffer
                if buffer is None:
                    # read_raw charges no time, so the batched clock
                    # state does not need settling first.
                    results.append(read_raw(addr, size))
                else:
                    offset = addr - base
                    results.append(bytes(buffer[offset:offset + size]))
                continue
            end = addr + size
            last = ((end - 1) // line_size) * line_size
            range_lines: List[_Line] = []
            append_line = range_lines.append
            for line_base in range(base, last + 1, line_size):
                line = get_line(line_base)
                if line is not None:
                    hits += 1
                    now += hit_ns
                    cat += hit_ns
                    move_line(line_base)
                else:
                    miss_total += 1
                    pending += 1
                    charge = (discount if missed_before else 1.0) * read_ns
                    missed_before = True
                    now += charge
                    cat += charge
                    line = new_line(False, None)
                    if len(lines_map) >= capacity:
                        evict_base, evicted = popitem(False)
                        if evicted.dirty:
                            stores += 1
                            if evicted.buffer is not None:
                                device.write_raw(evict_base,
                                                 bytes(evicted.buffer))
                            if wear is not None:
                                wear[evict_base // seg] += 1
                            evicted.dirty = False
                            now += wb_ns
                            cat += wb_ns
                    lines_map[line_base] = line
                append_line(line)
            # Materialise this range from the collected line objects
            # (evicted lines wrote their buffers back to the device, so
            # buffer and device contents agree wherever both exist —
            # same bytes as the generic path's interleaved overlay).
            parts = []
            line_start = base
            complete = True
            for line in range_lines:
                buffer = line.buffer
                if buffer is None:
                    complete = False
                    break
                lo = addr if addr > line_start else line_start
                line_end = line_start + line_size
                hi = end if end < line_end else line_end
                parts.append(buffer[lo - line_start:hi - line_start])
                line_start = line_end
            if complete:
                results.append(b"".join(parts))
            else:
                data = bytearray(read_raw(addr, size))
                line_start = base
                for line in range_lines:
                    buffer = line.buffer
                    if buffer is not None:
                        lo = addr if addr > line_start else line_start
                        line_end = line_start + line_size
                        hi = end if end < line_end else line_end
                        data[lo - addr:hi - addr] = \
                            buffer[lo - line_start:hi - line_start]
                    line_start += line_size
                results.append(bytes(data))
        self.hits += hits
        self.misses += miss_total
        if pending:
            device.loads += pending
            device.bytes_loaded += pending * dev_line
            self._n_loads.add(pending)
        if stores:
            device.stores += stores
            device.bytes_stored += stores * dev_line
            self._n_stores.add(stores)
        clock._now_ns = now
        cell[0] = cat
        return results

    def _load_batch_generic(self, ranges) -> list:
        discount = self.config.prefetch_discount
        missed_before = False
        results = []
        for addr, size in ranges:
            for base in self._line_range(addr, size):
                equivalent = discount if missed_before else 1.0
                __, missed = self._touch_line(
                    base, write=False, byte_backed=True,
                    miss_equivalent=equivalent)
                missed_before = missed_before or missed
            results.append(self._overlay(addr, size))
        return results

    # ------------------------------------------------------------------
    # Accounting-only access (object regions: index nodes, MemTables...)
    # ------------------------------------------------------------------

    def touch_read(self, addr: int, size: int) -> None:
        """Charge the cost of reading an object region (no byte move)."""
        self._touch_run(addr, size, write=False, byte_backed=False)

    def touch_write(self, addr: int, size: int) -> None:
        """Charge the cost of writing an object region (no byte move)."""
        self._touch_run(addr, size, write=True, byte_backed=False)

    def touch_read_scattered(self, addr: int, size: int,
                             probes: int) -> None:
        """Charge ``probes`` non-sequential single-line reads spread
        over a region (Bloom filter probes): no prefetch discount."""
        if size <= 0:
            return
        span = max(1, size // max(probes, 1))
        for index in range(probes):
            position = addr + (index * span) % size
            self._touch_line((position // self.line_size)
                             * self.line_size,
                             write=False, byte_backed=False)

    # ------------------------------------------------------------------
    # Persistence primitives
    # ------------------------------------------------------------------

    def _flush_line(self, base: int, keep: bool) -> None:
        if keep:
            line = self._lines.get(base)
            self._n_clwb.add(1)
        else:
            line = self._lines.pop(base, None)
            self._n_clflush.add(1)
        self._clock.advance(self.config.flush_latency_ns)
        if line is not None and line.dirty:
            self._writeback(base, line)

    def _flush_run(self, bases: Iterable[int], keep: bool) -> None:
        """Flush each line base once, batching the per-line flush
        latency and CLWB/CLFLUSH counts; all counters post once at the
        end of the run (same first-insertion ordering discipline as
        :meth:`_touch_run`)."""
        if self._clock._listeners:
            for base in bases:
                self._flush_line(base, keep)
            return
        clock = self._clock
        cell = clock._cell
        device = self.device
        flush_ns = self.config.flush_latency_ns
        dev_line = device.line_size
        wb_ns = dev_line / device.latency.bandwidth_bytes_per_ns
        wear = device._wear
        lines_map = self._lines
        seg = device.WEAR_SEGMENT_BYTES
        handle = self._n_clwb if keep else self._n_clflush
        now = clock._now_ns
        cat = cell[0]
        pending = stores = 0
        for base in bases:
            if keep:
                line = lines_map.get(base)
            else:
                line = lines_map.pop(base, None)
            pending += 1
            now += flush_ns
            cat += flush_ns
            if line is not None and line.dirty:
                stores += 1
                if line.buffer is not None:
                    device.write_raw(base, bytes(line.buffer))
                if wear is not None:
                    wear[base // seg] += 1
                line.dirty = False
                now += wb_ns
                cat += wb_ns
        # Flush count posted before the store count: a writeback is
        # always preceded by its own line's flush event, so the counter
        # table's first-insertion order matches the per-event path.
        if pending:
            handle.add(pending)
        if stores:
            device.stores += stores
            device.bytes_stored += stores * dev_line
            self._n_stores.add(stores)
        clock._now_ns = now
        cell[0] = cat

    def clflush(self, addr: int, size: int) -> None:
        """Flush-and-invalidate every line overlapping the range."""
        self._flush_run(self._line_range(addr, size), keep=False)

    def clwb(self, addr: int, size: int) -> None:
        """Write back dirty lines but keep them cached (clean)."""
        self._flush_run(self._line_range(addr, size), keep=True)

    def sfence(self) -> None:
        """Store fence: order preceding flushes before later stores."""
        self._n_sfence.add(1)
        self._clock.advance(self.config.fence_latency_ns)

    def sync(self, addr: int, size: int) -> None:
        """The allocator's durable sync primitive (Section 2.3):
        CLFLUSH (or, with ``use_clwb``, the Appendix C CLWB variant
        that keeps lines cached) over the range, then SFENCE, plus the
        configurable extra latency swept in the Fig. 16 experiment."""
        self._flush_run(self._line_range(addr, size),
                        keep=self.config.use_clwb)
        self.sfence()
        self._n_sync.add(1)
        if self.config.sync_extra_latency_ns:
            self._clock.advance(self.config.sync_extra_latency_ns)

    def sync_ranges(self, ranges) -> None:
        """Batched sync primitive: flush each distinct line covered by
        the ``(addr, size)`` ranges once, then a single SFENCE.
        Adjacent ranges (e.g. a tuple's variable-length slots, which
        the allocator places back to back) share boundary lines;
        syncing them one by one flushes those lines twice and pays one
        fence per range."""
        line_size = self.line_size
        seen = set()
        bases: List[int] = []
        for addr, size in ranges:
            base = addr - addr % line_size
            last = ((addr + (size if size > 1 else 1) - 1)
                    // line_size) * line_size
            for line_base in range(base, last + 1, line_size):
                if line_base not in seen:
                    seen.add(line_base)
                    bases.append(line_base)
        self._flush_run(bases, keep=self.config.use_clwb)
        self.sfence()
        self._n_sync.add(1)
        if self.config.sync_extra_latency_ns:
            self._clock.advance(self.config.sync_extra_latency_ns)

    def drain(self) -> None:
        """Write back every dirty line (used by orderly shutdown)."""
        for base, line in list(self._lines.items()):
            if line.dirty:
                self._writeback(base, line)
        self._lines.clear()
        # The prefetch stream must not survive an empty cache: a
        # post-drain access that happens to start at the stale
        # stream_next is not a hardware-visible continuation.
        self._stream_next = -1

    # ------------------------------------------------------------------
    # Failure model
    # ------------------------------------------------------------------

    def crash(self) -> Tuple[int, int]:
        """Simulate a power failure.

        Each dirty unflushed line is independently written to NVM with
        ``crash_eviction_probability`` (the controller may have evicted
        it at any earlier point); otherwise its content is lost and the
        device retains the pre-store bytes. Returns
        ``(lines_survived, lines_lost)``.
        """
        survived = lost = 0
        probability = self.config.crash_eviction_probability
        for base, line in self._lines.items():
            if not line.dirty:
                continue
            if self._rng.random() < probability:
                if line.buffer is not None:
                    self.device.write_raw(base, bytes(line.buffer))
                survived += 1
            else:
                lost += 1
        self._lines.clear()
        self._stream_next = -1  # see drain()
        return survived, lost

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
