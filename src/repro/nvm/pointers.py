"""Non-volatile pointers (Section 2.3).

The NVM-aware allocator guarantees that the virtual addresses of a
memory-mapped region never change, so a pointer to an NVM location maps
to the same location after the OS or DBMS restarts. In the simulator a
non-volatile pointer is simply the allocation's address within the
emulated device; :meth:`NVMAllocator.resolve` turns a pointer back into
its live allocation after a restart.
"""

from __future__ import annotations

#: Address type alias: non-volatile pointers are plain device offsets.
NVPtr = int

#: The null non-volatile pointer. Address 0 is reserved by the
#: allocator so that 0 is never a valid allocation address.
NULL_PTR: NVPtr = 0
