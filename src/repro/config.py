"""Configuration objects for the emulated NVM platform and the engines.

The defaults mirror the hardware emulator used in the paper (Section 2.2
and Section 5): a 160 ns DRAM-latency baseline, low (2x) and high (8x)
NVM latency profiles, NVM write bandwidth throttled to 9.5 GB/s, 64-byte
cache lines, a 512 B STX B+tree node and a 4 KB copy-on-write B+tree node.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import ConfigError

CACHE_LINE_SIZE = 64

#: Baseline DRAM access latency on the emulator platform (nanoseconds).
DRAM_LATENCY_NS = 160

#: Throttled sustainable NVM write bandwidth on the emulator (bytes/ns).
#: 9.5 GB/s == 9.5 bytes per nanosecond.
NVM_WRITE_BANDWIDTH_BYTES_PER_NS = 9.5

#: Unthrottled DRAM bandwidth for comparison (8x the NVM setting).
DRAM_BANDWIDTH_BYTES_PER_NS = 76.0


@dataclass(frozen=True)
class LatencyProfile:
    """Latency configuration of the emulated NVM device.

    The paper evaluates three profiles (Section 5.2): the default DRAM
    latency (160 ns), a low NVM latency at 2x DRAM (320 ns), and a high
    NVM latency at 8x DRAM (1280 ns).
    """

    name: str
    read_latency_ns: float
    write_latency_ns: float
    bandwidth_bytes_per_ns: float = NVM_WRITE_BANDWIDTH_BYTES_PER_NS

    def __post_init__(self) -> None:
        if self.read_latency_ns <= 0 or self.write_latency_ns <= 0:
            raise ConfigError("latencies must be positive")
        if self.bandwidth_bytes_per_ns <= 0:
            raise ConfigError("bandwidth must be positive")

    @classmethod
    def dram(cls) -> "LatencyProfile":
        """Default DRAM-latency configuration (160 ns)."""
        return cls("dram", DRAM_LATENCY_NS, DRAM_LATENCY_NS)

    @classmethod
    def low_nvm(cls) -> "LatencyProfile":
        """Low NVM latency configuration, 2x DRAM (320 ns)."""
        return cls("low-nvm", 2 * DRAM_LATENCY_NS, 2 * DRAM_LATENCY_NS)

    @classmethod
    def high_nvm(cls) -> "LatencyProfile":
        """High NVM latency configuration, 8x DRAM (1280 ns)."""
        return cls("high-nvm", 8 * DRAM_LATENCY_NS, 8 * DRAM_LATENCY_NS)

    @classmethod
    def parse(cls, name: str) -> "LatencyProfile":
        """The single string→profile point: map a profile name (or its
        short alias ``"low"``/``"high"``) to a :class:`LatencyProfile`.
        An existing profile instance passes through unchanged."""
        if isinstance(name, cls):
            return name
        profiles = {
            "dram": cls.dram,
            "low": cls.low_nvm,
            "low-nvm": cls.low_nvm,
            "high": cls.high_nvm,
            "high-nvm": cls.high_nvm,
        }
        try:
            return profiles[name]()
        except KeyError:
            raise ConfigError(f"unknown latency profile {name!r}; "
                              f"expected one of {sorted(profiles)}") from None

    @classmethod
    def by_name(cls, name: str) -> "LatencyProfile":
        """Deprecated spelling of :meth:`parse` (kept for callers of the
        pre-scheduler API)."""
        return cls.parse(name)

    def scaled(self, factor: float) -> "LatencyProfile":
        """Return a copy with read/write latency scaled by ``factor``."""
        return replace(
            self,
            name=f"{self.name}-x{factor:g}",
            read_latency_ns=self.read_latency_ns * factor,
            write_latency_ns=self.write_latency_ns * factor,
        )


@dataclass(frozen=True)
class CacheConfig:
    """Configuration of the write-back CPU cache fronting the NVM.

    ``capacity_bytes`` defaults to a scaled-down last-level cache (the
    emulator platform has a 20 MB L3; the simulator uses a smaller cache
    so that scaled-down workloads exhibit the same hit/miss structure).
    ``sync_extra_latency_ns`` models the latency of the durable sync
    primitive and is swept in the Fig. 16 experiment (PCOMMIT/CLWB
    what-if analysis).
    """

    capacity_bytes: int = 2 * 1024 * 1024
    line_size: int = CACHE_LINE_SIZE
    hit_latency_ns: float = 4.0
    fence_latency_ns: float = 20.0
    flush_latency_ns: float = 40.0
    sync_extra_latency_ns: float = 0.0
    #: Use CLWB instead of CLFLUSH in the durable sync primitive
    #: (Appendix C): the written-back line stays cached in exclusive
    #: state, avoiding re-read misses on subsequent accesses. Off by
    #: default — CLFLUSH+SFENCE is the paper's baseline primitive.
    use_clwb: bool = False
    #: Latency discount for the 2nd..Nth consecutive misses of one
    #: sequential access (hardware prefetching / memory-level
    #: parallelism, which the emulator preserves — Section 2.2).
    prefetch_discount: float = 0.25
    #: Probability that a dirty, unflushed cache line happened to be
    #: evicted to NVM before a crash (the memory controller "can evict
    #: cache lines at any time", Section 4.1).
    crash_eviction_probability: float = 0.5

    def __post_init__(self) -> None:
        if self.line_size <= 0 or self.capacity_bytes < self.line_size:
            raise ConfigError("cache must hold at least one line")
        if not 0.0 <= self.crash_eviction_probability <= 1.0:
            raise ConfigError("crash_eviction_probability must be in [0, 1]")

    @property
    def capacity_lines(self) -> int:
        return self.capacity_bytes // self.line_size


@dataclass(frozen=True)
class FilesystemConfig:
    """Cost model of the PMFS-like filesystem interface (Section 2.2).

    File I/O goes through the kernel's VFS layer: each call pays a
    syscall crossing, and data is copied once between the user buffer
    and the file (the emulator's optimized filesystem needs one copy;
    a block-oriented filesystem would need two).
    """

    syscall_latency_ns: float = 1400.0
    copy_ns_per_byte: float = 0.25
    #: Extra copies per write: 1 models PMFS, 2 models a block filesystem.
    copies_per_write: int = 1

    def __post_init__(self) -> None:
        if self.copies_per_write < 1:
            raise ConfigError("copies_per_write must be >= 1")


@dataclass(frozen=True)
class PlatformConfig:
    """Full configuration of the emulated platform."""

    latency: LatencyProfile = field(default_factory=LatencyProfile.dram)
    cache: CacheConfig = field(default_factory=CacheConfig)
    filesystem: FilesystemConfig = field(default_factory=FilesystemConfig)
    nvm_capacity_bytes: int = 256 * 1024 * 1024
    #: Capacity of the optional volatile DRAM tier (Appendix D hybrid
    #: hierarchy). 0 disables it — the paper's NVM-only configuration.
    dram_capacity_bytes: int = 0
    #: Track a per-4KB-segment store histogram on the device (wear
    #: leveling analysis; small host-time overhead).
    track_wear: bool = False
    seed: int = 0x5EED

    def with_latency(self, latency: LatencyProfile) -> "PlatformConfig":
        return replace(self, latency=latency)


@dataclass(frozen=True)
class EngineConfig:
    """Tunables shared by the storage engines.

    Defaults follow Section 5: 512 B STX B+tree nodes, 4 KB CoW B+tree
    nodes, group commit batching, gzip-compressed checkpoints for the
    InP engine, and LevelDB-style LSM parameters for the Log engines.
    """

    btree_node_size: int = 512
    cow_btree_node_size: int = 4096
    #: Node size of the NVM-CoW engine's non-volatile directory. None
    #: means "same as cow_btree_node_size". Scaled-down experiments set
    #: this smaller so the directory keeps the paper's leaf count (a
    #: 2 M-tuple database has ~8 k pointer leaves at 4 KB; a 2 k-tuple
    #: one would have 8, collapsing path-copy sharing).
    nvm_cow_node_size: int = 0
    group_commit_size: int = 8
    #: Size of the CoW engine's internal page cache (Section 3.2):
    #: directory pages beyond this are re-read from the filesystem.
    page_cache_bytes: int = 128 * 1024
    checkpoint_interval_txns: int = 2000
    checkpoint_compression_ratio: float = 0.5
    memtable_threshold_bytes: int = 64 * 1024
    lsm_growth_factor: int = 4
    lsm_max_runs_per_level: int = 4
    bloom_bits_per_key: int = 10
    bloom_hashes: int = 3
    #: CPU cost of executing one primitive operation (query executor,
    #: predicate evaluation, tuple (de)serialization) and one
    #: transaction's begin/commit bookkeeping. These compute-bound
    #: components are what make throughput degrade *sub-linearly* with
    #: NVM latency (Section 5.2).
    op_cpu_ns: float = 300.0
    txn_cpu_ns: float = 200.0

    def __post_init__(self) -> None:
        if self.btree_node_size < 64:
            raise ConfigError("btree_node_size must be >= 64 bytes")
        if self.cow_btree_node_size < 256:
            raise ConfigError("cow_btree_node_size must be >= 256 bytes")
        if self.group_commit_size < 1:
            raise ConfigError("group_commit_size must be >= 1")
        if self.lsm_growth_factor < 2:
            raise ConfigError("lsm_growth_factor must be >= 2")
