"""Simulation primitives: the simulated clock, statistics, and RNG."""

from .clock import SimClock
from .stats import Category, StatsCollector

__all__ = ["SimClock", "StatsCollector", "Category"]
