"""Deterministic random number helpers.

Every stochastic component of the simulator (workload key choice, crash
eviction lottery, ...) draws from a seeded ``random.Random`` derived
here, so that experiments and tests are exactly reproducible — including
across processes (Python's built-in ``hash`` is salted per-process, so a
stable digest is used instead).
"""

from __future__ import annotations

import hashlib
import random


def derive_rng(seed: int, *labels: str) -> random.Random:
    """Return a ``random.Random`` seeded from ``seed`` and ``labels``.

    Different labels yield independent, reproducible streams, so that
    e.g. the workload generator and the crash model never share state.
    """
    material = repr((seed, labels)).encode("utf-8")
    digest = hashlib.sha256(material).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))
