"""A simulated nanosecond clock.

All costs in the emulated platform are expressed as simulated
nanoseconds charged to a :class:`SimClock`. Throughput numbers reported
by the benchmark harness are transactions per *simulated* second, which
is what makes the reproduction independent of the speed of the host
Python interpreter (see DESIGN.md, substitution list).

``advance`` is the single hottest call in the whole simulator (every
cache hit, miss, flush, and fence goes through it), so its bookkeeping
is kept to two float additions:

* Per-category time attribution does not use a callback. The owning
  :class:`~repro.sim.stats.StatsCollector` installs its *current
  category accumulator cell* (a one-element list) via
  :meth:`set_attribution_cell` and swaps it on category push/pop; every
  charge lands in the innermost category with one indexed add, in the
  same order and with the same values as the historical
  listener-callback design — so attribution stays byte-identical.
* Subscribed listeners (e.g. the observability time-series sampler)
  are only iterated when at least one is registered, which makes the
  observability layer cost nothing when no session is attached.
"""

from __future__ import annotations

from typing import Callable, List

#: A mutable one-element accumulator the clock adds every charge into.
AttributionCell = List[float]


class SimClock:
    """Accumulates simulated time in nanoseconds.

    Listeners (e.g. the observability sampler) are invoked with every
    charge; per-category statistics use the cheaper attribution cell.
    """

    __slots__ = ("_now_ns", "_listeners", "_cell")

    def __init__(self) -> None:
        self._now_ns: float = 0.0
        self._listeners: List[Callable[[float], None]] = []
        # Attribution sink; replaced by a StatsCollector's category
        # cell when one attaches. The default cell keeps `advance`
        # branch-free for bare clocks (unit tests, examples).
        self._cell: AttributionCell = [0.0]

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ns / 1e9

    def advance(self, ns: float) -> None:
        """Charge ``ns`` nanoseconds of simulated time."""
        if ns <= 0:
            if ns == 0:
                return
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        self._now_ns += ns
        self._cell[0] += ns
        if self._listeners:
            for listener in self._listeners:
                listener(ns)

    def set_attribution_cell(self, cell: AttributionCell) -> None:
        """Install the accumulator every subsequent charge is added to
        (used by :class:`~repro.sim.stats.StatsCollector` to attribute
        time to the innermost active category)."""
        self._cell = cell

    def subscribe(self, listener: Callable[[float], None]) -> None:
        """Register ``listener`` to be called with every charge."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[float], None]) -> None:
        self._listeners.remove(listener)

    def elapsed_since(self, start_ns: float) -> float:
        """Nanoseconds elapsed since a previously sampled ``now_ns``."""
        return self._now_ns - start_ns

    def reset(self) -> None:
        """Reset the clock to zero (listeners and attribution kept)."""
        self._now_ns = 0.0

    def __repr__(self) -> str:
        return f"SimClock(now={self._now_ns:.0f} ns)"
