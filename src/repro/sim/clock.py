"""A simulated nanosecond clock.

All costs in the emulated platform are expressed as simulated
nanoseconds charged to a :class:`SimClock`. Throughput numbers reported
by the benchmark harness are transactions per *simulated* second, which
is what makes the reproduction independent of the speed of the host
Python interpreter (see DESIGN.md, substitution list).
"""

from __future__ import annotations

from typing import Callable, List


class SimClock:
    """Accumulates simulated time in nanoseconds.

    Listeners (e.g. the per-category statistics collector) are invoked
    with every charge so that time can be attributed to the engine
    component that incurred it.
    """

    __slots__ = ("_now_ns", "_listeners")

    def __init__(self) -> None:
        self._now_ns: float = 0.0
        self._listeners: List[Callable[[float], None]] = []

    @property
    def now_ns(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ns / 1e9

    def advance(self, ns: float) -> None:
        """Charge ``ns`` nanoseconds of simulated time."""
        if ns < 0:
            raise ValueError(f"cannot advance clock by negative time: {ns}")
        if ns == 0:
            return
        self._now_ns += ns
        for listener in self._listeners:
            listener(ns)

    def subscribe(self, listener: Callable[[float], None]) -> None:
        """Register ``listener`` to be called with every charge."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[float], None]) -> None:
        self._listeners.remove(listener)

    def elapsed_since(self, start_ns: float) -> float:
        """Nanoseconds elapsed since a previously sampled ``now_ns``."""
        return self._now_ns - start_ns

    def reset(self) -> None:
        """Reset the clock to zero (listeners are kept)."""
        self._now_ns = 0.0

    def __repr__(self) -> str:
        return f"SimClock(now={self._now_ns:.0f} ns)"
