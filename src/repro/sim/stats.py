"""Statistics collection for the emulated platform and storage engines.

Two kinds of data are collected:

* **Counters** — named event counts (NVM loads/stores, fsyncs, flushes,
  allocations, ...). These back the Figs. 9-11 read/write experiments.
* **Category time** — simulated time attributed to the engine component
  that incurred it (storage / recovery / index / other). This backs the
  Fig. 13 execution-time breakdown. Attribution uses an explicit
  category stack: engines push a category around a code region and every
  clock charge inside it is attributed to the innermost category.

Hot-path design (see docs/performance.md): instead of subscribing a
per-charge callback to the clock, the collector keeps one mutable
accumulator cell per category and installs the innermost category's
cell into the clock (:meth:`SimClock.set_attribution_cell`); a charge
is then a single indexed add — same order, same values, byte-identical
totals. Hot counters are bumped through prebound
:class:`CounterHandle` objects so the per-event cost is one dict add
on an interned key, batched to one call per cache operation.
"""

from __future__ import annotations

import enum
from collections import Counter
from typing import Dict, List

from .clock import AttributionCell, SimClock


class Category(enum.Enum):
    """Execution-time categories from the paper's Section 5.5."""

    STORAGE = "storage"
    RECOVERY = "recovery"
    INDEX = "index"
    OTHER = "other"


class CounterHandle:
    """A prebound counter: ``handle.add(n)`` is exactly
    ``stats.bump(name, n)`` without the attribute/bound-method lookup
    or string re-interning on every event. Handles share the
    collector's counter table, so mixing ``bump`` and handle adds on
    the same name stays consistent."""

    __slots__ = ("name", "_counters")

    def __init__(self, name: str, counters: "Counter[str]") -> None:
        self.name = name
        self._counters = counters

    def add(self, amount: int = 1) -> None:
        self._counters[self.name] += amount

    def __repr__(self) -> str:
        return (f"CounterHandle({self.name!r}, "
                f"count={self._counters[self.name]})")


class _CategoryContext:
    """Reusable context manager pushing one category (no generator
    frame, no allocation per ``with`` block)."""

    __slots__ = ("_stats", "_category")

    def __init__(self, stats: "StatsCollector",
                 category: Category) -> None:
        self._stats = stats
        self._category = category

    def __enter__(self) -> None:
        self._stats.push_category(self._category)

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stats.pop_category()


class StatsCollector:
    """Collects counters and per-category simulated time.

    A collector attaches to a :class:`SimClock`; every ``advance`` is
    attributed to the category on top of the stack (``Category.OTHER``
    when the stack is empty). Attaching a second collector to the same
    clock redirects attribution to the newest one (the platform owns a
    single collector, so this does not arise in practice).
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._counters: Counter[str] = Counter()
        self._cells: Dict[Category, AttributionCell] = {
            category: [0.0] for category in Category}
        #: Innermost-first stack of attribution cells; the bottom entry
        #: is the OTHER cell (the "no category pushed" default).
        self._cell_stack: List[AttributionCell] = [
            self._cells[Category.OTHER]]
        self._contexts = {category: _CategoryContext(self, category)
                          for category in Category}
        clock.set_attribution_cell(self._cell_stack[0])

    def category(self, category: Category) -> _CategoryContext:
        """Attribute all simulated time inside the block to
        ``category`` (``with stats.category(Category.STORAGE): ...``)."""
        return self._contexts[category]

    def push_category(self, category: Category) -> None:
        """Imperative spelling of :meth:`category` for hot paths that
        pair it with ``try/finally``."""
        cell = self._cells[category]
        self._cell_stack.append(cell)
        self._clock.set_attribution_cell(cell)

    def pop_category(self) -> None:
        stack = self._cell_stack
        stack.pop()
        self._clock.set_attribution_cell(stack[-1])

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def counter_handle(self, name: str) -> CounterHandle:
        """Prebind counter ``name`` for repeated cheap increments."""
        return CounterHandle(name, self._counters)

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._counters[name]

    @property
    def counters(self) -> Dict[str, int]:
        """A copy of all counters."""
        return dict(self._counters)

    def category_ns(self, category: Category) -> float:
        """Simulated time attributed to ``category`` so far."""
        return self._cells[category][0]

    def category_breakdown(self) -> Dict[str, float]:
        """Fraction of total simulated time per category (sums to 1.0)."""
        total = sum(cell[0] for cell in self._cells.values())
        if total == 0:
            return {category.value: 0.0 for category in Category}
        return {category.value: self._cells[category][0] / total
                for category in Category}

    def snapshot(self) -> "StatsSnapshot":
        """Immutable snapshot of counters and category times."""
        return StatsSnapshot(
            counters=dict(self._counters),
            category_ns={category: cell[0]
                         for category, cell in self._cells.items()},
            now_ns=self._clock.now_ns,
        )

    def reset(self) -> None:
        """Clear all counters and category times (the clock is kept).
        Cells are zeroed in place so outstanding handles and the
        clock's installed attribution cell stay valid."""
        self._counters.clear()
        for cell in self._cells.values():
            cell[0] = 0.0


class StatsSnapshot:
    """Point-in-time copy of a :class:`StatsCollector`'s state.

    Supports subtraction so an experiment can measure only the interval
    of interest: ``delta = after - before``.
    """

    __slots__ = ("counters", "category_ns", "now_ns")

    def __init__(self, counters: Dict[str, int],
                 category_ns: Dict[Category, float], now_ns: float) -> None:
        self.counters = counters
        self.category_ns = category_ns
        self.now_ns = now_ns

    def __sub__(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        # Union of keys: a counter present only in the earlier snapshot
        # (e.g. cleared by a reset in between) must still appear in the
        # delta instead of being silently dropped.
        counters = {
            name: self.counters.get(name, 0)
            - earlier.counters.get(name, 0)
            for name in self.counters.keys() | earlier.counters.keys()
        }
        category_ns = {
            category: self.category_ns.get(category, 0.0)
            - earlier.category_ns.get(category, 0.0)
            for category in
            self.category_ns.keys() | earlier.category_ns.keys()
        }
        return StatsSnapshot(counters, category_ns,
                             self.now_ns - earlier.now_ns)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    @property
    def elapsed_ns(self) -> float:
        return self.now_ns
