"""Statistics collection for the emulated platform and storage engines.

Two kinds of data are collected:

* **Counters** — named event counts (NVM loads/stores, fsyncs, flushes,
  allocations, ...). These back the Figs. 9-11 read/write experiments.
* **Category time** — simulated time attributed to the engine component
  that incurred it (storage / recovery / index / other). This backs the
  Fig. 13 execution-time breakdown. Attribution uses an explicit
  category stack: engines push a category around a code region and every
  clock charge inside it is attributed to the innermost category.
"""

from __future__ import annotations

import enum
from collections import Counter
from contextlib import contextmanager
from typing import Dict, Iterator, List

from .clock import SimClock


class Category(enum.Enum):
    """Execution-time categories from the paper's Section 5.5."""

    STORAGE = "storage"
    RECOVERY = "recovery"
    INDEX = "index"
    OTHER = "other"


class StatsCollector:
    """Collects counters and per-category simulated time.

    A collector subscribes to a :class:`SimClock`; every ``advance`` is
    attributed to the category on top of the stack (``Category.OTHER``
    when the stack is empty).
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._counters: Counter[str] = Counter()
        self._category_ns: Dict[Category, float] = {c: 0.0 for c in Category}
        self._stack: List[Category] = []
        clock.subscribe(self._on_advance)

    def _on_advance(self, ns: float) -> None:
        category = self._stack[-1] if self._stack else Category.OTHER
        self._category_ns[category] += ns

    @contextmanager
    def category(self, category: Category) -> Iterator[None]:
        """Attribute all simulated time inside the block to ``category``."""
        self._stack.append(category)
        try:
            yield
        finally:
            self._stack.pop()

    def bump(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 if never bumped)."""
        return self._counters[name]

    @property
    def counters(self) -> Dict[str, int]:
        """A copy of all counters."""
        return dict(self._counters)

    def category_ns(self, category: Category) -> float:
        """Simulated time attributed to ``category`` so far."""
        return self._category_ns[category]

    def category_breakdown(self) -> Dict[str, float]:
        """Fraction of total simulated time per category (sums to 1.0)."""
        total = sum(self._category_ns.values())
        if total == 0:
            return {c.value: 0.0 for c in Category}
        return {c.value: self._category_ns[c] / total for c in Category}

    def snapshot(self) -> "StatsSnapshot":
        """Immutable snapshot of counters and category times."""
        return StatsSnapshot(
            counters=dict(self._counters),
            category_ns=dict(self._category_ns),
            now_ns=self._clock.now_ns,
        )

    def reset(self) -> None:
        """Clear all counters and category times (the clock is kept)."""
        self._counters.clear()
        for category in Category:
            self._category_ns[category] = 0.0


class StatsSnapshot:
    """Point-in-time copy of a :class:`StatsCollector`'s state.

    Supports subtraction so an experiment can measure only the interval
    of interest: ``delta = after - before``.
    """

    __slots__ = ("counters", "category_ns", "now_ns")

    def __init__(self, counters: Dict[str, int],
                 category_ns: Dict[Category, float], now_ns: float) -> None:
        self.counters = counters
        self.category_ns = category_ns
        self.now_ns = now_ns

    def __sub__(self, earlier: "StatsSnapshot") -> "StatsSnapshot":
        # Union of keys: a counter present only in the earlier snapshot
        # (e.g. cleared by a reset in between) must still appear in the
        # delta instead of being silently dropped.
        counters = {
            name: self.counters.get(name, 0)
            - earlier.counters.get(name, 0)
            for name in self.counters.keys() | earlier.counters.keys()
        }
        category_ns = {
            category: self.category_ns.get(category, 0.0)
            - earlier.category_ns.get(category, 0.0)
            for category in
            self.category_ns.keys() | earlier.category_ns.keys()
        }
        return StatsSnapshot(counters, category_ns,
                             self.now_ns - earlier.now_ns)

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    @property
    def elapsed_ns(self) -> float:
        return self.now_ns
