"""Phase profiler: wall-vs-simulated time attribution per run phase.

The paper's end-of-run wall clock cannot say *where* a slow experiment
spent its host time — loading, executing transactions, checkpointing,
or recovering. The profiler wraps each phase of a run
(``setup / load / run / checkpoint / recovery / teardown``) in a
context manager that charges **host wall seconds** (``perf_counter``)
and, when a database is in scope, **simulated nanoseconds** (the
``now_ns`` delta) to the current phase *stack*, so nested phases
(a recovery retried inside a campaign's run loop) attribute correctly.

Outputs:

* :meth:`PhaseProfiler.to_dict` — a ``repro-phase-profile`` payload:
  per-stack wall/sim/count plus total wall time and the attribution
  *coverage* (top-level attributed wall over total — the share of the
  run's host time the profile explains).
* :func:`write_collapsed` — collapsed-stack lines
  (``run;recovery 1234``, self wall time in integer microseconds),
  directly consumable by ``flamegraph.pl`` / speedscope / inferno.
* :func:`merge_profiles` — fold per-point profiles of a sweep into one
  aggregate (the ``--phases`` CLI artifact).

Phase transitions are also published to a telemetry publisher when one
is attached (``phase_enter`` / ``phase_exit`` events on the bus), so a
live observer sees *which phase* a long-running point is in.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from . import bus as _bus

__all__ = ["PHASES", "PhaseProfiler", "merge_profiles",
           "collapsed_lines", "write_collapsed", "PROFILE_KIND"]

#: Canonical experiment phases, in lifecycle order (used for sorting
#: the phase table; arbitrary phase names are allowed).
PHASES = ("setup", "load", "run", "checkpoint", "recovery", "verify",
          "teardown")

PROFILE_KIND = "repro-phase-profile"

_STACK_SEP = ";"


class _PhaseScope:
    """Context manager charging one phase entry/exit."""

    __slots__ = ("_profiler", "_name", "_db", "_wall0", "_sim0")

    def __init__(self, profiler: "PhaseProfiler", name: str,
                 db=None) -> None:
        self._profiler = profiler
        self._name = name
        self._db = db

    def __enter__(self) -> "_PhaseScope":
        self._wall0 = self._profiler._wall()
        self._sim0 = self._db.now_ns if self._db is not None else None
        self._profiler._enter(self._name)
        return self

    def __exit__(self, *exc: object) -> bool:
        wall_s = self._profiler._wall() - self._wall0
        sim_ns = (self._db.now_ns - self._sim0) \
            if self._db is not None else 0.0
        self._profiler._exit(wall_s, sim_ns)
        return False


class _NullScope:
    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class PhaseProfiler:
    """Accumulates wall/sim time per nested phase stack."""

    def __init__(self, publisher=None, enabled: bool = True,
                 wall=time.perf_counter) -> None:
        self.enabled = enabled
        self._publisher = publisher
        self._wall = wall
        self._stack: List[str] = []
        #: stack tuple -> {"wall_s", "sim_ns", "count"} in first-entry
        #: order (dict preserves insertion order).
        self._records: Dict[Tuple[str, ...], Dict[str, float]] = {}
        self._t0: Optional[float] = None
        self._total_wall_s = 0.0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Open the total-wall measurement window (idempotent)."""
        if self.enabled and self._t0 is None:
            self._t0 = self._wall()

    def stop(self) -> None:
        """Close the window; total wall time accumulates across
        start/stop pairs."""
        if self._t0 is not None:
            self._total_wall_s += self._wall() - self._t0
            self._t0 = None

    @property
    def total_wall_s(self) -> float:
        total = self._total_wall_s
        if self._t0 is not None:
            total += self._wall() - self._t0
        return total

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def phase(self, name: str, db=None):
        """Charge the enclosed block to ``name`` (nested under the
        current stack); pass ``db`` to also attribute simulated time."""
        if not self.enabled:
            return _NULL_SCOPE
        return _PhaseScope(self, name, db)

    def _enter(self, name: str) -> None:
        self.start()
        self._stack.append(name)
        if self._publisher is not None:
            self._publisher.publish(
                _bus.PHASE_ENTER, phase=name,
                stack=_STACK_SEP.join(self._stack))

    def _exit(self, wall_s: float, sim_ns: float) -> None:
        key = tuple(self._stack)
        record = self._records.get(key)
        if record is None:
            record = {"wall_s": 0.0, "sim_ns": 0.0, "count": 0}
            self._records[key] = record
        record["wall_s"] += wall_s
        record["sim_ns"] += sim_ns
        record["count"] += 1
        name = self._stack.pop()
        if self._publisher is not None:
            self._publisher.publish(
                _bus.PHASE_EXIT, phase=name,
                stack=_STACK_SEP.join(key),
                wall_s=wall_s, sim_ns=sim_ns)

    # ------------------------------------------------------------------
    # Reports
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready ``repro-phase-profile`` payload."""
        phases = [{
            "stack": _STACK_SEP.join(key),
            "phase": key[-1],
            "depth": len(key) - 1,
            "wall_s": record["wall_s"],
            "sim_ns": record["sim_ns"],
            "count": int(record["count"]),
        } for key, record in self._records.items()]
        return _finalize_profile(phases, self.total_wall_s)


def _finalize_profile(phases: List[Dict[str, Any]],
                      total_wall_s: float) -> Dict[str, Any]:
    attributed = sum(entry["wall_s"] for entry in phases
                     if entry["depth"] == 0)
    coverage = attributed / total_wall_s if total_wall_s > 0 else None
    return {
        "kind": PROFILE_KIND,
        "total_wall_s": total_wall_s,
        "attributed_wall_s": attributed,
        "coverage": coverage,
        "phases": phases,
    }


def merge_profiles(profiles: Iterable[Optional[Dict[str, Any]]]
                   ) -> Dict[str, Any]:
    """Fold per-point profiles into one aggregate (``None`` entries —
    unprofiled points — are skipped)."""
    merged: Dict[str, Dict[str, Any]] = {}
    total_wall_s = 0.0
    for profile in profiles:
        if not profile:
            continue
        total_wall_s += profile.get("total_wall_s", 0.0)
        for entry in profile.get("phases", []):
            stack = entry["stack"]
            slot = merged.get(stack)
            if slot is None:
                merged[stack] = dict(entry)
            else:
                slot["wall_s"] += entry["wall_s"]
                slot["sim_ns"] += entry["sim_ns"]
                slot["count"] += entry["count"]
    return _finalize_profile(list(merged.values()), total_wall_s)


def _self_wall(profile: Dict[str, Any]) -> Dict[str, float]:
    """Exclusive wall seconds per stack: inclusive minus the children's
    inclusive time (the value a flamegraph frame should carry)."""
    inclusive = {entry["stack"]: entry["wall_s"]
                 for entry in profile.get("phases", [])}
    exclusive = dict(inclusive)
    for stack, wall_s in inclusive.items():
        parent = stack.rsplit(_STACK_SEP, 1)[0]
        if parent != stack and parent in exclusive:
            exclusive[parent] -= wall_s
    return exclusive


def collapsed_lines(profile: Dict[str, Any]) -> List[str]:
    """Collapsed-stack lines (``a;b <self-microseconds>``), skipping
    frames whose exclusive time rounds to zero."""
    lines = []
    for stack, wall_s in sorted(_self_wall(profile).items()):
        micros = int(round(wall_s * 1e6))
        if micros > 0:
            lines.append(f"{stack} {micros}")
    return lines


def write_collapsed(profile: Dict[str, Any], path: str) -> int:
    """Write the collapsed-stack file; returns the line count."""
    lines = collapsed_lines(profile)
    with open(path, "w", encoding="utf-8") as stream:
        for line in lines:
            stream.write(line + "\n")
    return len(lines)
