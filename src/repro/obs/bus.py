"""Cross-process telemetry event bus for sweeps and campaigns.

A multi-hour sweep used to be opaque: process-per-point workers ran to
completion and the coordinator learned everything at the end. This
module gives every run a structured event stream instead:

* **Workers** publish typed events — phase transitions, periodic
  progress heartbeats with transaction counts and the sim-clock
  position — through a :class:`PipePublisher` over the *existing*
  scheduler pipe (no extra file descriptors, no sockets).
* **The coordinator** owns an :class:`EventBus`. Point lifecycle events
  (started / finished / retried / crashed) are published by the
  scheduler itself; worker events are re-published as they arrive.
* **Consumers** attach in two ways: push *sinks* see every event (the
  :class:`JsonlEventLog` persists the full stream), and pull
  :class:`BoundedEventQueue` subscriptions buffer events for periodic
  consumers like the live renderer — bounded, with heartbeat
  coalescing, and with every drop **counted**, never silent.

Events are plain data (a kind, a source, a wall timestamp, a payload
dict), so they cross the process boundary as dicts and land in JSONL
logs unchanged. Ordering: the bus assigns a monotonically increasing
``seq`` at publish time, and queues preserve publish order for
non-heartbeat events (a coalesced heartbeat keeps its queue position
but carries the newest payload).

This is the observation substrate the upcoming network tier and the
sharded executor publish into — anything that can call
``publisher.publish(kind, **data)`` becomes observable.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Optional

__all__ = [
    "EVENT_KINDS", "TelemetryEvent", "EventBus", "BoundedEventQueue",
    "JsonlEventLog", "TelemetryPublisher", "BusPublisher",
    "PipePublisher", "HeartbeatEmitter", "DEFAULT_HEARTBEAT_S",
    "DEFAULT_QUEUE_CAPACITY",
]

# Event kinds (the wire vocabulary; free-form kinds are allowed, these
# are the ones the scheduler/campaign/runner emit and the live renderer
# understands).
SWEEP_STARTED = "sweep_started"
SWEEP_FINISHED = "sweep_finished"
POINT_STARTED = "point_started"
POINT_FINISHED = "point_finished"
POINT_RETRIED = "point_retried"
POINT_CRASHED = "point_crashed"
PHASE_ENTER = "phase_enter"
PHASE_EXIT = "phase_exit"
HEARTBEAT = "heartbeat"
CAMPAIGN_STARTED = "campaign_started"
CAMPAIGN_COUNTED = "campaign_counted"
LOG_CLOSED = "log_closed"
CHAOS_STARTED = "chaos_started"
CHAOS_CRASH = "chaos_crash"
CHAOS_RECOVER = "chaos_recover"
CHAOS_FINISHED = "chaos_finished"

EVENT_KINDS = (
    SWEEP_STARTED, SWEEP_FINISHED, POINT_STARTED, POINT_FINISHED,
    POINT_RETRIED, POINT_CRASHED, PHASE_ENTER, PHASE_EXIT, HEARTBEAT,
    CAMPAIGN_STARTED, CAMPAIGN_COUNTED, LOG_CLOSED,
    CHAOS_STARTED, CHAOS_CRASH, CHAOS_RECOVER, CHAOS_FINISHED,
)

#: Minimum wall seconds between heartbeats from one publisher.
DEFAULT_HEARTBEAT_S = 0.25

#: Default pending-event capacity of a subscribed queue.
DEFAULT_QUEUE_CAPACITY = 1024


@dataclass
class TelemetryEvent:
    """One telemetry event: a kind, a source, a timestamp, a payload."""

    kind: str
    #: Emitting entity: ``"sweep"``, a point's ``NNNN-<slug>`` name, ...
    source: str = ""
    #: Free-form JSON-ready payload (txn counts, sim clock, errors...).
    data: Dict[str, Any] = field(default_factory=dict)
    #: Wall-clock epoch seconds at emission (stamped by the publisher;
    #: the bus fills it in if the emitter left it zero).
    wall_s: float = 0.0
    #: Global publish order, assigned by the coordinator bus.
    seq: int = -1

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "source": self.source,
                "seq": self.seq, "wall_s": self.wall_s,
                "data": self.data}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "TelemetryEvent":
        return cls(kind=payload.get("kind", "?"),
                   source=payload.get("source", ""),
                   data=dict(payload.get("data") or {}),
                   wall_s=float(payload.get("wall_s", 0.0)),
                   seq=int(payload.get("seq", -1)))


class BoundedEventQueue:
    """Pull-side event buffer: bounded, heartbeat-coalescing, and
    drop-counting.

    * Non-heartbeat events drain in publish (``seq``) order.
    * A heartbeat whose source already has a pending heartbeat
      *coalesces*: the pending entry is replaced in place with the
      newer payload (``coalesced`` counts how many were folded away).
    * When the queue is full, the **oldest** pending event is dropped
      to make room (the freshest state wins for a live display) and
      ``dropped`` is incremented — drops are always counted, never
      silent.
    """

    def __init__(self, capacity: int = DEFAULT_QUEUE_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self.coalesced = 0
        self._events: Deque[TelemetryEvent] = deque()

    def push(self, event: TelemetryEvent) -> None:
        if event.kind == HEARTBEAT:
            for index in range(len(self._events) - 1, -1, -1):
                pending = self._events[index]
                if pending.kind == HEARTBEAT \
                        and pending.source == event.source:
                    self._events[index] = event
                    self.coalesced += 1
                    return
        if len(self._events) >= self.capacity:
            self._events.popleft()
            self.dropped += 1
        self._events.append(event)

    def drain(self) -> List[TelemetryEvent]:
        """All pending events, oldest first; the queue is left empty."""
        events = list(self._events)
        self._events.clear()
        return events

    def __len__(self) -> int:
        return len(self._events)


class EventBus:
    """Coordinator-side aggregator: assigns order, fans events out.

    ``publish`` stamps each event with a global sequence number, pushes
    it into every subscribed :class:`BoundedEventQueue`, and hands it to
    every sink. Sinks see the complete stream (a JSONL log must not have
    holes); queues are bounded and account for their own losses.
    """

    def __init__(self) -> None:
        self._sinks: List[Callable[[TelemetryEvent], None]] = []
        self._queues: List[BoundedEventQueue] = []
        self._seq = 0
        self.published = 0

    def add_sink(self, sink: Callable[[TelemetryEvent], None]) -> None:
        self._sinks.append(sink)

    def remove_sink(self, sink: Callable[[TelemetryEvent], None]
                    ) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def subscribe(self, capacity: int = DEFAULT_QUEUE_CAPACITY
                  ) -> BoundedEventQueue:
        """A new bounded queue receiving every subsequent event."""
        queue = BoundedEventQueue(capacity)
        self._queues.append(queue)
        return queue

    def publish(self, event, source: str = "",
                **data: Any) -> TelemetryEvent:
        """Publish an event (or build one from ``kind`` + ``data``);
        returns the stamped event."""
        if not isinstance(event, TelemetryEvent):
            event = TelemetryEvent(kind=str(event), source=source,
                                   data=data)
        if event.wall_s == 0.0:
            event.wall_s = time.time()
        event.seq = self._seq
        self._seq += 1
        self.published += 1
        for queue in self._queues:
            queue.push(event)
        for sink in self._sinks:
            sink(event)
        return event

    def stats(self) -> Dict[str, int]:
        """Aggregate accounting: published events plus every
        subscriber's drop/coalesce counts (the non-silent report)."""
        return {
            "published": self.published,
            "dropped": sum(q.dropped for q in self._queues),
            "coalesced": sum(q.coalesced for q in self._queues),
        }


class JsonlEventLog:
    """Bus sink persisting every event as one JSON line.

    Lines are flushed as written so ``tail -f`` follows a running
    sweep. ``close()`` appends a final ``log_closed`` event carrying
    the bus accounting (published/dropped/coalesced), so any queue
    losses are recorded in the artifact itself.
    """

    def __init__(self, path: str,
                 bus: Optional[EventBus] = None) -> None:
        self.path = path
        self.lines = 0
        self._bus = bus
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)
        self._stream = open(path, "w", encoding="utf-8")
        if bus is not None:
            bus.add_sink(self)

    def __call__(self, event: TelemetryEvent) -> None:
        self._stream.write(json.dumps(event.to_dict(), sort_keys=True))
        self._stream.write("\n")
        self._stream.flush()
        self.lines += 1

    def close(self) -> None:
        if self._stream.closed:
            return
        if self._bus is not None:
            self._bus.remove_sink(self)
            stats = dict(self._bus.stats(), lines=self.lines)
            self(TelemetryEvent(kind=LOG_CLOSED, source="log",
                                data=stats, wall_s=time.time(),
                                seq=self._bus.published))
        self._stream.close()

    def __enter__(self) -> "JsonlEventLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Publishers (the worker/run side)
# ----------------------------------------------------------------------

class TelemetryPublisher:
    """Base publisher: event construction + heartbeat rate limiting.

    Subclasses implement :meth:`_emit` to move the event somewhere —
    into a local bus or over a pipe. ``heartbeat()`` is rate-limited to
    one per ``heartbeat_s`` wall seconds, and :meth:`heartbeat_due`
    makes the *pre-collection* gate cheap: callers skip gathering
    counter snapshots entirely between beats.
    """

    def __init__(self, source: str = "",
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        self.source = source
        self.heartbeat_s = heartbeat_s
        self.sent = 0
        self._last_heartbeat = float("-inf")

    def publish(self, kind: str, **data: Any) -> TelemetryEvent:
        event = TelemetryEvent(kind=kind, source=self.source,
                               data=data, wall_s=time.time())
        self._emit(event)
        self.sent += 1
        return event

    def heartbeat_due(self) -> bool:
        return (time.monotonic() - self._last_heartbeat
                >= self.heartbeat_s)

    def heartbeat(self, **data: Any) -> bool:
        """Publish a heartbeat unless one went out too recently;
        returns whether it was sent."""
        now = time.monotonic()
        if now - self._last_heartbeat < self.heartbeat_s:
            return False
        self._last_heartbeat = now
        self.publish(HEARTBEAT, **data)
        return True

    def _emit(self, event: TelemetryEvent) -> None:
        raise NotImplementedError


class BusPublisher(TelemetryPublisher):
    """In-process publisher: events go straight into a local bus
    (serial sweeps, counting runs, anything coordinator-side)."""

    def __init__(self, bus: EventBus, source: str = "",
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        super().__init__(source, heartbeat_s)
        self._bus = bus

    def _emit(self, event: TelemetryEvent) -> None:
        self._bus.publish(event)


class PipePublisher(TelemetryPublisher):
    """Worker-process publisher: events travel the scheduler's result
    pipe as :data:`~repro.harness.ipc.TAG_EVENT` messages, interleaved
    ahead of the final :data:`~repro.harness.ipc.TAG_DONE`. Sends are
    lock-serialized (heartbeats may fire from instrumentation hooks)
    and a dead pipe — the coordinator gave up on this point — degrades
    to counting, never raising into the workload."""

    def __init__(self, conn, source: str = "",
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S) -> None:
        super().__init__(source, heartbeat_s)
        self._conn = conn
        self._lock = threading.Lock()
        self.send_failures = 0

    def _emit(self, event: TelemetryEvent) -> None:
        from ..harness import ipc
        with self._lock:
            if not ipc.send_event(self._conn, event.to_dict()):
                self.send_failures += 1


class HeartbeatEmitter:
    """Per-commit probe turning a running database into heartbeats.

    Installed as ``platform.txn_probe`` on every partition (the same
    pattern as the session's latency histogram: one attribute check per
    transaction when telemetry is off). Each call is gated by the
    publisher's heartbeat window before any counters are gathered, so
    steady-state cost is a clock read and a comparison.

    Heartbeat payload: committed/aborted transaction counts, the
    sim-clock position, and the NVM load/store counters — plus whatever
    the optional ``extra`` callable contributes (campaigns add
    crash/recovery counters).
    """

    def __init__(self, publisher: TelemetryPublisher, db,
                 extra: Optional[Callable[[], Dict[str, Any]]] = None
                 ) -> None:
        self._publisher = publisher
        self._db = db
        self._extra = extra

    def install(self) -> None:
        for partition in self._db.partitions:
            partition.platform.txn_probe = self

    def uninstall(self) -> None:
        for partition in self._db.partitions:
            if partition.platform.txn_probe is self:
                partition.platform.txn_probe = None

    def __call__(self) -> None:
        if not self._publisher.heartbeat_due():
            return
        self.emit()

    def emit(self) -> bool:
        """Collect a snapshot and offer it to the publisher (still
        subject to the rate limit); returns whether it went out."""
        db = self._db
        counters = db.nvm_counters()
        data: Dict[str, Any] = {
            "engine": getattr(db, "engine_name", ""),
            "txns": db.committed_txns,
            "aborted": db.aborted_txns,
            "sim_ns": db.now_ns,
            "nvm_loads": counters["loads"],
            "nvm_stores": counters["stores"],
        }
        if self._extra is not None:
            data.update(self._extra())
        return self._publisher.heartbeat(**data)
