"""Span-based tracer over the simulated clock.

A span covers one engine activity — a WAL fsync, a checkpoint write, an
LSM compaction, a recovery phase — with start/end timestamps taken from
the :class:`~repro.sim.clock.SimClock`, a nesting depth, and free-form
tags. Finished spans land in a bounded ring buffer so a long run keeps
the most recent history instead of growing without bound.

The tracer is **inactive by default**: ``span()`` then returns a shared
no-op context manager and records nothing, which keeps the instrumented
hot paths effectively free when observability is off. The same tracer
object is activated in place (``activate()``), so engines may cache a
reference to it at construction time.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

from ..sim.clock import SimClock

#: Default ring-buffer capacity (finished spans kept).
DEFAULT_CAPACITY = 65536


class Span:
    """One finished span: a named, tagged, timed activity."""

    __slots__ = ("name", "start_ns", "end_ns", "depth", "tags")

    def __init__(self, name: str, start_ns: float, end_ns: float,
                 depth: int, tags: Dict[str, Any]) -> None:
        self.name = name
        self.start_ns = start_ns
        self.end_ns = end_ns
        self.depth = depth
        self.tags = tags

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def component(self) -> str:
        """Engine component: the dotted prefix (``wal.fsync`` → ``wal``)."""
        return self.name.split(".", 1)[0]

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "type": "span",
            "name": self.name,
            "component": self.component,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "dur_ns": self.duration_ns,
            "depth": self.depth,
        }
        if self.tags:
            record["tags"] = self.tags
        return record

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, start={self.start_ns:.0f}, "
                f"dur={self.duration_ns:.0f}, depth={self.depth})")


class _NullSpan:
    """Shared no-op context manager returned by an inactive tracer."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span into its tracer's ring."""

    __slots__ = ("_tracer", "_name", "_tags", "_start_ns", "_depth")

    def __init__(self, tracer: "Tracer", name: str,
                 tags: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._tags = tags

    def __enter__(self) -> "_ActiveSpan":
        self._depth = self._tracer._enter()
        self._start_ns = self._tracer._clock.now_ns
        return self

    def __exit__(self, *exc: object) -> bool:
        self._tracer._exit(Span(self._name, self._start_ns,
                                self._tracer._clock.now_ns,
                                self._depth, self._tags))
        return False

    def tag(self, **tags: Any) -> None:
        """Attach tags discovered while the span is open."""
        self._tags.update(tags)


class Tracer:
    """Ring-buffer span recorder bound to one partition's sim clock."""

    __slots__ = ("_clock", "_spans", "_depth", "capacity", "dropped",
                 "enabled")

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._spans: Optional[Deque[Span]] = None
        self._depth = 0
        self.capacity = 0
        self.dropped = 0
        self.enabled = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def activate(self, capacity: int = DEFAULT_CAPACITY) -> None:
        """Start recording (clears any previously recorded spans)."""
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        self.capacity = capacity
        self._spans = deque(maxlen=capacity)
        self._depth = 0
        self.dropped = 0
        self.enabled = True

    def deactivate(self) -> None:
        """Stop recording; recorded spans remain readable."""
        self.enabled = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def span(self, name: str, **tags: Any):
        """Open a span; use as ``with tracer.span("wal.fsync"): ...``."""
        if not self.enabled:
            return _NULL_SPAN
        return _ActiveSpan(self, name, tags)

    def event(self, name: str, **tags: Any) -> None:
        """Record an instantaneous (zero-duration) span."""
        if not self.enabled:
            return
        now = self._clock.now_ns
        self._record(Span(name, now, now, self._depth, tags))

    def _enter(self) -> int:
        depth = self._depth
        self._depth += 1
        return depth

    def _exit(self, span: Span) -> None:
        self._depth -= 1
        self._record(span)

    def _record(self, span: Span) -> None:
        spans = self._spans
        if spans is None:
            return
        if len(spans) == self.capacity:
            self.dropped += 1
        spans.append(span)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def spans(self) -> List[Span]:
        """Recorded spans, oldest first (ring order: completion time)."""
        return list(self._spans) if self._spans is not None else []

    def components(self) -> Dict[str, int]:
        """Span count per engine component."""
        counts: Dict[str, int] = {}
        for span in self.spans:
            counts[span.component] = counts.get(span.component, 0) + 1
        return counts

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans)

    def __len__(self) -> int:
        return len(self._spans) if self._spans is not None else 0

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"Tracer({state}, spans={len(self)}, "
                f"dropped={self.dropped})")
