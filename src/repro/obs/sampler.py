"""Periodic counter sampling over simulated time.

A :class:`TimeSeriesSampler` subscribes to a partition's
:class:`~repro.sim.clock.SimClock` and snapshots a set of named probes
(cumulative counters: NVM loads/stores, flushes, fences, allocations,
fsyncs) every ``interval_ms`` of *simulated* time. A run therefore
produces a trajectory — "when did the flush storm happen" — instead of
only end-of-run totals.

The sample list is bounded: when it fills up, every other sample is
dropped and the interval doubles, preserving the overall shape of the
trajectory at half the resolution (the classic decimating profiler
trick), so arbitrarily long runs cannot exhaust memory.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..sim.clock import SimClock

Probe = Callable[[], float]

#: Default sampling cadence in simulated milliseconds.
DEFAULT_INTERVAL_MS = 1.0

#: Default bound on retained samples before decimation kicks in.
DEFAULT_MAX_SAMPLES = 4096


class TimeSeriesSampler:
    """Snapshots probe values on a fixed simulated-time cadence."""

    def __init__(self, clock: SimClock, probes: Dict[str, Probe],
                 interval_ms: float = DEFAULT_INTERVAL_MS,
                 max_samples: int = DEFAULT_MAX_SAMPLES) -> None:
        if interval_ms <= 0:
            raise ValueError("sample interval must be positive")
        if max_samples < 2:
            raise ValueError("need room for at least two samples")
        self._clock = clock
        self._probes = dict(probes)
        self.interval_ns = interval_ms * 1e6
        self.max_samples = max_samples
        self.samples: List[Dict[str, float]] = []
        self._attached = False
        self._next_ns = 0.0

    # ------------------------------------------------------------------

    def attach(self) -> None:
        """Subscribe to the clock and take the t=now baseline sample."""
        if self._attached:
            return
        self._sample()
        self._next_ns = self._clock.now_ns + self.interval_ns
        self._clock.subscribe(self._on_advance)
        self._attached = True

    def detach(self) -> None:
        """Unsubscribe; takes one final sample so the series covers the
        full window. Recorded samples remain readable."""
        if not self._attached:
            return
        self._clock.unsubscribe(self._on_advance)
        self._attached = False
        self._sample()

    # ------------------------------------------------------------------

    def _on_advance(self, ns: float) -> None:
        now = self._clock.now_ns
        if now < self._next_ns:
            return
        self._sample()
        # One sample per crossing: a large advance skips intervals
        # rather than emitting a burst of identical samples.
        intervals = (now - self._next_ns) // self.interval_ns + 1
        self._next_ns += intervals * self.interval_ns

    def _sample(self) -> None:
        sample: Dict[str, float] = {"t_ms": self._clock.now_ns / 1e6}
        for name, probe in self._probes.items():
            sample[name] = probe()
        self.samples.append(sample)
        if len(self.samples) > self.max_samples:
            self._decimate()

    def _decimate(self) -> None:
        """Halve resolution: drop every other sample, double interval."""
        self.samples = self.samples[::2]
        self.interval_ns *= 2

    def __len__(self) -> int:
        return len(self.samples)

    def __repr__(self) -> str:
        return (f"TimeSeriesSampler(samples={len(self.samples)}, "
                f"interval={self.interval_ns / 1e6:g} ms)")
