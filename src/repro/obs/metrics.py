"""Metrics: counters, gauges, and log-bucketed latency histograms.

Metric instruments are identified by a name plus a label set, mirroring
the Prometheus data model, and live in a :class:`MetricsRegistry` so an
experiment (or several — e.g. an ``--all-engines`` sweep) accumulates
into one exportable collection.

Histograms use geometric ("log") buckets: bucket ``k`` holds values in
``(GROWTH**(k-1), GROWTH**k]`` with ``GROWTH = sqrt(2)``, i.e. two
buckets per octave. Percentile estimates return the upper bound of the
bucket containing the requested rank, which bounds the relative error
by the growth factor — plenty for p50/p95/p99 over simulated-nanosecond
latencies spanning several orders of magnitude.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

#: Geometric bucket growth factor (two buckets per power of two).
GROWTH = math.sqrt(2.0)
_LOG_GROWTH = math.log(GROWTH)

LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Metric:
    """Common identity for all instruments."""

    kind = "untyped"

    def __init__(self, name: str, labels: Dict[str, str],
                 help: str = "") -> None:
        self.name = name
        self.labels = dict(labels)
        self.help = help


class Counter(Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: Dict[str, str],
                 help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge(Metric):
    """A value that can go up and down."""

    kind = "gauge"

    def __init__(self, name: str, labels: Dict[str, str],
                 help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram(Metric):
    """Log-bucketed distribution of non-negative values."""

    kind = "histogram"

    def __init__(self, name: str, labels: Dict[str, str],
                 help: str = "") -> None:
        super().__init__(name, labels, help)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = 0.0

    @staticmethod
    def bucket_index(value: float) -> int:
        """Index of the bucket whose upper bound is ``GROWTH**index``."""
        if value <= 1.0:
            return 0
        return math.ceil(math.log(value) / _LOG_GROWTH - 1e-12)

    @staticmethod
    def bucket_bound(index: int) -> float:
        return GROWTH ** index

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        for index, count in other.buckets.items():
            self.buckets[index] = self.buckets.get(index, 0) + count
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"negative observation: {value}")
        index = self.bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Upper bound of the bucket containing the ``pct``-th rank
        (0 < pct <= 100). Returns 0.0 on an empty histogram."""
        if not 0 < pct <= 100:
            raise ValueError(f"percentile out of range: {pct}")
        if self.count == 0:
            return 0.0
        rank = math.ceil(self.count * pct / 100.0)
        seen = 0
        for index in sorted(self.buckets):
            seen += self.buckets[index]
            if seen >= rank:
                # The true maximum caps the top bucket's upper bound.
                return min(self.bucket_bound(index), self.max)
        return self.max

    def percentiles(self, pcts: Iterable[float] = (50, 95, 99)
                    ) -> Dict[str, float]:
        summary = {f"p{pct:g}": self.percentile(pct) for pct in pcts}
        summary["max"] = self.max if self.count else 0.0
        return summary

    def cumulative_buckets(self) -> List[Tuple[float, int]]:
        """(upper bound, cumulative count) pairs, Prometheus-style."""
        pairs: List[Tuple[float, int]] = []
        total = 0
        for index in sorted(self.buckets):
            total += self.buckets[index]
            pairs.append((self.bucket_bound(index), total))
        return pairs


class MetricsRegistry:
    """Get-or-create registry of metric instruments."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, str, LabelSet], Metric] = {}

    def _get(self, cls, name: str, labels: Dict[str, str],
             help: str) -> Metric:
        key = (cls.kind, name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, help)
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, help: str = "",
                **labels: str) -> Counter:
        return self._get(Counter, name, labels, help)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, labels, help)

    def histogram(self, name: str, help: str = "",
                  **labels: str) -> Histogram:
        return self._get(Histogram, name, labels, help)

    def collect(self) -> List[Metric]:
        """All instruments, grouped by name (stable export order)."""
        return sorted(self._metrics.values(),
                      key=lambda m: (m.name, _labelset(m.labels)))

    def merge_from(self, other: "MetricsRegistry") -> None:
        """Fold another registry's instruments into this one: counters
        add, histograms merge buckets, gauges take the newer value.
        Used to combine per-worker registries from a parallel sweep
        into one exportable collection."""
        for metric in other.collect():
            if isinstance(metric, Counter):
                self.counter(metric.name, help=metric.help,
                             **metric.labels).inc(metric.value)
            elif isinstance(metric, Histogram):
                self.histogram(metric.name, help=metric.help,
                               **metric.labels).merge(metric)
            elif isinstance(metric, Gauge):
                self.gauge(metric.name, help=metric.help,
                           **metric.labels).set(metric.value)

    def find(self, name: str, **labels: str) -> Optional[Metric]:
        """Look up an instrument without creating it."""
        want = _labelset(labels)
        for metric in self._metrics.values():
            if metric.name == name and _labelset(metric.labels) == want:
                return metric
        return None

    def __len__(self) -> int:
        return len(self._metrics)
