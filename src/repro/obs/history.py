"""Run-history aggregation: the ``repro report`` subcommand's engine.

Every harness run leaves a self-describing artifact behind — committed
``BENCH_*.json`` performance snapshots, per-sweep ``summary.json``
files, crash-campaign reports, telemetry event logs. This module walks
those artifacts and folds them into one trajectory report:

* :func:`collect_bench_history` — every bench payload in a results
  directory, in filename (timestamp) order, baseline first.
* :func:`bench_trajectory` — per-bench first/last/best ops/s across
  that history, with the last run's delta against its predecessor
  (the ``repro bench --history`` table).
* :func:`collect_sweep_summaries` / :func:`collect_crashtest_reports` /
  :func:`collect_event_logs` — recursive artifact discovery by payload
  ``kind`` (file names don't matter, content does).
* :func:`build_report` — the combined ``repro-history-report`` JSON.
* :func:`render_markdown` — the same report as a human-readable
  markdown document.

Imports of the bench machinery are function-local: the bench harness
pulls in the full database stack, which itself imports ``repro.obs``.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = ["collect_bench_history", "bench_trajectory",
           "collect_sweep_summaries", "collect_crashtest_reports",
           "collect_event_logs", "build_report", "render_markdown",
           "REPORT_KIND"]

REPORT_KIND = "repro-history-report"

#: Default locations scanned for sweep/campaign/event-log artifacts.
DEFAULT_SCAN_DIRS = ("artifacts",)

#: Default bench results directory (committed trajectory).
DEFAULT_BENCH_DIR = os.path.join("benchmarks", "results")


# ----------------------------------------------------------------------
# Bench trajectory
# ----------------------------------------------------------------------

def collect_bench_history(results_dir: str = DEFAULT_BENCH_DIR
                          ) -> List[Dict[str, Any]]:
    """Every valid ``BENCH_*.json`` in ``results_dir``, oldest first
    (the committed ``BENCH_baseline.json`` leads). Invalid payloads are
    reported, not silently skipped."""
    from ..bench.report import load_payload
    try:
        names = sorted(
            name for name in os.listdir(results_dir)
            if name.startswith("BENCH_") and name.endswith(".json"))
    except OSError:
        return []
    # Timestamped names sort chronologically; the baseline predates all.
    names.sort(key=lambda name: (name != "BENCH_baseline.json", name))
    history = []
    for name in names:
        path = os.path.join(results_dir, name)
        entry: Dict[str, Any] = {"path": path, "name": name}
        try:
            payload = load_payload(path)
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            entry["error"] = str(exc)
        else:
            entry["created_utc"] = payload.get("created_utc")
            entry["quick"] = payload.get("quick")
            entry["results"] = {
                result["name"]: {
                    "ops_per_s": result.get("ops_per_s"),
                    "sim_time_ns": result.get("sim_time_ns"),
                }
                for result in payload.get("results", [])
                if isinstance(result, dict) and "name" in result}
        history.append(entry)
    return history


def bench_trajectory(history: Sequence[Dict[str, Any]]
                     ) -> Tuple[List[str], List[List[Any]]]:
    """Fold a bench history into one row per bench: run count,
    first/last/best ops/s, and the last run's move against the run
    before it (``(headers, rows)``, table-ready)."""
    series: Dict[str, List[float]] = {}
    order: List[str] = []
    for entry in history:
        for name, result in (entry.get("results") or {}).items():
            ops = result.get("ops_per_s")
            if not isinstance(ops, (int, float)):
                continue
            if name not in series:
                series[name] = []
                order.append(name)
            series[name].append(float(ops))
    headers = ["bench", "runs", "first ops/s", "last ops/s",
               "best ops/s", "last delta"]
    rows: List[List[Any]] = []
    for name in order:
        values = series[name]
        if len(values) >= 2 and values[-2]:
            delta = f"{(values[-1] / values[-2] - 1.0) * 100:+.1f}%"
        else:
            delta = "-"
        rows.append([name, len(values), round(values[0], 1),
                     round(values[-1], 1), round(max(values), 1),
                     delta])
    return headers, rows


# ----------------------------------------------------------------------
# Artifact discovery (by content, not by name)
# ----------------------------------------------------------------------

def _walk_files(roots: Sequence[str], suffix: str) -> List[str]:
    paths: List[str] = []
    for root in roots:
        if os.path.isfile(root):
            if root.endswith(suffix):
                paths.append(root)
            continue
        for directory, __, names in os.walk(root):
            paths.extend(os.path.join(directory, name)
                         for name in sorted(names)
                         if name.endswith(suffix))
    return sorted(set(paths))


def _load_json_kind(path: str) -> Optional[Dict[str, Any]]:
    try:
        with open(path, "r", encoding="utf-8") as stream:
            document = json.load(stream)
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return None
    return document if isinstance(document, dict) else None


def collect_sweep_summaries(roots: Sequence[str] = DEFAULT_SCAN_DIRS
                            ) -> List[Dict[str, Any]]:
    """Every ``repro-sweep-summary`` JSON under ``roots``, digested to
    point/failure/retry counts plus the failed points' error headlines."""
    summaries = []
    for path in _walk_files(roots, ".json"):
        document = _load_json_kind(path)
        if not document or \
                document.get("kind") != "repro-sweep-summary":
            continue
        points = document.get("points", [])
        failed = [point for point in points if not point.get("ok")]
        summaries.append({
            "path": path,
            "points": len(points),
            "failed": len(failed),
            "retries": sum(max(0, point.get("attempts", 1) - 1)
                           for point in points),
            "host_seconds": round(sum(point.get("host_seconds", 0.0)
                                      for point in points), 3),
            "errors": [_headline(point.get("error"))
                       for point in failed],
        })
    return summaries


def collect_crashtest_reports(roots: Sequence[str] = DEFAULT_SCAN_DIRS
                              ) -> List[Dict[str, Any]]:
    """Every ``repro-crashtest-report`` JSON under ``roots``, digested
    to outcome counts (violations and failures stay verbatim — they are
    the campaign's entire point)."""
    reports = []
    for path in _walk_files(roots, ".json"):
        document = _load_json_kind(path)
        if not document or \
                document.get("kind") != "repro-crashtest-report":
            continue
        reports.append({
            "path": path,
            "ok": document.get("ok"),
            "engines": document.get("engines", []),
            "coordinates": len(document.get("coordinates", [])),
            "violations": document.get("violations", []),
            "failures": [_headline(failure)
                         for failure in document.get("failures", [])],
            "uncovered": document.get("uncovered", {}),
        })
    return reports


def collect_event_logs(roots: Sequence[str] = DEFAULT_SCAN_DIRS
                       ) -> List[Dict[str, Any]]:
    """Every telemetry event log (JSONL of ``kind``/``seq`` records)
    under ``roots``, digested to event counts and the closing bus
    accounting."""
    logs = []
    for path in _walk_files(roots, ".jsonl"):
        kinds: Dict[str, int] = {}
        closing: Dict[str, Any] = {}
        valid = False
        try:
            with open(path, "r", encoding="utf-8") as stream:
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    record = json.loads(line)
                    if not isinstance(record, dict) \
                            or "kind" not in record \
                            or "seq" not in record:
                        valid = False
                        break
                    valid = True
                    kind = record["kind"]
                    kinds[kind] = kinds.get(kind, 0) + 1
                    if kind == "log_closed":
                        closing = record.get("data", {})
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            continue
        if not valid:
            continue
        logs.append({
            "path": path,
            "events": sum(kinds.values()),
            "kinds": dict(sorted(kinds.items())),
            "accounting": closing,
        })
    return logs


def _headline(error: Any) -> Any:
    if not isinstance(error, str):
        return error
    for line in reversed(error.splitlines()):
        if line.strip():
            return line.strip()
    return error


# ----------------------------------------------------------------------
# The combined report
# ----------------------------------------------------------------------

def build_report(bench_dir: str = DEFAULT_BENCH_DIR,
                 scan_dirs: Sequence[str] = DEFAULT_SCAN_DIRS
                 ) -> Dict[str, Any]:
    """Aggregate everything on disk into one ``repro-history-report``
    payload (JSON-ready)."""
    history = collect_bench_history(bench_dir)
    headers, rows = bench_trajectory(history)
    return {
        "kind": REPORT_KIND,
        "bench": {
            "results_dir": bench_dir,
            "runs": [{key: entry[key] for key in
                      ("name", "created_utc", "quick", "error")
                      if key in entry}
                     for entry in history],
            "trajectory": {"headers": headers, "rows": rows},
        },
        "sweeps": collect_sweep_summaries(scan_dirs),
        "campaigns": collect_crashtest_reports(scan_dirs),
        "event_logs": collect_event_logs(scan_dirs),
    }


def render_markdown(report: Dict[str, Any]) -> str:
    """The history report as a markdown document."""
    lines: List[str] = ["# Run history", ""]

    bench = report.get("bench", {})
    runs = bench.get("runs", [])
    lines.append(f"## Bench trajectory ({len(runs)} runs in "
                 f"`{bench.get('results_dir', '?')}`)")
    lines.append("")
    trajectory = bench.get("trajectory", {})
    rows = trajectory.get("rows", [])
    if rows:
        headers = trajectory.get("headers", [])
        lines.append("| " + " | ".join(str(h) for h in headers) + " |")
        lines.append("|" + "---|" * len(headers))
        for row in rows:
            lines.append("| " + " | ".join(str(cell) for cell in row)
                         + " |")
    else:
        lines.append("No committed bench results found.")
    bad_runs = [run for run in runs if run.get("error")]
    for run in bad_runs:
        lines.append(f"- invalid payload `{run['name']}`: "
                     f"{run['error']}")
    lines.append("")

    sweeps = report.get("sweeps", [])
    lines.append(f"## Sweeps ({len(sweeps)} summaries)")
    lines.append("")
    for sweep in sweeps:
        status = "ok" if not sweep["failed"] \
            else f"{sweep['failed']} FAILED"
        lines.append(f"- `{sweep['path']}`: {sweep['points']} points, "
                     f"{status}, {sweep['retries']} retries, "
                     f"{sweep['host_seconds']} host-s")
        for error in sweep.get("errors", []):
            lines.append(f"  - {error}")
    if not sweeps:
        lines.append("No sweep summaries found.")
    lines.append("")

    campaigns = report.get("campaigns", [])
    lines.append(f"## Crash campaigns ({len(campaigns)} reports)")
    lines.append("")
    for campaign in campaigns:
        status = "ok" if campaign.get("ok") else "NOT OK"
        engines = ", ".join(campaign.get("engines", [])) or "?"
        lines.append(f"- `{campaign['path']}`: {engines} — "
                     f"{campaign['coordinates']} coordinates, {status}")
        for violation in campaign.get("violations", []):
            lines.append(f"  - violation: {violation}")
        for failure in campaign.get("failures", []):
            lines.append(f"  - failure: {failure}")
        for engine, points in sorted(
                (campaign.get("uncovered") or {}).items()):
            if points:
                lines.append(f"  - uncovered[{engine}]: "
                             f"{', '.join(points)}")
    if not campaigns:
        lines.append("No campaign reports found.")
    lines.append("")

    logs = report.get("event_logs", [])
    lines.append(f"## Telemetry event logs ({len(logs)})")
    lines.append("")
    for log in logs:
        accounting = log.get("accounting") or {}
        dropped = accounting.get("dropped", 0)
        lines.append(f"- `{log['path']}`: {log['events']} events, "
                     f"{dropped} dropped")
    if not logs:
        lines.append("No event logs found.")
    lines.append("")
    return "\n".join(lines)
