"""Observability: span tracing, metrics, time-series sampling, exporters.

The subsystem mirrors the instrumentation the paper relies on for its
evaluation (hardware counters, execution-time breakdowns, recovery
latencies) but exposes it continuously instead of as end-of-run deltas:

* :mod:`repro.obs.tracer` — nestable spans over the engines' durability
  hot paths (WAL, checkpointing, LSM flush/compaction, CoW persistence,
  recovery phases), timestamped with the *simulated* clock.
* :mod:`repro.obs.metrics` — counters, gauges, and log-bucketed latency
  histograms (p50/p95/p99/max).
* :mod:`repro.obs.sampler` — periodic counter snapshots that turn a run
  into a trajectory, not just totals.
* :mod:`repro.obs.export` — JSONL trace dump, Prometheus-style text
  metrics, and human-readable summaries.
* :mod:`repro.obs.session` — harness glue attaching all of the above to
  a :class:`~repro.core.database.Database`.
* :mod:`repro.obs.bus` — cross-process telemetry event bus: workers
  stream typed events (point lifecycle, phase transitions, progress
  heartbeats) over the scheduler pipe into a coordinator-side
  aggregator with JSONL event logs and bounded, drop-counted queues.
* :mod:`repro.obs.live` — TTY-gated live progress renderer over the
  bus (``--live``), with a plain-log fallback.
* :mod:`repro.obs.profiler` — per-phase wall-vs-simulated time
  attribution (setup/load/run/checkpoint/recovery/teardown) with
  collapsed-stack flamegraph export.
* :mod:`repro.obs.history` — run-history aggregation backing the
  ``repro report`` subcommand.

Everything is opt-in: the default tracer is inactive and records
nothing, so instrumented code paths cost one attribute check when
observability is off.
"""

from .bus import (BoundedEventQueue, BusPublisher, EventBus,
                  HeartbeatEmitter, JsonlEventLog, PipePublisher,
                  TelemetryEvent, TelemetryPublisher)
from .live import LiveRenderer
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profiler import PhaseProfiler, merge_profiles, write_collapsed
from .sampler import TimeSeriesSampler
from .session import ObservabilityOptions, ObservabilitySession
from .tracer import Span, Tracer

__all__ = [
    "BoundedEventQueue",
    "BusPublisher",
    "Counter",
    "EventBus",
    "Gauge",
    "HeartbeatEmitter",
    "Histogram",
    "JsonlEventLog",
    "LiveRenderer",
    "MetricsRegistry",
    "ObservabilityOptions",
    "ObservabilitySession",
    "PhaseProfiler",
    "PipePublisher",
    "Span",
    "TelemetryEvent",
    "TelemetryPublisher",
    "TimeSeriesSampler",
    "Tracer",
    "merge_profiles",
    "write_collapsed",
]
