"""Observability: span tracing, metrics, time-series sampling, exporters.

The subsystem mirrors the instrumentation the paper relies on for its
evaluation (hardware counters, execution-time breakdowns, recovery
latencies) but exposes it continuously instead of as end-of-run deltas:

* :mod:`repro.obs.tracer` — nestable spans over the engines' durability
  hot paths (WAL, checkpointing, LSM flush/compaction, CoW persistence,
  recovery phases), timestamped with the *simulated* clock.
* :mod:`repro.obs.metrics` — counters, gauges, and log-bucketed latency
  histograms (p50/p95/p99/max).
* :mod:`repro.obs.sampler` — periodic counter snapshots that turn a run
  into a trajectory, not just totals.
* :mod:`repro.obs.export` — JSONL trace dump, Prometheus-style text
  metrics, and human-readable summaries.
* :mod:`repro.obs.session` — harness glue attaching all of the above to
  a :class:`~repro.core.database.Database`.

Everything is opt-in: the default tracer is inactive and records
nothing, so instrumented code paths cost one attribute check when
observability is off.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .sampler import TimeSeriesSampler
from .session import ObservabilityOptions, ObservabilitySession
from .tracer import Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObservabilityOptions",
    "ObservabilitySession",
    "Span",
    "TimeSeriesSampler",
    "Tracer",
]
