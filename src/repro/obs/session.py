"""Harness glue: attach tracing, metrics, and sampling to a database.

An :class:`ObservabilitySession` outlives a single experiment so a
sweep (``--all-engines``) accumulates every engine's spans, samples,
and metrics into one trace file and one metrics file. Lifecycle::

    session = ObservabilitySession()
    session.attach(db, engine="inp", workload="ycsb/balanced/low")
    session.begin_run(db)      # start of the measurement window
    ...run the workload...
    stats = session.end_run(db)    # percentiles + timeseries
    session.detach(db)             # archive spans/samples
    session.export_trace("out.jsonl")
    session.export_metrics("out.prom")

The session deliberately knows nothing about concrete database or
platform classes — it only uses the ``partitions[*].platform`` duck
type — so it imports nothing from ``core``/``nvm`` and stays
cycle-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from . import export
from .metrics import MetricsRegistry
from .sampler import DEFAULT_INTERVAL_MS, DEFAULT_MAX_SAMPLES, \
    TimeSeriesSampler
from .tracer import DEFAULT_CAPACITY

#: Primitive operations counted per engine/workload by the executor.
OPERATIONS = ("insert", "update", "delete", "get", "get_secondary",
              "scan")


@dataclass(frozen=True)
class ObservabilityOptions:
    """Tunables for one observability session."""

    trace_capacity: int = DEFAULT_CAPACITY
    sample_interval_ms: float = DEFAULT_INTERVAL_MS
    max_samples: int = DEFAULT_MAX_SAMPLES


def _platform_probes(platform) -> Dict[str, Any]:
    """Cumulative counters sampled into the time series."""
    stats = platform.stats
    device = platform.device
    return {
        "nvm_loads": lambda: float(device.loads),
        "nvm_stores": lambda: float(device.stores),
        "flushes": lambda: float(stats.counter("cache.clflush")
                                 + stats.counter("cache.clwb")),
        "fences": lambda: float(stats.counter("cache.sfence")),
        "allocs": lambda: float(stats.counter("alloc.malloc")),
        "alloc_syncs": lambda: float(stats.counter("alloc.sync")),
        "fsyncs": lambda: float(stats.counter("fs.fsyncs")),
    }


class ObservabilitySession:
    """Collects spans, metrics, and time series across experiments."""

    def __init__(self,
                 options: Optional[ObservabilityOptions] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.options = options or ObservabilityOptions()
        self.registry = registry or MetricsRegistry()
        #: Archived span/sample records from detached runs.
        self.records: List[Dict[str, Any]] = []
        self._samplers: List[TimeSeriesSampler] = []
        self._engine = ""
        self._workload = ""
        self._baseline: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # Attach / detach (whole experiment, including load & recovery)
    # ------------------------------------------------------------------

    def attach(self, db, engine: str, workload: str) -> None:
        """Activate tracers and samplers on every partition of ``db``.

        A database that instruments itself remotely (the sharded tier's
        :class:`~repro.dist.coordinator.ShardedDatabase`, whose
        partitions live in other processes) exposes ``obs_attach`` /
        ``obs_begin_run`` / ``obs_end_run`` / ``obs_detach`` hooks; the
        session delegates to them and receives the per-partition
        records and metrics back, merged in partition order."""
        self._engine = engine
        self._workload = workload
        hook = getattr(db, "obs_attach", None)
        if hook is not None:
            hook(self, engine, workload)
            return
        self._samplers = []
        for partition in db.partitions:
            platform = partition.platform
            platform.tracer.activate(self.options.trace_capacity)
            sampler = TimeSeriesSampler(
                platform.clock, _platform_probes(platform),
                interval_ms=self.options.sample_interval_ms,
                max_samples=self.options.max_samples)
            sampler.attach()
            platform.sampler = sampler
            self._samplers.append(sampler)
            platform.op_counters = {
                op: self.registry.counter(
                    "db.ops", help="Primitive operations executed",
                    op=op, engine=engine, workload=workload)
                for op in OPERATIONS
            }

    def detach(self, db) -> None:
        """Archive spans/samples and deactivate all instrumentation."""
        hook = getattr(db, "obs_detach", None)
        if hook is not None:
            hook(self)
            return
        for partition, sampler in zip(db.partitions, self._samplers):
            platform = partition.platform
            tags = {"engine": self._engine,
                    "workload": self._workload,
                    "partition": partition.partition_id}
            for span in platform.tracer.spans:
                self.records.append({**span.to_dict(), **tags})
            if platform.tracer.dropped:
                self.registry.counter(
                    "trace.dropped_spans",
                    help="Spans dropped by the ring buffer",
                    engine=self._engine).inc(platform.tracer.dropped)
            platform.tracer.deactivate()
            sampler.detach()
            for sample in sampler.samples:
                self.records.append(
                    {"type": "sample", **tags, **sample})
            platform.sampler = None
            platform.op_counters = None
            platform.txn_latency = None
        self._samplers = []

    # ------------------------------------------------------------------
    # Measurement window (the timed workload run)
    # ------------------------------------------------------------------

    def begin_run(self, db) -> None:
        """Start the measurement window: arm the per-transaction
        latency histogram and snapshot run-level counters."""
        hook = getattr(db, "obs_begin_run", None)
        if hook is not None:
            hook(self)
            return
        histogram = self.registry.histogram(
            "txn.latency_ns",
            help="Per-transaction simulated latency",
            engine=self._engine, workload=self._workload)
        for partition in db.partitions:
            partition.platform.txn_latency = histogram
        counters = db.nvm_counters()
        self._baseline = {
            "committed": db.committed_txns,
            "aborted": db.aborted_txns,
            "loads": counters["loads"],
            "stores": counters["stores"],
            "now_ns": db.now_ns,
        }

    def end_run(self, db) -> Dict[str, Any]:
        """Close the measurement window; returns ``latency_percentiles``
        and the counter ``timeseries`` collected so far."""
        hook = getattr(db, "obs_end_run", None)
        if hook is not None:
            return hook(self)
        histogram = self.registry.histogram(
            "txn.latency_ns", engine=self._engine,
            workload=self._workload)
        for partition in db.partitions:
            partition.platform.txn_latency = None
        labels = {"engine": self._engine, "workload": self._workload}
        counters = db.nvm_counters()
        base = self._baseline or {}
        self.registry.counter(
            "txns.committed", help="Committed transactions",
            **labels).inc(db.committed_txns - base.get("committed", 0))
        self.registry.counter(
            "txns.aborted", help="Aborted transactions",
            **labels).inc(db.aborted_txns - base.get("aborted", 0))
        self.registry.counter(
            "nvm.loads", help="Cachelines loaded from NVM",
            **labels).inc(counters["loads"] - base.get("loads", 0))
        self.registry.counter(
            "nvm.stores", help="Cachelines stored to NVM",
            **labels).inc(counters["stores"] - base.get("stores", 0))
        self.registry.gauge(
            "run.sim_seconds", help="Simulated duration of the run",
            **labels).set((db.now_ns - base.get("now_ns", 0.0)) / 1e9)
        return {
            "latency_percentiles": histogram.percentiles(),
            "timeseries": self.timeseries(db),
        }

    def timeseries(self, db) -> List[Dict[str, float]]:
        """Samples collected so far on the attached database (merged
        across partitions, tagged when there is more than one)."""
        merged: List[Dict[str, float]] = []
        for partition, sampler in zip(db.partitions, self._samplers):
            for sample in sampler.samples:
                if len(self._samplers) > 1:
                    sample = {"partition": partition.partition_id,
                              **sample}
                merged.append(dict(sample))
        return merged

    # ------------------------------------------------------------------
    # Cross-session merge (parallel sweeps)
    # ------------------------------------------------------------------

    def merge(self, other: "ObservabilitySession") -> None:
        """Fold a detached session into this one: archived records are
        appended, metric instruments are merged by identity. A sweep
        runs one session per point in each worker process, sends the
        (plain-data, picklable) session back, and merges in spec order —
        the exports are then identical to a serial shared-session run,
        whose record order is normalized at export time anyway."""
        if other._samplers:
            raise ValueError("detach the session before merging it")
        self.records.extend(other.records)
        self.registry.merge_from(other.registry)

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------

    def export_trace(self, path: str) -> int:
        """Write archived span/sample records as JSONL; returns the
        line count."""
        records = sorted(self.records,
                         key=lambda r: (r.get("engine", ""),
                                        r.get("partition", 0),
                                        r.get("start_ns",
                                              r.get("t_ms", 0.0))))
        with open(path, "w", encoding="utf-8") as stream:
            return export.write_trace_jsonl(records, stream)

    def export_metrics(self, path: str) -> int:
        """Write the metrics registry in Prometheus text format;
        returns the sample line count."""
        with open(path, "w", encoding="utf-8") as stream:
            return export.write_prometheus(self.registry, stream)

    def summary(self) -> str:
        """Human-readable digest of everything collected so far."""
        import io
        stream = io.StringIO()
        export.write_prometheus(self.registry, stream)
        return (export.summarize_trace(self.records)
                + "\n\n" + export.summarize_metrics(stream.getvalue()))
