"""Live in-terminal progress for sweeps and crash campaigns.

The renderer subscribes to an :class:`~repro.obs.bus.EventBus` and
keeps a tiny rolling model of the run: points done/failed/retried,
worker and simulated crashes, per-engine throughput (freshest
heartbeat wins, finished-point results override), and an ETA from the
observed point completion rate.

Two output modes, auto-detected from the stream:

* **TTY** — a single status line redrawn in place (``\\r`` + erase),
  updated at most every ``min_refresh_s``.
* **plain log** — one line per point lifecycle event plus a periodic
  heartbeat digest; safe for CI logs and ``| tee``.

The renderer is registered as a bus *sink* purely as a wake-up signal
(every published event offers a redraw opportunity); the events
themselves are consumed from a bounded queue, so a stalled terminal
costs bounded memory and the losses are counted, not hidden.
"""

from __future__ import annotations

import sys
import time
from typing import Any, Dict, Optional, TextIO

from . import bus as _bus
from .bus import EventBus, TelemetryEvent

__all__ = ["LiveRenderer"]

#: Minimum wall seconds between TTY redraws.
DEFAULT_REFRESH_S = 0.2

#: Minimum wall seconds between heartbeat digest lines in plain mode.
DEFAULT_PLAIN_HEARTBEAT_S = 5.0


def _fmt_rate(value: float) -> str:
    if value >= 1e6:
        return f"{value / 1e6:.1f}M"
    if value >= 1e3:
        return f"{value / 1e3:.1f}k"
    return f"{value:.0f}"


def _fmt_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    if seconds >= 60:
        return f"{seconds // 60}m{seconds % 60:02d}s"
    return f"{seconds}s"


class LiveRenderer:
    """Render bus events as live progress on a terminal stream."""

    def __init__(self, bus: EventBus,
                 total_points: Optional[int] = None,
                 stream: Optional[TextIO] = None,
                 live: Optional[bool] = None,
                 min_refresh_s: float = DEFAULT_REFRESH_S,
                 plain_heartbeat_s: float = DEFAULT_PLAIN_HEARTBEAT_S,
                 clock=time.monotonic) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if live is None:
            live = bool(getattr(self._stream, "isatty", lambda: False)())
        #: True: in-place status line; False: plain log lines.
        self.tty = live
        self._queue = bus.subscribe()
        self._bus = bus
        bus.add_sink(self._wake)
        self._clock = clock
        self._min_refresh_s = min_refresh_s
        self._plain_heartbeat_s = plain_heartbeat_s
        self._last_render = float("-inf")
        self._last_plain_heartbeat = float("-inf")
        self._started_at = clock()
        self._closed = False
        # Rolling model.
        self.total = total_points
        self.finished = 0
        self.failed = 0
        self.retries = 0
        self.worker_crashes = 0
        self.sim_crashes = 0
        self._engine_rate: Dict[str, float] = {}
        self._line_len = 0

    # ------------------------------------------------------------------
    # Event intake
    # ------------------------------------------------------------------

    def _wake(self, event: TelemetryEvent) -> None:
        self.tick()

    def tick(self, force: bool = False) -> None:
        """Drain pending events and redraw if the refresh window
        elapsed (or ``force``)."""
        if self._closed:
            return
        now = self._clock()
        events = self._queue.drain()
        for event in events:
            self._apply(event)
        if not force and now - self._last_render < self._min_refresh_s:
            return
        if events or force:
            self._last_render = now
            self._render(events)

    def _apply(self, event: TelemetryEvent) -> None:
        data = event.data
        kind = event.kind
        if kind == _bus.SWEEP_STARTED:
            if self.total is None:
                self.total = data.get("points")
        elif kind == _bus.POINT_FINISHED:
            self.finished += 1
            if not data.get("ok", True):
                self.failed += 1
            engine = data.get("engine")
            throughput = data.get("throughput")
            if engine and throughput:
                self._engine_rate[engine] = float(throughput)
        elif kind == _bus.POINT_RETRIED:
            self.retries += 1
        elif kind == _bus.POINT_CRASHED:
            self.worker_crashes += 1
        elif kind == _bus.HEARTBEAT:
            engine = data.get("engine")
            sim_ns = data.get("sim_ns") or 0.0
            txns = data.get("txns") or 0
            if engine and sim_ns:
                self._engine_rate[engine] = txns / (sim_ns / 1e9)
            if "crashes" in data:
                self.sim_crashes = max(self.sim_crashes,
                                       int(data["crashes"]))

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def _status_line(self) -> str:
        parts = []
        done = f"{self.finished}"
        if self.total:
            done += f"/{self.total}"
        parts.append(f"{done} points")
        if self.failed:
            parts.append(f"{self.failed} failed")
        if self.retries:
            parts.append(f"{self.retries} retries")
        crashes = self.worker_crashes + self.sim_crashes
        if crashes:
            parts.append(f"{crashes} crashes")
        if self.total and 0 < self.finished < self.total:
            elapsed = self._clock() - self._started_at
            eta = elapsed / self.finished * (self.total - self.finished)
            parts.append(f"ETA {_fmt_eta(eta)}")
        if self._engine_rate:
            rates = ", ".join(
                f"{engine} {_fmt_rate(rate)} txn/s"
                for engine, rate in sorted(self._engine_rate.items()))
            parts.append(rates)
        dropped = self._bus.stats()["dropped"]
        if dropped:
            parts.append(f"{dropped} events dropped")
        return "[live] " + " | ".join(parts)

    def _render(self, events) -> None:
        if self.tty:
            line = self._status_line()
            pad = " " * max(0, self._line_len - len(line))
            self._stream.write("\r" + line + pad)
            self._stream.flush()
            self._line_len = len(line)
            return
        # Plain mode: one line per lifecycle event, digested heartbeats.
        now = self._clock()
        for event in events:
            data = event.data
            if event.kind == _bus.POINT_FINISHED:
                status = "ok" if data.get("ok", True) else \
                    f"FAILED: {data.get('error', '?')}"
                rate = data.get("throughput")
                rate_s = f" {_fmt_rate(rate)} txn/s" if rate else ""
                self._line(f"point {data.get('index', '?')} "
                           f"{event.source}: {status}{rate_s} "
                           f"({data.get('host_seconds', 0.0):.2f}s)")
            elif event.kind == _bus.POINT_RETRIED:
                self._line(f"point {data.get('index', '?')} "
                           f"{event.source}: retrying "
                           f"(attempt {data.get('attempt', '?')}): "
                           f"{data.get('error', '?')}")
            elif event.kind == _bus.POINT_CRASHED:
                self._line(f"point {data.get('index', '?')} "
                           f"{event.source}: worker crashed "
                           f"(exit code {data.get('exitcode', '?')})")
            elif event.kind == _bus.HEARTBEAT:
                if now - self._last_plain_heartbeat \
                        >= self._plain_heartbeat_s:
                    self._last_plain_heartbeat = now
                    self._line(self._status_line())
            elif event.kind == _bus.SWEEP_STARTED:
                self._line(f"{event.kind}: "
                           f"{data.get('points', '?')} points")
            elif event.kind == _bus.CAMPAIGN_STARTED:
                engines = ", ".join(data.get("engines", [])) or "?"
                self._line(f"{event.kind}: {engines} "
                           f"(seed {data.get('seed', '?')})")

    def _line(self, text: str) -> None:
        self._stream.write(text + "\n")
        self._stream.flush()

    def _summary(self) -> str:
        stats = self._bus.stats()
        tail = ""
        if stats["dropped"] or stats["coalesced"]:
            tail = (f" (display queue: {stats['dropped']} dropped, "
                    f"{stats['coalesced']} heartbeats coalesced)")
        return self._status_line() + tail

    def close(self) -> None:
        """Final forced render plus a closing summary line."""
        if self._closed:
            return
        self.tick(force=True)
        self._bus.remove_sink(self._wake)
        if self.tty:
            self._stream.write("\r" + " " * self._line_len + "\r")
        self._line(self._summary())
        self._closed = True

    def __enter__(self) -> "LiveRenderer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
