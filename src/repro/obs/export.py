"""Exporters: JSONL traces, Prometheus-style text metrics, summaries.

Three output shapes, one source of truth:

* :func:`write_trace_jsonl` — one JSON object per line; ``span`` records
  from the tracers and ``sample`` records from the time-series samplers
  share the file so a single artifact replays the whole run.
* :func:`write_prometheus` — the text exposition format (``# HELP`` /
  ``# TYPE`` / samples). Histograms emit cumulative ``_bucket{le=...}``
  series plus ``_sum`` / ``_count`` and explicit quantile gauges so
  p50/p95/p99 are directly greppable.
* :func:`summarize_trace` / :func:`summarize_metrics` — human-readable
  tables for the ``python -m repro obs`` subcommand.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, TextIO

from ..analysis.tables import format_table
from .metrics import Counter, Gauge, Histogram, MetricsRegistry

#: Quantiles emitted for every histogram.
QUANTILES = (50.0, 95.0, 99.0)


# ----------------------------------------------------------------------
# JSONL traces
# ----------------------------------------------------------------------

def write_trace_jsonl(records: Iterable[Dict[str, Any]],
                      stream: TextIO) -> int:
    """Write trace records (span and sample dicts) as JSON lines;
    returns the number of lines written."""
    count = 0
    for record in records:
        stream.write(json.dumps(record, sort_keys=True))
        stream.write("\n")
        count += 1
    return count


def read_trace_jsonl(stream: TextIO) -> List[Dict[str, Any]]:
    """Parse a JSONL trace back into record dicts (blank lines skipped)."""
    records = []
    for line in stream:
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


# ----------------------------------------------------------------------
# Prometheus text format
# ----------------------------------------------------------------------

def _prom_name(name: str) -> str:
    mangled = "".join(ch if ch.isalnum() else "_" for ch in name)
    return mangled if mangled.startswith("repro_") else f"repro_{mangled}"


def _prom_labels(labels: Dict[str, str], extra: Dict[str, str] = {}
                 ) -> str:
    merged = {**labels, **extra}
    if not merged:
        return ""
    body = ",".join(f'{key}="{value}"'
                    for key, value in sorted(merged.items()))
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def write_prometheus(registry: MetricsRegistry, stream: TextIO) -> int:
    """Write every registered instrument in the Prometheus text
    exposition format; returns the number of sample lines."""
    lines = 0
    seen_headers = set()
    for metric in registry.collect():
        name = _prom_name(metric.name)
        if name not in seen_headers:
            seen_headers.add(name)
            if metric.help:
                stream.write(f"# HELP {name} {metric.help}\n")
            stream.write(f"# TYPE {name} {metric.kind}\n")
        if isinstance(metric, (Counter, Gauge)):
            stream.write(f"{name}{_prom_labels(metric.labels)} "
                         f"{_format_value(metric.value)}\n")
            lines += 1
        elif isinstance(metric, Histogram):
            for bound, cumulative in metric.cumulative_buckets():
                labels = _prom_labels(metric.labels,
                                      {"le": f"{bound:.6g}"})
                stream.write(f"{name}_bucket{labels} {cumulative}\n")
                lines += 1
            inf_labels = _prom_labels(metric.labels, {"le": "+Inf"})
            stream.write(f"{name}_bucket{inf_labels} {metric.count}\n")
            stream.write(f"{name}_sum{_prom_labels(metric.labels)} "
                         f"{_format_value(metric.sum)}\n")
            stream.write(f"{name}_count{_prom_labels(metric.labels)} "
                         f"{metric.count}\n")
            lines += 3
            for pct in QUANTILES:
                labels = _prom_labels(metric.labels,
                                      {"quantile": f"{pct / 100:g}"})
                stream.write(f"{name}_quantile{labels} "
                             f"{_format_value(metric.percentile(pct))}\n")
                lines += 1
            max_labels = _prom_labels(metric.labels, {"quantile": "max"})
            observed_max = metric.max if metric.count else 0
            stream.write(f"{name}_quantile{max_labels} "
                         f"{_format_value(observed_max)}\n")
            lines += 1
    return lines


# ----------------------------------------------------------------------
# Human-readable summaries (the `repro obs` subcommand)
# ----------------------------------------------------------------------

def summarize_trace(records: List[Dict[str, Any]],
                    top: int = 10) -> str:
    """Render a span/sample record list as component and slowest-span
    tables."""
    spans = [r for r in records if r.get("type") == "span"]
    samples = [r for r in records if r.get("type") == "sample"]
    parts: List[str] = []

    by_component: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        by_component.setdefault(span.get("component", "?"),
                                []).append(span)
    rows = []
    for component in sorted(by_component):
        group = by_component[component]
        total_ns = sum(s.get("dur_ns", 0.0) for s in group)
        rows.append([component, len(group),
                     round(total_ns / 1e3, 2),
                     round(total_ns / len(group) / 1e3, 2)])
    parts.append(format_table(
        ["component", "spans", "total (us)", "mean (us)"], rows,
        title=f"Trace: {len(spans)} spans, {len(samples)} samples"))

    slowest = sorted(spans, key=lambda s: s.get("dur_ns", 0.0),
                     reverse=True)[:top]
    rows = [[s.get("name"), s.get("engine", "-"),
             round(s.get("start_ns", 0.0) / 1e6, 3),
             round(s.get("dur_ns", 0.0) / 1e3, 2)]
            for s in slowest]
    parts.append(format_table(
        ["span", "engine", "start (ms)", "duration (us)"], rows,
        title=f"Slowest {len(slowest)} spans"))

    if samples:
        keys = [k for k, v in samples[0].items()
                if k not in ("t_ms", "partition")
                and isinstance(v, (int, float))
                and not isinstance(v, bool)]
        first, last = samples[0], samples[-1]
        rows = [[key, _format_value(first.get(key, 0.0)),
                 _format_value(last.get(key, 0.0))]
                for key in sorted(keys)]
        parts.append(format_table(
            ["counter", "first sample", "last sample"], rows,
            title=f"Time series: {len(samples)} samples, "
                  f"{first['t_ms']:.3f} - {last['t_ms']:.3f} ms"))
    return "\n\n".join(parts)


def summarize_metrics(text: str) -> str:
    """Render Prometheus text (as produced by :func:`write_prometheus`)
    as a table, hiding the verbose histogram bucket series."""
    rows = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        if "_bucket{" in series or series.endswith("_bucket"):
            continue
        rows.append([series, value])
    return format_table(["series", "value"], rows,
                        title="Metrics (histogram buckets elided)")


def _error_headline(error: Any) -> Any:
    """Last non-blank line of a possibly multi-line error (tracebacks
    collapse to their final ``SomeError: ...`` line)."""
    if not isinstance(error, str):
        return error
    for line in reversed(error.splitlines()):
        if line.strip():
            return line.strip()
    return error


def summarize_sweep(summary: Dict[str, Any]) -> str:
    """Render a scheduler ``summary.json`` (see
    :func:`repro.harness.scheduler.write_sweep_summary`) as a table:
    one row per point, in spec order — plus a merged phase-profile
    table when the points carry one (telemetry runs)."""
    rows = []
    profiles = []
    for point in summary.get("points", []):
        spec = point.get("spec", {})
        result = point.get("result") or {}
        profiles.append(result.get("phases"))
        rows.append([
            spec.get("workload", "?"),
            spec.get("engine", "?"),
            spec.get("latency", "?"),
            "ok" if point.get("ok") else
            f"FAILED: {_error_headline(point.get('error'))}",
            round(result.get("throughput", 0.0), 1),
            round(point.get("host_seconds", 0.0), 2),
        ])
    failed = summary.get("failed", 0)
    rendered = format_table(
        ["workload", "engine", "latency", "status", "txn/s",
         "host (s)"], rows,
        title=f"Sweep: {len(rows)} points, {failed} failed")
    if any(profiles):
        from .profiler import merge_profiles
        rendered += "\n\n" + summarize_profile(merge_profiles(profiles))
    return rendered


def summarize_profile(profile: Dict[str, Any]) -> str:
    """Render a ``repro-phase-profile`` payload (see
    :mod:`repro.obs.profiler`) as a wall-vs-simulated phase table."""
    total = profile.get("total_wall_s") or 0.0
    rows = []
    for entry in sorted(profile.get("phases", []),
                        key=lambda e: (e["depth"], -e["wall_s"])):
        indent = "  " * entry["depth"]
        share = 100.0 * entry["wall_s"] / total if total > 0 else 0.0
        rows.append([
            indent + entry["stack"],
            entry["count"],
            round(entry["wall_s"] * 1e3, 3),
            f"{share:.1f}%",
            round(entry["sim_ns"] / 1e6, 3),
        ])
    coverage = profile.get("coverage")
    coverage_text = f"{100 * coverage:.1f}%" \
        if coverage is not None else "n/a"
    return format_table(
        ["phase", "count", "wall (ms)", "wall %", "sim (ms)"], rows,
        title=(f"Phases: {total * 1e3:.3f} ms wall, "
               f"{coverage_text} attributed"))


def summarize_events(records: List[Dict[str, Any]]) -> str:
    """Render a telemetry event log (JSONL, see
    :class:`repro.obs.bus.JsonlEventLog`) as per-kind and per-source
    tables, surfacing the final accounting (drops are never silent)."""
    by_kind: Dict[str, int] = {}
    sources = set()
    first_wall = last_wall = None
    closing: Dict[str, Any] = {}
    for record in records:
        kind = record.get("kind", "?")
        by_kind[kind] = by_kind.get(kind, 0) + 1
        sources.add(record.get("source", ""))
        wall = record.get("wall_s")
        if isinstance(wall, (int, float)):
            first_wall = wall if first_wall is None else first_wall
            last_wall = wall
        if kind == "log_closed":
            closing = record.get("data", {})
    rows = [[kind, count] for kind, count in sorted(by_kind.items())]
    span = (last_wall - first_wall) \
        if first_wall is not None and last_wall is not None else 0.0
    parts = [format_table(
        ["event kind", "count"], rows,
        title=(f"Event log: {len(records)} events, "
               f"{len(sources)} sources, {span:.2f} s"))]
    if closing:
        rows = [[key, _format_value(value)]
                for key, value in sorted(closing.items())
                if isinstance(value, (int, float))]
        parts.append(format_table(
            ["counter", "value"], rows, title="Bus accounting"))
    return "\n\n".join(parts)


def _looks_like_event_log(records: List[Dict[str, Any]]) -> bool:
    return bool(records) and all(
        "kind" in record and "seq" in record for record in records)


def summarize_file(path: str) -> str:
    """Dispatch on file shape: sweep summary / phase profile JSON vs
    event-log / trace JSONL vs Prometheus text."""
    with open(path, "r", encoding="utf-8") as stream:
        text = stream.read()
    if text.lstrip().startswith("{"):
        try:
            document = json.loads(text)
        except json.JSONDecodeError:
            document = None
        if isinstance(document, dict):
            kind = document.get("kind")
            if kind == "repro-sweep-summary":
                return summarize_sweep(document)
            if kind == "repro-phase-profile":
                return summarize_profile(document)
        import io
        records = read_trace_jsonl(io.StringIO(text))
        if _looks_like_event_log(records):
            return summarize_events(records)
        return summarize_trace(records)
    return summarize_metrics(text)
