"""Command-line interface: run workloads and regenerate paper figures.

Examples::

    python -m repro engines
    python -m repro ycsb --engine nvm-inp --mixture write-heavy
    python -m repro ycsb --all-engines --mixture balanced --skew high
    python -m repro ycsb --all-engines --trace out.jsonl --metrics out.prom
    python -m repro tpcc --engine nvm-cow --txns 500
    python -m repro figure 1
    python -m repro figure 12 --workload tpcc
    python -m repro obs out.jsonl
    python -m repro crashtest --engines inp,nvm-cow --seed 7
    python -m repro check --engines all
    python -m repro lint
    python -m repro analyze --gate
    python -m repro serve --engine nvm-inp --port 7333
    python -m repro chaos --clients 4 --crash-cycles 2
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import sys
from typing import List, Optional

from .analysis.tables import format_table
from .config import LatencyProfile
from .engines.base import ENGINE_NAMES, engine_names
from .harness.experiments import (FULL_SCALE, QUICK_SCALE,
                                  fig1_interfaces, recovery_latency,
                                  storage_footprint, tpcc_throughput,
                                  ycsb_throughput)
from .harness.runner import ExperimentSpec
from .harness.scheduler import merged_session, run_sweep
from .workloads.ycsb import MIXTURES, SKEWS


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--latency", default="dram",
                        choices=("dram", "low-nvm", "high-nvm"),
                        help="NVM latency profile (Section 5.2)")
    parser.add_argument("--full", action="store_true",
                        help="use the larger FULL scale")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="run sweep points across N worker "
                             "processes (1 = serial in-process); "
                             "results are merged in spec order, so the "
                             "output is identical to a serial run")


def _add_sharded_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--partitions", type=int, default=1, metavar="N",
        help="data partitions (one executor process each with "
             "--sharded)")
    parser.add_argument(
        "--sharded", action="store_true",
        help="execute on the shared-nothing tier: one executor "
             "process per partition (see docs/scaleout.md); simulated "
             "results are identical, wall-clock time scales with "
             "real cores")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="record engine spans + counter samples to a JSONL trace; "
             "the run ends with a crash/recover cycle (outside the "
             "measurement window) so recovery phases are traced")
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="write Prometheus-style metrics (incl. per-txn latency "
             "histogram) to FILE")


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--live", action="store_true",
        help="stream live progress to stderr while the run executes "
             "(in-place status line on a TTY, plain log lines "
             "otherwise): points done, ETA, per-engine txn/s, "
             "retry/crash counters")
    parser.add_argument(
        "--events", metavar="FILE", default=None,
        help="persist the full telemetry event stream (point "
             "lifecycle, phase transitions, heartbeats) as JSONL; "
             "inspect it later with `repro obs FILE`")
    parser.add_argument(
        "--phases", metavar="FILE", default=None,
        help="write the merged phase profile (wall-vs-simulated time "
             "per setup/load/run/checkpoint/recovery phase) as JSON")
    parser.add_argument(
        "--collapsed", metavar="FILE", default=None,
        help="write the merged phase profile as collapsed-stack lines "
             "(flamegraph.pl / speedscope input)")


class _Telemetry:
    """CLI telemetry wiring: one bus feeding an optional live renderer
    and an optional JSONL event log, plus phase-profile artifacts
    merged from the outcomes afterwards."""

    def __init__(self, args) -> None:
        self.live = bool(getattr(args, "live", False))
        self.events_path = getattr(args, "events", None)
        self.phases_path = getattr(args, "phases", None)
        self.collapsed_path = getattr(args, "collapsed", None)
        self.enabled = bool(self.live or self.events_path
                            or self.phases_path or self.collapsed_path)
        self.bus = None
        self._log = None
        self._renderer = None
        if not self.enabled:
            return
        from .obs.bus import EventBus, JsonlEventLog
        from .obs.live import LiveRenderer
        self.bus = EventBus()
        if self.events_path:
            self._log = JsonlEventLog(self.events_path, self.bus)
        if self.live:
            self._renderer = LiveRenderer(self.bus)

    def finish(self, profiles=()) -> int:
        """Close renderer/log and write phase artifacts; returns a
        non-zero status only on artifact write errors."""
        if not self.enabled:
            return 0
        if self._renderer is not None:
            self._renderer.close()
        if self._log is not None:
            self._log.close()
            print(f"events: {self._log.lines} -> {self.events_path}")
        status = 0
        if self.phases_path or self.collapsed_path:
            import json as _json

            from .obs.profiler import merge_profiles, write_collapsed
            merged = merge_profiles(profiles)
            try:
                if self.phases_path:
                    with open(self.phases_path, "w",
                              encoding="utf-8") as stream:
                        _json.dump(merged, stream, indent=2,
                                   sort_keys=True)
                        stream.write("\n")
                    print(f"phases: {len(merged['phases'])} stacks -> "
                          f"{self.phases_path}")
                if self.collapsed_path:
                    lines = write_collapsed(merged, self.collapsed_path)
                    print(f"collapsed stacks: {lines} -> "
                          f"{self.collapsed_path}")
            except OSError as error:
                print(f"cannot write phase profile: {error}",
                      file=sys.stderr)
                status = 2
        return status


def _outcome_profiles(outcomes) -> List:
    return [outcome.result.phases for outcome in outcomes
            if outcome.result is not None
            and getattr(outcome.result, "phases", None)]


def _export_obs(args, session) -> int:
    if session is None:
        return 0
    try:
        if args.trace:
            lines = session.export_trace(args.trace)
            print(f"trace: {lines} records -> {args.trace}")
        if args.metrics:
            lines = session.export_metrics(args.metrics)
            print(f"metrics: {lines} series -> {args.metrics}")
    except OSError as error:
        print(f"cannot write observability output: {error}",
              file=sys.stderr)
        return 2
    return 0


def _scale(args) -> object:
    return FULL_SCALE if args.full else QUICK_SCALE


def _cmd_engines(args) -> int:
    rows = []
    for name in engine_names():
        kind = "NVM-aware" if name.startswith("nvm") else (
            "hybrid extension" if name.startswith("hybrid")
            else "traditional")
        rows.append([name, kind])
    print(format_table(["engine", "kind"], rows,
                       title="Registered storage engines"))
    return 0


def _result_row(engine: str, result) -> List:
    row = [engine, result.throughput, result.nvm_loads,
           result.nvm_stores]
    if result.latency_percentiles is not None:
        row.extend([result.latency_percentiles["p50"] / 1e3,
                    result.latency_percentiles["p99"] / 1e3])
    return row


def _result_headers(with_obs: bool) -> List[str]:
    headers = ["engine", "txn/s", "NVM loads", "NVM stores"]
    if with_obs:
        headers.extend(["p50 (us)", "p99 (us)"])
    return headers


def _run_and_report(args, specs, title: str) -> int:
    """Run a spec list through the scheduler (``--jobs``), print the
    merged table (spec order), export observability + telemetry
    artifacts."""
    observe = bool(args.trace or args.metrics)
    artifacts_dir = getattr(args, "artifacts", None)
    telemetry = _Telemetry(args)
    outcomes = None
    try:
        outcomes = run_sweep(specs, jobs=args.jobs, observe=observe,
                             artifacts_dir=artifacts_dir,
                             bus=telemetry.bus)
    finally:
        telemetry_status = telemetry.finish(
            _outcome_profiles(outcomes) if outcomes is not None
            else [])
    # --artifacts implies observation inside run_sweep, so the rows
    # carry latency percentiles even without --trace/--metrics.
    with_obs = observe or artifacts_dir is not None
    rows = [_result_row(outcome.spec.engine, outcome.result)
            for outcome in outcomes if outcome.ok]
    print(format_table(_result_headers(with_obs), rows, title=title))
    failures = [outcome for outcome in outcomes if not outcome.ok]
    for outcome in failures:
        print(f"point {outcome.spec.slug()} failed: "
              f"{outcome.error_summary}", file=sys.stderr)
        if outcome.error != outcome.error_summary:
            print(outcome.error, file=sys.stderr)
    status = _export_obs(args, merged_session(outcomes)
                         if observe else None)
    return 1 if failures else (status or telemetry_status)


def _cmd_ycsb(args) -> int:
    scale = _scale(args)
    engines = list(ENGINE_NAMES.ALL) if args.all_engines \
        else [args.engine]
    specs = [
        ExperimentSpec.ycsb(
            engine, args.mixture, args.skew,
            latency=LatencyProfile.parse(args.latency),
            num_tuples=args.tuples or scale.ycsb_tuples,
            num_txns=args.txns or scale.ycsb_txns,
            engine_config=scale.engine_config(),
            cache_bytes=scale.cache_bytes,
            partitions=args.partitions,
            sharded=args.sharded,
            crash_recover=bool(args.trace))
        for engine in engines
    ]
    return _run_and_report(
        args, specs,
        title=f"YCSB {args.mixture}/{args.skew} @ {args.latency}")


def _cmd_tpcc(args) -> int:
    scale = _scale(args)
    engines = list(ENGINE_NAMES.ALL) if args.all_engines \
        else [args.engine]
    tpcc_config = scale.tpcc
    if args.remote_pct:
        tpcc_config = dataclasses.replace(
            tpcc_config, remote_order_fraction=args.remote_pct / 100.0)
    specs = [
        ExperimentSpec.tpcc(
            engine, latency=LatencyProfile.parse(args.latency),
            tpcc_config=tpcc_config,
            num_txns=args.txns or scale.tpcc_txns,
            engine_config=scale.engine_config(),
            cache_bytes=scale.tpcc_cache_bytes,
            partitions=args.partitions,
            sharded=args.sharded,
            crash_recover=bool(args.trace))
        for engine in engines
    ]
    return _run_and_report(args, specs,
                           title=f"TPC-C @ {args.latency}")


def _cmd_twopc_crashtest(args, engines) -> int:
    """``crashtest --twopc``: sweep the distributed-commit fault
    points (in-process, serial — the coordinate space is tiny)."""
    from .dist import campaign

    report = campaign.run_twopc_campaign(
        engines, seed=args.seed, ops=args.ops,
        max_hits_per_point=args.max_hits)
    if args.json:
        import json

        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print(f"report -> {args.json}")
        except OSError as error:
            print(f"cannot write {args.json}: {error}",
                  file=sys.stderr)
            return 2
    print(format_table(
        ["engine", "fault point", "coords", "crashes", "violations",
         "status"],
        report.point_rows(),
        title=f"2PC crash campaign, seed {args.seed} "
              f"({len(report.results)} coordinates)"))
    for violation in report.violations:
        print(f"oracle violation: {violation}", file=sys.stderr)
    for engine, points in sorted(report.uncovered.items()):
        for point in points:
            print(f"uncovered fault point: {engine}/{point}",
                  file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_crashtest(args) -> int:
    # Imported lazily: the campaign pulls in the full database stack.
    from .fault import campaign

    engines = [name.strip() for name in args.engines.split(",")
               if name.strip()]
    known = engine_names()
    unknown = [name for name in engines if name not in known]
    if not engines or unknown:
        print(f"unknown engines: {', '.join(unknown) or '(none given)'}"
              f"; choose from {', '.join(known)}", file=sys.stderr)
        return 2
    if args.twopc:
        return _cmd_twopc_crashtest(args, engines)
    telemetry = _Telemetry(args)
    report = None
    try:
        report = campaign.run_crash_campaign(
            engines, seed=args.seed, ops=args.ops, jobs=args.jobs,
            max_hits_per_point=args.max_hits, timeout_s=args.timeout,
            retries=args.retries, artifacts_dir=args.artifacts,
            bus=telemetry.bus)
    finally:
        profiles = []
        if report is not None:
            profiles = [counting.phases
                        for counting in report.counting.values()
                        if counting.phases]
            profiles.extend(
                outcome.result.phases for outcome in report.outcomes
                if outcome.result is not None
                and getattr(outcome.result, "phases", None))
        telemetry.finish(profiles)
    if args.json:
        import json

        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report.to_dict(), handle, indent=2,
                          sort_keys=True)
                handle.write("\n")
            print(f"report -> {args.json}")
        except OSError as error:
            print(f"cannot write {args.json}: {error}",
                  file=sys.stderr)
            return 2
    print(format_table(
        ["engine", "fault point", "coords", "crashes", "violations",
         "status"],
        report.point_rows(),
        title=f"Crash campaign, seed {args.seed} "
              f"({len(report.outcomes)} coordinates)"))
    for violation in report.violations:
        print(f"oracle violation: {violation}", file=sys.stderr)
    for failure in report.failures:
        print(f"point failed: {failure}", file=sys.stderr)
    for engine, points in sorted(report.uncovered.items()):
        for point in points:
            print(f"uncovered fault point: {engine}/{point}",
                  file=sys.stderr)
    return 0 if report.ok else 1


def _cmd_check(args) -> int:
    # Imported lazily: the checker pulls in the full database stack.
    import json

    from .analysis.check import run_check
    from .analysis.ordering import ORDERING_RULES

    engines = list(ENGINE_NAMES.ALL) if args.engines == "all" else \
        [name.strip() for name in args.engines.split(",")
         if name.strip()]
    try:
        outcomes = run_check(
            engines, num_tuples=args.tuples, num_txns=args.txns,
            deletes=args.deletes, mixture=args.mixture, skew=args.skew,
            latency=LatencyProfile.parse(args.latency), seed=args.seed)
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    if args.json:
        payload = {"ok": all(outcome.ok for outcome in outcomes),
                   "rules": ORDERING_RULES,
                   "engines": [outcome.to_dict()
                               for outcome in outcomes]}
        try:
            if args.json == "-":
                json.dump(payload, sys.stdout, indent=2)
                print()
            else:
                with open(args.json, "w") as handle:
                    json.dump(payload, handle, indent=2)
                print(f"report -> {args.json}")
        except OSError as error:
            print(f"cannot write {args.json}: {error}", file=sys.stderr)
            return 2
    rows = []
    for outcome in outcomes:
        counts = outcome.counts
        violations = sum(count for code, count in counts.items()
                         if code not in ("ORD005",))
        lints = counts.get("ORD005", 0)
        rows.append([outcome.engine, outcome.events, violations,
                     lints, "ok" if outcome.ok else "FAIL"])
    print(format_table(
        ["engine", "events", "violations", "lints", "status"], rows,
        title=f"Persistence-ordering check, YCSB {args.mixture}/"
              f"{args.skew} seed {args.seed}"))
    failed = False
    for outcome in outcomes:
        for report in outcome.reports:
            for violation in report.violations:
                failed = True
                print(f"{outcome.engine}: {violation}",
                      file=sys.stderr)
    return 1 if failed else 0


def _cmd_lint(args) -> int:
    from .lint import (DEFAULT_LINT_PATHS, LINT_RULES, emit_findings,
                       lint_paths, parse_select, print_rule_catalogue)

    if args.rules:
        print_rule_catalogue("repro lint rules", LINT_RULES)
        return 0
    paths = args.paths or list(DEFAULT_LINT_PATHS)
    try:
        violations = lint_paths(paths,
                                select=parse_select(args.select))
    except (OSError, SyntaxError, ValueError) as error:
        print(f"lint failed: {error}", file=sys.stderr)
        return 2
    return emit_findings(violations,
                         json_out="-" if args.json else None)


def _cmd_analyze(args) -> int:
    from .analysis.static import (DEFAULT_ANALYZE_PATHS, analyze_paths,
                                  static_rules)
    from .lint import (baseline_diff, emit_findings, load_baseline,
                       parse_select, print_rule_catalogue,
                       save_baseline)

    if args.rules:
        print_rule_catalogue("repro analyze rules", static_rules())
        return 0
    paths = args.paths or list(DEFAULT_ANALYZE_PATHS)
    try:
        violations = analyze_paths(paths,
                                   select=parse_select(args.select))
    except (OSError, SyntaxError, ValueError) as error:
        print(f"analyze failed: {error}", file=sys.stderr)
        return 2
    if args.write_baseline:
        save_baseline(args.baseline, violations)
        print(f"baseline -> {args.baseline} "
              f"({len(violations)} finding(s))")
        return 0
    if args.gate:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError) as error:
            print(f"analyze failed: {error}", file=sys.stderr)
            return 2
        fresh, stale = baseline_diff(violations, baseline)
        code = emit_findings(fresh, json_out=args.json)
        for key in stale:
            print(f"stale baseline entry (fixed or moved — shrink "
                  f"the baseline): {key}", file=sys.stderr)
        suppressed = len(violations) - len(fresh)
        if suppressed:
            print(f"{suppressed} finding(s) suppressed by "
                  f"{args.baseline}")
        return 1 if (code or stale) else 0
    return emit_findings(violations, json_out=args.json)


def _cmd_bench(args) -> int:
    # Imported lazily: the harness pulls in the full database stack.
    from .bench import (compare_payloads, find_baseline, load_payload,
                        make_payload, run_bench, write_payload)

    if args.history:
        from .obs.history import bench_trajectory, \
            collect_bench_history
        history = collect_bench_history(args.out)
        if not history:
            print(f"no BENCH_*.json files in {args.out}",
                  file=sys.stderr)
            return 2
        headers, rows = bench_trajectory(history)
        print(format_table(
            headers, rows,
            title=f"Bench trajectory: {len(history)} runs in "
                  f"{args.out}"))
        bad = [entry for entry in history if entry.get("error")]
        for entry in bad:
            print(f"invalid payload {entry['path']}: {entry['error']}",
                  file=sys.stderr)
        return 1 if bad else 0

    engines = None
    if args.engines:
        engines = [name.strip() for name in args.engines.split(",")
                   if name.strip()]
        known = engine_names()
        unknown = [name for name in engines if name not in known]
        if unknown:
            print(f"unknown engines: {', '.join(unknown)}; choose "
                  f"from {', '.join(known)}", file=sys.stderr)
            return 2
    results = run_bench(quick=args.quick, engines=engines,
                        only=args.only, repeats=args.repeats)
    if not results:
        print(f"no benches match --only {args.only!r}",
              file=sys.stderr)
        return 2
    payload = make_payload(results, quick=args.quick)
    path = write_payload(payload, args.out)
    rows = [[result.name, result.ops, f"{result.ops_per_s:,.0f}",
             f"{result.wall_s:.3f}", f"{result.sim_time_ns:,.0f}",
             result.peak_rss_kb]
            for result in results]
    print(format_table(
        ["bench", "ops", "ops/s (wall)", "wall s", "sim ns",
         "peak RSS KB"],
        rows, title=f"Wall-clock bench ({'quick' if args.quick else 'full'})"))
    print(f"results -> {path}")
    baseline_path = args.baseline or find_baseline(args.out,
                                                   exclude=path)
    if baseline_path is None:
        committed = os.path.join(args.out, "BENCH_baseline.json")
        if os.path.exists(committed):
            baseline_path = committed
    if baseline_path is None:
        print("no baseline found; skipping comparison")
        return 0
    try:
        baseline = load_payload(baseline_path)
    except (OSError, ValueError, KeyError) as error:
        print(f"cannot load baseline {baseline_path}: {error}",
              file=sys.stderr)
        return 2
    findings = compare_payloads(payload, baseline,
                                threshold=args.threshold)
    failed = [finding for finding in findings if finding.failed]
    print(format_table(
        ["bench", "status", "new/old ops/s", "detail"],
        [[finding.name, finding.kind, f"{finding.ratio:.2f}x",
          finding.detail] for finding in findings],
        title=f"vs baseline {os.path.basename(baseline_path)} "
              f"(threshold {args.threshold * 100:.0f}%)"))
    for finding in failed:
        print(f"{finding.kind}: {finding.name}: {finding.detail}",
              file=sys.stderr)
    return 1 if failed and args.gate else 0


def _cmd_report(args) -> int:
    import json

    from .obs.history import build_report, render_markdown

    scan_dirs = args.scan or ["artifacts"]
    report = build_report(bench_dir=args.bench_dir,
                          scan_dirs=scan_dirs)
    markdown = render_markdown(report)
    try:
        if args.json:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"report JSON -> {args.json}")
        if args.out:
            with open(args.out, "w", encoding="utf-8") as handle:
                handle.write(markdown)
            print(f"report markdown -> {args.out}")
    except OSError as error:
        print(f"cannot write report: {error}", file=sys.stderr)
        return 2
    if not args.out:
        print(markdown)
    return 0


def _cmd_obs(args) -> int:
    from .obs.export import summarize_file
    try:
        print(summarize_file(args.file))
    except (OSError, ValueError) as error:
        print(f"cannot summarize {args.file}: {error}", file=sys.stderr)
        return 2
    return 0


def _cmd_serve(args) -> int:
    from .server import DatabaseServer, GroupCommitConfig, ServerConfig

    group_commit = GroupCommitConfig(
        enabled=not args.no_group_commit,
        batch_size=args.batch_size,
        max_hold_ns=args.hold_ns,
        max_hold_wall_s=args.hold_wall_ms / 1000.0)
    config = ServerConfig(
        host=args.host, port=args.port, engine=args.engine,
        partitions=args.partitions, latency=args.latency,
        seed=args.seed, max_inflight=args.max_inflight,
        group_commit=group_commit,
        max_admission_queue=args.max_queue,
        session_lease_s=args.session_lease,
        watchdog_recover_s=args.watchdog)
    server = DatabaseServer(config)

    def _ready(address):
        print(f"repro server: {config.engine} engine, "
              f"{config.partitions} partition(s), group commit "
              f"{'off' if args.no_group_commit else 'on'} — listening "
              f"on {address[0]}:{address[1]} (ctrl-C to stop)",
              flush=True)

    server.run(ready=_ready)    # blocks until SIGINT/SIGTERM/shutdown
    host, port = server.address or (args.host, args.port)
    stats = [stage.stats() for __, stage
             in sorted(server._stages.items())]
    rows = [[s["partition"], s["txns"], s["batches"],
             f"{s['mean_batch']:.2f}", s["max_batch"],
             s["durability_rounds"], f"{s['rounds_per_txn']:.3f}"]
            for s in stats]
    if rows:
        print(format_table(
            ["partition", "txns", "batches", "mean", "max",
             "rounds", "rounds/txn"],
            rows, title=f"group commit on {host}:{port} "
                        f"({server.database.engine_name})"))
    return 0


def _cmd_chaos(args) -> int:
    # Imported lazily: the campaign pulls in the full network stack.
    import dataclasses
    import json

    from .chaos import ChaosConfig, run_chaos_campaign

    base = ChaosConfig()
    faults = base.faults
    if args.fault_scale != 1.0:
        faults = dataclasses.replace(
            faults,
            **{name: min(1.0, getattr(faults, name) * args.fault_scale)
               for name in ("drop_p", "delay_p", "truncate_p",
                            "corrupt_p", "duplicate_p",
                            "blackhole_p")})
    faults = dataclasses.replace(faults, seed=args.seed)
    config = dataclasses.replace(
        base, clients=args.clients, txns_per_client=args.txns,
        keys=args.keys, seed=args.seed, engine=args.engine,
        crash_cycles=args.crash_cycles, faults=faults,
        max_wall_s=args.max_wall)
    telemetry = _Telemetry(args)
    publisher = None
    if telemetry.bus is not None:
        from .obs.bus import BusPublisher
        publisher = BusPublisher(telemetry.bus, source="chaos")
    report = None
    try:
        report = run_chaos_campaign(config, publisher=publisher)
    finally:
        telemetry.finish([])
    if args.json:
        payload = dict(report.to_dict(), kind="repro-chaos-report")
        try:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"report -> {args.json}")
        except OSError as error:
            print(f"cannot write {args.json}: {error}",
                  file=sys.stderr)
            return 2
    proxy = report.proxy_stats
    print(format_table(
        ["metric", "value"],
        [["committed (acked durable)", report.committed],
         ["ambiguous commits", report.ambiguous],
         ["  resolved durable (ledger)", report.resolved_durable],
         ["  resolved not-applied", report.resolved_not_applied],
         ["  still ambiguous", report.still_ambiguous],
         ["failed attempts (retried)", report.failed_attempts],
         ["nemesis crashes / recoveries",
          f"{report.crashes} / {report.recoveries}"],
         ["proxy connections", proxy.get("connections", 0)],
         ["frames dropped/delayed/cut",
          f"{proxy.get('drop', 0)}/{proxy.get('delay', 0)}/"
          f"{proxy.get('truncate', 0)}"],
         ["frames corrupted/duplicated/blackholed",
          f"{proxy.get('corrupt', 0)}/{proxy.get('duplicate', 0)}/"
          f"{proxy.get('blackhole', 0) + proxy.get('blackholed', 0)}"],
         ["keys checked", report.keys_checked],
         ["final counter total", report.final_total],
         ["wall seconds", f"{report.wall_seconds:.2f}"]],
        title=f"Chaos campaign, seed {args.seed} "
              f"({args.clients} clients, {args.engine})"))
    for violation in report.violations:
        print(f"oracle violation: {violation}", file=sys.stderr)
    print("invariants: "
          + ("all held" if report.ok
             else f"{len(report.violations)} VIOLATED"))
    return 0 if report.ok else 1


def _cmd_figure(args) -> int:
    scale = _scale(args)
    number = args.number
    telemetry = _Telemetry(args)
    try:
        if number == 1:
            headers, rows = fig1_interfaces()
            print(format_table(headers, rows,
                               title="Fig. 1 — durable write bandwidth "
                                     "(MB/s)"))
        elif number in (5, 6, 7):
            latency = {5: "dram", 6: "low-nvm", 7: "high-nvm"}[number]
            headers, rows, __ = ycsb_throughput(latency, scale,
                                                jobs=args.jobs,
                                                bus=telemetry.bus)
            print(format_table(headers, rows,
                               title=f"Fig. {number} — YCSB throughput "
                                     f"@ {latency} (txn/s)"))
        elif number == 8:
            headers, rows, __ = tpcc_throughput(scale, jobs=args.jobs,
                                                bus=telemetry.bus)
            print(format_table(headers, rows,
                               title="Fig. 8 — TPC-C throughput "
                                     "(txn/s)"))
        elif number == 12:
            headers, rows = recovery_latency(args.workload, scale)
            print(format_table(headers, rows,
                               title=f"Fig. 12 — recovery latency, "
                                     f"{args.workload} (ms)"))
        elif number == 14:
            headers, rows = storage_footprint(args.workload, scale,
                                              jobs=args.jobs,
                                              bus=telemetry.bus)
            print(format_table(headers, rows,
                               title=f"Fig. 14 — storage footprint, "
                                     f"{args.workload} (KB)"))
        else:
            print(f"figure {number} not wired into the CLI; run "
                  f"`pytest benchmarks/ --benchmark-only` for the full "
                  f"set", file=sys.stderr)
            return 2
    finally:
        # Figure drivers keep only merged tables, so phase artifacts
        # are not available here — the bus still feeds --live/--events.
        telemetry.finish([])
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="NVM DBMS storage & recovery reproduction "
                    "(SIGMOD 2015)")
    commands = parser.add_subparsers(
        dest="command", required=True, metavar="COMMAND",
        title="commands")

    engines_parser = commands.add_parser(
        "engines", help="list registered storage engines")
    engines_parser.set_defaults(func=_cmd_engines)

    ycsb_parser = commands.add_parser("ycsb", help="run a YCSB point")
    ycsb_parser.add_argument("--engine", default="nvm-inp",
                             choices=engine_names())
    ycsb_parser.add_argument("--all-engines", action="store_true")
    ycsb_parser.add_argument("--mixture", default="balanced",
                             choices=sorted(MIXTURES))
    ycsb_parser.add_argument("--skew", default="low",
                             choices=sorted(SKEWS))
    ycsb_parser.add_argument("--tuples", type=int, default=None)
    ycsb_parser.add_argument("--txns", type=int, default=None)
    ycsb_parser.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="write per-point traces/metrics and the merged "
             "summary.json under DIR")
    _add_common(ycsb_parser)
    _add_sharded_flags(ycsb_parser)
    _add_obs_flags(ycsb_parser)
    _add_telemetry_flags(ycsb_parser)
    ycsb_parser.set_defaults(func=_cmd_ycsb)

    tpcc_parser = commands.add_parser("tpcc", help="run a TPC-C point")
    tpcc_parser.add_argument("--engine", default="nvm-inp",
                             choices=engine_names())
    tpcc_parser.add_argument("--all-engines", action="store_true")
    tpcc_parser.add_argument("--txns", type=int, default=None)
    tpcc_parser.add_argument(
        "--remote-pct", type=float, default=0.0, metavar="PCT",
        help="percent of new-order transactions that source one item "
             "from a remote warehouse (serial runs redirect the "
             "access; --sharded runs execute it as real 2PC)")
    tpcc_parser.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="write per-point traces/metrics and the merged "
             "summary.json under DIR")
    _add_common(tpcc_parser)
    _add_sharded_flags(tpcc_parser)
    _add_obs_flags(tpcc_parser)
    _add_telemetry_flags(tpcc_parser)
    tpcc_parser.set_defaults(func=_cmd_tpcc)

    figure_parser = commands.add_parser(
        "figure", help="regenerate one paper figure")
    figure_parser.add_argument("number", type=int)
    figure_parser.add_argument("--workload", default="ycsb",
                               choices=("ycsb", "tpcc"))
    _add_common(figure_parser)
    _add_telemetry_flags(figure_parser)
    figure_parser.set_defaults(func=_cmd_figure)

    crashtest_parser = commands.add_parser(
        "crashtest",
        help="fault-injection campaign: crash at every fault point, "
             "recover, verify no committed data is lost")
    crashtest_parser.add_argument(
        "--engines", default="inp,nvm-cow", metavar="A,B,...",
        help="comma-separated engine names to campaign over")
    crashtest_parser.add_argument("--seed", type=int, default=7)
    crashtest_parser.add_argument(
        "--ops", type=int, default=64,
        help="scripted operations per run")
    crashtest_parser.add_argument(
        "--max-hits", type=int, default=3, metavar="N",
        help="crash coordinates sampled per fault point")
    crashtest_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the coordinate sweep")
    crashtest_parser.add_argument(
        "--timeout", type=float, default=None, metavar="S",
        help="per-coordinate host timeout (parallel mode)")
    crashtest_parser.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="scheduler retries per failed coordinate")
    crashtest_parser.add_argument(
        "--artifacts", default=None, metavar="DIR",
        help="write per-coordinate traces/metrics + summary.json here")
    crashtest_parser.add_argument(
        "--twopc", action="store_true",
        help="campaign the two-phase-commit protocol instead: "
             "pair-writes across two partitions, crashing at the "
             "twopc.* fault points (see docs/scaleout.md)")
    crashtest_parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the full campaign report (kind "
             "repro-crashtest-report) to FILE")
    _add_telemetry_flags(crashtest_parser)
    crashtest_parser.set_defaults(func=_cmd_crashtest)

    check_parser = commands.add_parser(
        "check",
        help="persistence-ordering check: run a YCSB smoke per engine "
             "with the ordering checker attached, fail on violations")
    check_parser.add_argument(
        "--engines", default="all", metavar="A,B,...",
        help="comma-separated engine names, or 'all' for the paper's "
             "six architectures")
    check_parser.add_argument("--tuples", type=int, default=200)
    check_parser.add_argument("--txns", type=int, default=400)
    check_parser.add_argument(
        "--deletes", type=int, default=20,
        help="delete tail length (exercises slot reclamation)")
    check_parser.add_argument("--mixture", default="balanced",
                              choices=sorted(MIXTURES))
    check_parser.add_argument("--skew", default="low",
                              choices=sorted(SKEWS))
    check_parser.add_argument("--latency", default="dram",
                              choices=("dram", "low-nvm", "high-nvm"))
    check_parser.add_argument("--seed", type=int, default=31)
    check_parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the full JSON report to FILE ('-' for stdout)")
    check_parser.set_defaults(func=_cmd_check)

    lint_parser = commands.add_parser(
        "lint",
        help="project-specific static lint pass (stdlib-ast, "
             "LNT001-LNT005) over the engine and NVM packages")
    lint_parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src/repro/engines, "
             "src/repro/nvm, src/repro/fault)")
    lint_parser.add_argument(
        "--select", metavar="LNT001,...", default=None,
        help="run only these rule codes")
    lint_parser.add_argument("--json", action="store_true",
                             help="emit findings as JSON on stdout")
    lint_parser.add_argument("--rules", action="store_true",
                             help="print the rule catalogue and exit")
    lint_parser.set_defaults(func=_cmd_lint)

    analyze_parser = commands.add_parser(
        "analyze",
        help="path-sensitive static analysis: durability-ordering "
             "(SDA) and asyncio-discipline (ACD) rules over per-"
             "function CFGs and the project call graph")
    analyze_parser.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze (default: all of "
             "src/repro)")
    analyze_parser.add_argument(
        "--select", metavar="SDA001,...", default=None,
        help="run only these rule codes")
    analyze_parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write findings as JSON to FILE ('-' for stdout)")
    analyze_parser.add_argument(
        "--rules", action="store_true",
        help="print the rule catalogue and exit")
    analyze_parser.add_argument(
        "--baseline", metavar="FILE",
        default="analysis-baseline.json",
        help="baseline file for --gate/--write-baseline "
             "(default: analysis-baseline.json)")
    analyze_parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and "
             "exit 0")
    analyze_parser.add_argument(
        "--gate", action="store_true",
        help="CI mode: fail on findings missing from the baseline "
             "AND on stale baseline entries (the ratchet only "
             "shrinks)")
    analyze_parser.set_defaults(func=_cmd_analyze)

    bench_parser = commands.add_parser(
        "bench",
        help="wall-clock benchmark harness: cache microbenches + "
             "YCSB/TPC-C smoke per engine, BENCH_*.json emission, "
             "regression comparison vs the newest prior run")
    bench_parser.add_argument("--quick", action="store_true",
                              help="smaller op counts (CI smoke)")
    bench_parser.add_argument(
        "--engines", default=None, metavar="A,B,...",
        help="macro-bench only these engines (default: the paper's "
             "six architectures)")
    bench_parser.add_argument(
        "--only", default=None, metavar="SUBSTR",
        help="run only benches whose name contains SUBSTR")
    bench_parser.add_argument(
        "--out", default="benchmarks/results", metavar="DIR",
        help="directory for BENCH_<timestamp>.json "
             "(default: benchmarks/results)")
    bench_parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="compare against FILE instead of the newest prior "
             "BENCH_*.json (falls back to the committed "
             "BENCH_baseline.json)")
    bench_parser.add_argument(
        "--threshold", type=float, default=0.20, metavar="FRAC",
        help="wall-clock regression threshold as a fraction "
             "(default: 0.20)")
    bench_parser.add_argument(
        "--repeats", type=int, default=3, metavar="N",
        help="best-of-N repeats for microbenches (default: 3)")
    bench_parser.add_argument(
        "--gate", action="store_true",
        help="exit non-zero on a regression or sim divergence "
             "(CI bench-smoke mode)")
    bench_parser.add_argument(
        "--history", action="store_true",
        help="print the perf trajectory across the committed "
             "BENCH_*.json files in --out and exit (runs nothing)")
    bench_parser.set_defaults(func=_cmd_bench)

    report_parser = commands.add_parser(
        "report",
        help="aggregate run history — bench trajectory, sweep "
             "summaries, crash-campaign outcomes, telemetry event "
             "logs — into one markdown/JSON report")
    report_parser.add_argument(
        "--bench-dir", default=os.path.join("benchmarks", "results"),
        metavar="DIR",
        help="directory of committed BENCH_*.json files "
             "(default: benchmarks/results)")
    report_parser.add_argument(
        "--scan", action="append", default=None, metavar="DIR",
        help="directory to scan for sweep/campaign/event-log "
             "artifacts (repeatable; default: artifacts)")
    report_parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the report as JSON (kind "
             "repro-history-report)")
    report_parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the markdown report to FILE instead of stdout")
    report_parser.set_defaults(func=_cmd_report)

    obs_parser = commands.add_parser(
        "obs", help="pretty-print a trace (.jsonl) or metrics (.prom) "
                    "file produced by --trace/--metrics")
    obs_parser.add_argument("file")
    obs_parser.set_defaults(func=_cmd_obs)

    serve_parser = commands.add_parser(
        "serve",
        help="serve a database over the wire protocol (asyncio "
             "socket server with group commit; see docs/server.md)")
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=7333,
                              help="TCP port (0 = ephemeral)")
    serve_parser.add_argument("--engine", default="nvm-inp",
                              choices=engine_names())
    serve_parser.add_argument("--partitions", type=int, default=1)
    serve_parser.add_argument("--latency", default=None,
                              choices=("dram", "low-nvm", "high-nvm"))
    serve_parser.add_argument("--seed", type=int, default=0x5EED)
    serve_parser.add_argument(
        "--batch-size", type=int, default=8, metavar="N",
        help="group-commit batch size (commits per durable point)")
    serve_parser.add_argument(
        "--hold-ns", type=float, default=200_000.0, metavar="NS",
        help="max simulated ns a batch is held open")
    serve_parser.add_argument(
        "--hold-wall-ms", type=float, default=2.0, metavar="MS",
        help="wall-clock liveness backstop for the last batch")
    serve_parser.add_argument(
        "--no-group-commit", action="store_true",
        help="flush every commit individually (baseline)")
    serve_parser.add_argument(
        "--max-inflight", type=int, default=64, metavar="N",
        help="admission control: transactions in flight before "
             "begin blocks")
    serve_parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="load shedding: begins parked for admission before "
             "further ones are refused with RetryAfter "
             "(default: park without bound)")
    serve_parser.add_argument(
        "--session-lease", type=float, default=None, metavar="S",
        help="reap sessions idle longer than S seconds, aborting "
             "their transaction and releasing their locks "
             "(default: no leases)")
    serve_parser.add_argument(
        "--watchdog", type=float, default=None, metavar="S",
        help="auto-recover the database S seconds after a crash "
             "(default: recovery stays explicit)")
    serve_parser.set_defaults(func=_cmd_serve)

    chaos_parser = commands.add_parser(
        "chaos",
        help="chaos campaign: N clients commit through a seeded "
             "fault proxy while a nemesis crashes/recovers the "
             "server; an oracle checks exactly-once invariants "
             "(see docs/fault-injection.md)")
    chaos_parser.add_argument("--clients", type=int, default=4)
    chaos_parser.add_argument("--txns", type=int, default=40,
                              metavar="N",
                              help="transactions per client")
    chaos_parser.add_argument("--keys", type=int, default=64)
    chaos_parser.add_argument("--seed", type=int, default=0xDB05)
    chaos_parser.add_argument("--engine", default="nvm-inp",
                              choices=engine_names())
    chaos_parser.add_argument("--crash-cycles", type=int, default=2,
                              metavar="N",
                              help="nemesis crash/recover cycles")
    chaos_parser.add_argument(
        "--fault-scale", type=float, default=1.0, metavar="X",
        help="multiply every fault probability by X "
             "(0 disables faults)")
    chaos_parser.add_argument(
        "--max-wall", type=float, default=120.0, metavar="S",
        help="hard wall-clock bound; a stalled worker past it is "
             "reported as a violation, never a hang")
    chaos_parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the full campaign report (kind "
             "repro-chaos-report) to FILE")
    _add_telemetry_flags(chaos_parser)
    chaos_parser.set_defaults(func=_cmd_chaos)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
