"""The commit ledger: server-side memory for exactly-once commits.

The commit-ambiguity window of a wire protocol: the client sends
``commit``, the connection dies, and the client cannot tell whether
the transaction was applied (the ack frame was lost) or never started
(the request frame was lost). The ledger closes that window with
client-generated **commit tokens**: every tokened ``commit`` records
its fate here — ``pending`` while parked on group commit, then
``durable`` (with the full result frame) or ``failed`` (power failed
before the batch's durable point) — and a retried ``commit`` or a
``commit_status`` probe resolves against the record instead of
re-running the transaction.

A token is ``"<nonce>:<seq>"`` where ``nonce`` identifies one client
connection-lifetime and ``seq`` increases monotonically within it.
That structure is what lets a *bounded* ledger stay honest: completed
entries are evicted FIFO once ``capacity`` is exceeded, but the
per-nonce high-water mark of recorded sequence numbers survives
eviction, so the ledger can distinguish

* ``unknown`` — this token was **never recorded**: the commit verb
  never started executing, so the transaction was certainly not
  applied (the client may safely re-run it);
* ``forgotten`` — this token **was recorded but evicted**: the
  outcome is genuinely ambiguous and the client must reconcile from
  data (:class:`~repro.errors.CommitAmbiguousError`).

Nonce high-water marks are themselves bounded (LRU); a client retrying
a commit from a nonce evicted out of the tracking window also gets
``forgotten`` — the safe answer.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

from ..errors import ProtocolError

__all__ = ["CommitLedger", "LedgerEntry"]

#: Completed entries remembered before FIFO eviction.
DEFAULT_CAPACITY = 4096

#: Client nonces whose high-water marks are tracked (LRU).
DEFAULT_NONCE_CAPACITY = 1024


class LedgerEntry:
    """One tokened commit's recorded fate."""

    __slots__ = ("status", "result", "reason")

    def __init__(self, status: str, result: Optional[Dict[str, Any]]
                 = None, reason: str = "") -> None:
        self.status = status        # "pending" | "durable" | "failed"
        self.result = result
        self.reason = reason

    def to_wire(self, token: str) -> Dict[str, Any]:
        return {"token": token, "status": self.status,
                "result": self.result, "reason": self.reason}


def _parse_token(token: str) -> Tuple[str, int]:
    nonce, sep, seq = token.rpartition(":")
    if not sep or not nonce:
        raise ProtocolError(
            f"malformed commit token {token!r} (want '<nonce>:<seq>')")
    try:
        return nonce, int(seq)
    except ValueError:
        raise ProtocolError(
            f"malformed commit token {token!r} (non-integer seq)") \
            from None


class CommitLedger:
    """Bounded exactly-once commit memory (event-loop confined)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 nonce_capacity: int = DEFAULT_NONCE_CAPACITY) -> None:
        if capacity < 1 or nonce_capacity < 1:
            raise ValueError("ledger capacities must be >= 1")
        self._capacity = capacity
        self._nonce_capacity = nonce_capacity
        #: token -> entry; insertion order is completion-eviction order.
        self._entries: "OrderedDict[str, LedgerEntry]" = OrderedDict()
        #: nonce -> highest seq ever recorded (survives entry eviction).
        self._high_water: "OrderedDict[str, int]" = OrderedDict()
        # Accounting (exposed by the ``stats`` verb).
        self.recorded = 0
        self.dedup_hits = 0
        self.evicted = 0

    # ------------------------------------------------------------------

    def lookup(self, token: str) -> Optional[LedgerEntry]:
        """The live entry for ``token``, or None (see :meth:`status`
        for the unknown/forgotten distinction)."""
        _parse_token(token)     # validate even on a miss
        return self._entries.get(token)

    def status(self, token: str) -> Dict[str, Any]:
        """Wire answer for ``commit_status``: one of ``pending``,
        ``durable``, ``failed``, ``forgotten``, ``unknown``."""
        nonce, seq = _parse_token(token)
        entry = self._entries.get(token)
        if entry is not None:
            self.dedup_hits += 1
            return entry.to_wire(token)
        high = self._high_water.get(nonce)
        if high is None:
            if len(self._high_water) >= self._nonce_capacity:
                # The nonce may have been tracked and evicted: the
                # outcome of any of its tokens is unknowable.
                return {"token": token, "status": "forgotten",
                        "result": None,
                        "reason": "client nonce evicted from the "
                                  "ledger's tracking window"}
            return {"token": token, "status": "unknown",
                    "result": None, "reason": ""}
        if seq <= high:
            return {"token": token, "status": "forgotten",
                    "result": None,
                    "reason": "token evicted from the bounded "
                              "commit ledger"}
        return {"token": token, "status": "unknown", "result": None,
                "reason": ""}

    # ------------------------------------------------------------------

    def begin(self, token: str) -> None:
        """Record the commit as in flight *before any engine work* —
        from here on a retry resolves against the ledger, never the
        engine."""
        nonce, seq = _parse_token(token)
        if token in self._entries:
            raise ProtocolError(
                f"commit token {token!r} is already recorded")
        self._entries[token] = LedgerEntry("pending")
        self.recorded += 1
        high = self._high_water.get(nonce)
        if high is None or seq > high:
            self._high_water[nonce] = max(high or 0, seq)
        self._high_water.move_to_end(nonce)
        while len(self._high_water) > self._nonce_capacity:
            self._high_water.popitem(last=False)

    def resolve_durable(self, token: str,
                        result: Dict[str, Any]) -> None:
        self._resolve(token, "durable", result=result)

    def resolve_failed(self, token: str, reason: str) -> None:
        self._resolve(token, "failed", reason=reason)

    def _resolve(self, token: str, status: str, *,
                 result: Optional[Dict[str, Any]] = None,
                 reason: str = "") -> None:
        entry = self._entries.get(token)
        if entry is None or entry.status != "pending":
            return                      # already resolved or evicted
        entry.status = status
        entry.result = result
        entry.reason = reason
        # Completed entries age out FIFO; pending ones never do (their
        # commit coroutine is still running and will resolve them).
        self._entries.move_to_end(token)
        self._evict()

    def _evict(self) -> None:
        completed = sum(1 for entry in self._entries.values()
                        if entry.status != "pending")
        if completed <= self._capacity:
            return
        for token in list(self._entries):
            if completed <= self._capacity:
                break
            if self._entries[token].status != "pending":
                del self._entries[token]
                self.evicted += 1
                completed -= 1

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        pending = sum(1 for entry in self._entries.values()
                      if entry.status == "pending")
        return {"capacity": self._capacity,
                "entries": len(self._entries),
                "pending": pending,
                "recorded": self.recorded,
                "dedup_hits": self.dedup_hits,
                "evicted": self.evicted}
