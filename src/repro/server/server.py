"""The asyncio database server.

One :class:`DatabaseServer` owns one :class:`~repro.core.database.
Database` and serves it over a socket speaking the length-prefixed
JSON protocol of :mod:`repro.server.protocol`. The concurrency model
mirrors the paper's testbed:

* **Transaction execution is serial per partition.** A per-partition
  ``asyncio.Lock`` is held from ``begin`` to the logical commit or
  abort, so engine operations of different sessions never interleave
  within a partition (the engines assume serial execution and provide
  no inter-transaction isolation).
* **Durability is batched across sessions.** The logical commit
  releases the partition lock and enqueues onto the partition's
  :class:`~repro.server.groupcommit.GroupCommitStage`; the commit
  *response* is sent only once the batch reaches its durable point,
  so a client never observes a commit the recovery protocol could
  lose.
* **Admission control** bounds transactions in flight (active plus
  awaiting durability) with a semaphore; a ``begin`` past the bound
  parks, and because each connection processes frames sequentially,
  that parks the whole connection — natural backpressure down the
  socket.

All database work runs on the event-loop thread; engine calls never
await, so each verb handler is atomic between awaits by construction.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import logging
import signal
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set, Tuple, Union

from ..config import EngineConfig, LatencyProfile
from ..core.database import Database
from ..errors import (ConfigError, CrashedError, DatabaseClosedError,
                      LeaseExpiredError, ProtocolError, ReproError,
                      RetryAfterError, SimulatedCrash)
from ..obs.metrics import MetricsRegistry
from .groupcommit import GroupCommitConfig, GroupCommitStage
from .ledger import CommitLedger
from .protocol import (MAX_FRAME_BYTES, PROTOCOL_VERSION, encode_frame,
                       error_response, ok_response, read_frame,
                       schema_from_wire, schema_to_wire, unwire_value,
                       wire_value)
from .registry import ProcedureRegistry

__all__ = ["ServerConfig", "DatabaseServer", "ServerThread"]

logger = logging.getLogger("repro.server")

#: Engine auto-flush is disabled on server-built databases — the
#: group-commit stage owns the durable-point cadence.
_NO_AUTO_FLUSH = 1 << 30


@dataclass(frozen=True)
class ServerConfig:
    """Everything that defines one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                      # 0 = ephemeral (reported by start)
    engine: str = "nvm-inp"
    partitions: int = 1
    latency: Union[None, str, LatencyProfile] = None
    seed: int = 0x5EED
    engine_config: Optional[EngineConfig] = None
    group_commit: GroupCommitConfig = field(
        default_factory=GroupCommitConfig)
    #: Transactions in flight (active + awaiting durability) before
    #: ``begin`` blocks.
    max_inflight: int = 64
    max_frame_bytes: int = MAX_FRAME_BYTES
    #: Load shedding: once this many ``begin``/``call`` requests are
    #: already parked waiting for admission, further ones are refused
    #: with :class:`~repro.errors.RetryAfterError` instead of parking
    #: (None = park without bound, the pre-shedding behavior).
    max_admission_queue: Optional[int] = None
    #: The backoff hint a shed request carries (clients add jitter).
    retry_after_s: float = 0.05
    #: Session lease: a session idle (no frame touching it) longer
    #: than this is reaped — its transaction aborted, its partition
    #: lock and admission slot released (None = no leases).
    session_lease_s: Optional[float] = None
    #: Cadence of the lease reaper / crash watchdog maintenance task.
    reaper_interval_s: float = 0.05
    #: Watchdog: auto-recover the database this many seconds after a
    #: crash (None = recovery stays explicit).
    watchdog_recover_s: Optional[float] = None
    #: Completed commit tokens remembered for exactly-once replay.
    commit_ledger_size: int = 4096

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ConfigError("max_inflight must be >= 1")
        if self.max_admission_queue is not None \
                and self.max_admission_queue < 0:
            raise ConfigError("max_admission_queue must be >= 0")
        if self.retry_after_s <= 0:
            raise ConfigError("retry_after_s must be positive")
        if self.session_lease_s is not None \
                and self.session_lease_s <= 0:
            raise ConfigError("session_lease_s must be positive")
        if self.reaper_interval_s <= 0:
            raise ConfigError("reaper_interval_s must be positive")
        if self.watchdog_recover_s is not None \
                and self.watchdog_recover_s < 0:
            raise ConfigError("watchdog_recover_s must be >= 0")
        if self.commit_ledger_size < 1:
            raise ConfigError("commit_ledger_size must be >= 1")


class _RemoteSession:
    """Server-side bookkeeping around one wire session."""

    __slots__ = ("session", "partition_id", "lock_held", "sem_held",
                 "awaiting", "busy", "last_seen")

    def __init__(self, session, now: float = 0.0) -> None:
        self.session = session
        self.partition_id = 0
        self.lock_held = False        # partition lock (execution)
        self.sem_held = False         # admission slot
        self.awaiting = False         # parked on a group-commit future
        self.busy = 0                 # verb handlers currently running
        self.last_seen = now          # loop time of the last frame


class DatabaseServer:
    """Serves one database over the wire protocol."""

    def __init__(self, config: Optional[ServerConfig] = None, *,
                 database: Optional[Database] = None,
                 procedures: Optional[ProcedureRegistry] = None) -> None:
        self.config = config or ServerConfig()
        self.database = database or self._build_database(self.config)
        self.procedures = procedures or ProcedureRegistry()
        self.metrics = MetricsRegistry()
        self.address: Optional[Tuple[str, int]] = None
        self._sessions: Dict[int, _RemoteSession] = {}
        self._latency_hists: Dict[str, Any] = {}
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._stages: Dict[int, GroupCommitStage] = {}
        self._locks: Dict[int, asyncio.Lock] = {}
        self._admission: Optional[asyncio.Semaphore] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._shutdown_event: Optional[asyncio.Event] = None
        self._stopped = False
        self._ledger = CommitLedger(self.config.commit_ledger_size)
        #: Reaped session ids -> reason (bounded; LeaseExpiredError).
        self._expired: "OrderedDict[int, str]" = OrderedDict()
        self._admission_queue = 0     # begins parked waiting admission
        self._inflight = 0            # admission slots currently held
        self._crashed_at: Optional[float] = None
        self._maintenance_task: Optional[asyncio.Task] = None
        self._frames = self.metrics.counter("server.frames")
        self._error_count = self.metrics.counter("server.errors")
        self._admission_waits = self.metrics.counter(
            "server.admission_waits")
        self._shed_count = self.metrics.counter("server.shed")
        self._reaped_count = self.metrics.counter(
            "server.reaper.expired")
        self._watchdog_recoveries = self.metrics.counter(
            "server.watchdog.recoveries")
        self._commit_dedup = self.metrics.counter(
            "server.commit.dedup")

    @staticmethod
    def _build_database(config: ServerConfig) -> Database:
        engine_config = dataclasses.replace(
            config.engine_config or EngineConfig(),
            group_commit_size=_NO_AUTO_FLUSH)
        latency = config.latency
        if isinstance(latency, str):
            latency = LatencyProfile.parse(latency)
        return Database(config.engine, partitions=config.partitions,
                        latency=latency, engine_config=engine_config,
                        seed=config.seed)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        self._loop = asyncio.get_running_loop()
        self._shutdown_event = asyncio.Event()
        self._admission = asyncio.Semaphore(self.config.max_inflight)
        for partition in self.database.partitions:
            pid = partition.partition_id
            self._locks[pid] = asyncio.Lock()
            self._stages[pid] = GroupCommitStage(
                partition, self.config.group_commit, self._loop,
                on_crash=self._crash_from_engine,
                batch_histogram=self.metrics.histogram(
                    "server.group_commit.batch_txns",
                    partition=str(pid)))
        if self.config.session_lease_s is not None \
                or self.config.watchdog_recover_s is not None:
            self._maintenance_task = self._loop.create_task(
                self._maintenance_loop())
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port)
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        logger.info("serving %s engine on %s:%d", self.database.engine_name,
                    *self.address)
        return self.address

    async def serve_forever(self) -> None:
        """Serve until :meth:`request_shutdown` (or the ``shutdown``
        verb) fires, then stop cleanly."""
        if self._server is None:
            await self.start()
        await self._shutdown_event.wait()
        await self.stop()

    def request_shutdown(self) -> None:
        """Ask the serve loop to exit (thread-safe from the loop)."""
        if self._shutdown_event is not None:
            self._shutdown_event.set()

    async def stop(self) -> None:
        """Stop listening, resolve outstanding durability, close every
        session, and cancel connection tasks."""
        if self._stopped:
            return
        self._stopped = True
        if self._maintenance_task is not None:
            self._maintenance_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._maintenance_task
            self._maintenance_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        alive = not (self.database.closed or self.database.crashed)
        for stage in self._stages.values():
            if alive:
                stage.flush("shutdown")
            else:
                stage.fail_pending("server shut down")
            stage.close()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks,
                                 return_exceptions=True)
        for session_id in list(self._sessions):
            self._close_session(session_id)
        logger.info("server stopped (%d committed, %d aborted)",
                    self.database.committed_txns,
                    self.database.aborted_txns)

    def run(self, ready=None) -> None:
        """Blocking entry point: serve until SIGINT/SIGTERM, then shut
        down gracefully (used by ``python -m repro serve``). ``ready``
        is called with the bound ``(host, port)`` once listening."""
        asyncio.run(self._run_with_signals(ready))

    async def _run_with_signals(self, ready=None) -> None:
        await self.start()
        if ready is not None:
            ready(self.address)
        loop = asyncio.get_running_loop()
        installed = []
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, self.request_shutdown)
                installed.append(signum)
            except (NotImplementedError, RuntimeError):
                pass
        try:
            await self.serve_forever()
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)

    # ------------------------------------------------------------------
    # Connection loop
    # ------------------------------------------------------------------

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        conn_sessions: Set[int] = set()
        try:
            while True:
                try:
                    payload = await read_frame(
                        reader,
                        max_frame_bytes=self.config.max_frame_bytes)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                except ProtocolError as exc:
                    # Corrupt framing: answer once, then drop the
                    # connection (resynchronization is impossible).
                    self._error_count.inc()
                    await self._send(writer, error_response(None, exc))
                    break
                response = await self._dispatch(conn_sessions, payload)
                await self._send(writer, response)
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            for session_id in list(conn_sessions):
                self._close_session(session_id)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _send(self, writer: asyncio.StreamWriter,
                    response: Dict[str, Any]) -> None:
        try:
            frame = encode_frame(
                response, max_frame_bytes=self.config.max_frame_bytes)
        except (ProtocolError, TypeError, ValueError) as exc:
            # Unserializable or oversized result: degrade to an error
            # frame rather than killing the connection.
            self._error_count.inc()
            frame = encode_frame(error_response(response.get("id"), exc))
        writer.write(frame)
        with contextlib.suppress(ConnectionError):
            await writer.drain()

    async def _dispatch(self, conn_sessions: Set[int],
                        payload: Dict[str, Any]) -> Dict[str, Any]:
        request_id = payload.get("id")
        verb = payload.get("verb")
        args = payload.get("args", {})
        self._frames.inc()
        handler = self._HANDLERS.get(verb) if isinstance(verb, str) \
            else None
        if handler is None:
            self._error_count.inc()
            return error_response(request_id, ProtocolError(
                f"unknown verb {verb!r}"))
        if not isinstance(args, dict):
            self._error_count.inc()
            return error_response(request_id, ProtocolError(
                f"args must be an object, got {type(args).__name__}"))
        # Lease bookkeeping: any frame naming a session renews its
        # lease, and a session with a handler mid-flight (e.g. parked
        # in ``begin`` on admission) is never reaped out from under it.
        remote = self._sessions.get(args.get("session"))
        if remote is not None:
            remote.busy += 1
            remote.last_seen = self._loop.time()
        try:
            result = await handler(self, conn_sessions, args)
        except asyncio.CancelledError:
            raise
        except ReproError as exc:
            self._error_count.inc()
            return error_response(request_id, exc)
        except Exception as exc:  # procedure bugs etc.
            self._error_count.inc()
            logger.exception("verb %s failed unexpectedly", verb)
            return error_response(request_id, exc)
        finally:
            if remote is not None:
                remote.busy -= 1
                remote.last_seen = self._loop.time()
        return ok_response(request_id, result)

    # ------------------------------------------------------------------
    # Crash plumbing
    # ------------------------------------------------------------------

    def _crash_from_engine(self) -> None:
        """A SimulatedCrash escaped an engine flush: convert it into a
        full platform crash, exactly like Database.flush does."""
        if not (self.database.closed or self.database.crashed):
            self.database.crash()
        self._after_crash()

    def _after_crash(self) -> int:
        """The database just crashed: fail pending durability waiters,
        invalidate every session's live transaction, and release
        execution locks/admission slots the dead transactions held.
        Commit coroutines parked on a group-commit future release their
        own admission slot when the future fails. Returns the number of
        logically-committed transactions that were lost."""
        self._crashed_at = self._loop.time() \
            if self._loop is not None else None
        lost = 0
        for stage in self._stages.values():
            lost += stage.fail_pending("power failure")
        for remote in self._sessions.values():
            remote.session.invalidate()
            if remote.lock_held:
                remote.lock_held = False
                self._locks[remote.partition_id].release()
            if not remote.awaiting:
                self._sem_release(remote)
        return lost

    # ------------------------------------------------------------------
    # Maintenance: the lease reaper and the crash watchdog
    # ------------------------------------------------------------------

    async def _maintenance_loop(self) -> None:
        """Periodic housekeeping on the event loop: reap sessions idle
        past their lease (so one dead client cannot wedge a partition
        forever) and, when configured, auto-recover the database after
        a crash."""
        while True:
            await asyncio.sleep(self.config.reaper_interval_s)
            now = self._loop.time()
            self._reap_expired(now)
            self._watchdog_check(now)

    def _reap_expired(self, now: float) -> None:
        lease = self.config.session_lease_s
        if lease is None:
            return
        for session_id, remote in list(self._sessions.items()):
            # A handler mid-flight (parked in begin, executing a
            # procedure) or a commit awaiting durability is server-side
            # progress, not client idleness — never reap those.
            if remote.busy or remote.awaiting:
                continue
            if now - remote.last_seen < lease:
                continue
            self._reap_session(session_id, remote, lease)

    def _reap_session(self, session_id: int, remote: _RemoteSession,
                      lease: float) -> None:
        self._sessions.pop(session_id, None)
        reason = f"exceeded the {lease:g}s session lease while idle"
        logger.info("reaping session %s (%s)", remote.session.name,
                    reason)
        try:
            if remote.session.in_transaction \
                    and not (self.database.closed
                             or self.database.crashed):
                remote.session.abort()
            else:
                remote.session.invalidate()
        except SimulatedCrash:
            self._after_crash()
        finally:
            self._release_all(remote)
            remote.session.expire(reason)
            self._reaped_count.inc()
            self._expired[session_id] = reason
            while len(self._expired) > 1024:
                self._expired.popitem(last=False)

    def _watchdog_check(self, now: float) -> None:
        delay = self.config.watchdog_recover_s
        if delay is None or self.database.closed \
                or not self.database.crashed:
            return
        if self._crashed_at is None:    # crash predates this observer
            self._crashed_at = now
            return
        if now - self._crashed_at < delay:
            return
        try:
            seconds = self.database.recover()
        except SimulatedCrash:
            self._after_crash()
            return
        self._crashed_at = None
        self._watchdog_recoveries.inc()
        logger.info("watchdog recovered the database "
                    "(%.6f simulated seconds)", seconds)

    # ------------------------------------------------------------------
    # Session / grant helpers
    # ------------------------------------------------------------------

    def _remote(self, conn_sessions: Set[int],
                args: Dict[str, Any]) -> _RemoteSession:
        session_id = args.get("session")
        remote = self._sessions.get(session_id) \
            if session_id in conn_sessions else None
        if remote is None:
            if session_id in conn_sessions \
                    and session_id in self._expired:
                raise LeaseExpiredError(
                    f"session {session_id} "
                    f"{self._expired[session_id]}")
            raise ProtocolError(
                f"no open session {session_id!r} on this connection")
        return remote

    def _partition_id(self, args: Dict[str, Any]) -> int:
        pid = args.get("partition", 0)
        if not isinstance(pid, int) \
                or not 0 <= pid < len(self.database.partitions):
            raise ProtocolError(f"no such partition {pid!r}")
        return pid

    async def _admit(self, remote: _RemoteSession, pid: int) -> None:
        """Take an admission slot and the partition's execution lock.
        With ``max_admission_queue`` set, a request that would park
        behind a full queue is shed with
        :class:`~repro.errors.RetryAfterError` before any state
        changes — overload degrades to fast refusals, not an
        ever-deepening convoy."""
        limit = self.config.max_admission_queue
        if self._admission.locked():
            if limit is not None and self._admission_queue >= limit:
                self._shed_count.inc()
                raise RetryAfterError(
                    f"server overloaded: {self._admission_queue} "
                    f"transactions already queued for admission; "
                    f"retry later",
                    retry_after_s=self.config.retry_after_s)
            self._admission_waits.inc()
        self._admission_queue += 1
        try:
            # ACD002 waived: ownership transfers to the session —
            # remote.sem_held marks it, and every verb exit path
            # (_release_all / _sem_release, including _after_crash)
            # releases the slot once the txn is durable or dead.
            await self._admission.acquire()  # noqa: ACD002
        finally:
            self._admission_queue -= 1
        remote.sem_held = True
        self._inflight += 1
        try:
            # ACD002 waived: same ownership transfer — the partition
            # lock is held begin→logical-commit across verb handlers
            # (remote.lock_held) and released by _release_execution
            # on every exit path; the except below covers a cancelled
            # acquire.
            await self._locks[pid].acquire()  # noqa: ACD002
        except BaseException:
            self._sem_release(remote)
            raise
        remote.lock_held = True
        remote.partition_id = pid

    def _release_execution(self, remote: _RemoteSession) -> None:
        if remote.lock_held:
            remote.lock_held = False
            self._locks[remote.partition_id].release()

    def _sem_release(self, remote: _RemoteSession) -> None:
        if remote.sem_held:
            remote.sem_held = False
            self._inflight -= 1
            self._admission.release()

    def _release_all(self, remote: _RemoteSession) -> None:
        self._release_execution(remote)
        self._sem_release(remote)

    async def _await_durable(self, remote: _RemoteSession,
                             pid: int) -> None:
        """Park on the partition's group-commit stage until the just-
        committed transaction is durable; the admission slot is held
        until then."""
        remote.awaiting = True
        future = self._stages[pid].enqueue()
        try:
            await future
        finally:
            remote.awaiting = False
            self._sem_release(remote)

    def _observe_latency(self, remote: _RemoteSession,
                         latency_ns: float) -> None:
        name = remote.session.name
        hist = self._latency_hists.get(name)
        if hist is None:
            hist = self.metrics.histogram("server.txn_latency_ns",
                                          session=name)
            self._latency_hists[name] = hist
        hist.observe(latency_ns)

    def _close_session(self, session_id: int) -> None:
        remote = self._sessions.pop(session_id, None)
        if remote is None:
            return
        try:
            if remote.session.in_transaction \
                    and not (self.database.closed
                             or self.database.crashed):
                remote.session.abort()
            else:
                remote.session.invalidate()
        except SimulatedCrash:
            self._after_crash()
        finally:
            if not remote.awaiting:
                self._release_all(remote)
            else:
                self._release_execution(remote)
            remote.session.close()

    # ------------------------------------------------------------------
    # Verb handlers
    # ------------------------------------------------------------------

    async def _verb_hello(self, conn_sessions, args):
        gc = self.config.group_commit
        return {"server": "repro", "protocol": PROTOCOL_VERSION,
                "engine": self.database.engine_name,
                "partitions": len(self.database.partitions),
                "group_commit": {"enabled": gc.enabled,
                                 "batch_size": gc.batch_size,
                                 "max_hold_ns": gc.max_hold_ns},
                "max_inflight": self.config.max_inflight,
                "max_admission_queue": self.config.max_admission_queue,
                "session_lease_s": self.config.session_lease_s,
                "watchdog_recover_s": self.config.watchdog_recover_s,
                "commit_ledger_size": self.config.commit_ledger_size}

    async def _verb_ping(self, conn_sessions, args):
        return {"now_ns": self.database.partitions[0].platform.clock.now_ns}

    async def _verb_open_session(self, conn_sessions, args):
        session = self.database.session(str(args.get("name", "")))
        self._sessions[session.session_id] = _RemoteSession(
            session, now=self._loop.time())
        conn_sessions.add(session.session_id)
        return {"session": session.session_id, "name": session.name}

    async def _verb_close_session(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        session_id = remote.session.session_id
        self._close_session(session_id)
        conn_sessions.discard(session_id)
        return {"closed": session_id}

    async def _verb_create_table(self, conn_sessions, args):
        schema = schema_from_wire(args.get("schema"))
        self.database.create_table(schema)
        return {"table": schema.table}

    async def _verb_schema(self, conn_sessions, args):
        table = args.get("table")
        schema = self.database.partitions[0].engine.schemas.get(table)
        if schema is None:
            raise ProtocolError(f"no such table {table!r}")
        return {"schema": schema_to_wire(schema)}

    async def _verb_begin(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        pid = self._partition_id(args)
        # Fail fast before taking locks for an illegal state.
        remote.session._require_open()
        self.database._require_alive()
        await self._admit(remote, pid)
        try:
            context = remote.session.begin(partition=pid)
        except SimulatedCrash:
            self._after_crash()
            raise
        except BaseException:
            self._release_all(remote)
            raise
        return {"txn": context.txn.txn_id, "partition": pid}

    async def _verb_commit(self, conn_sessions, args):
        token = args.get("token")
        if token is not None:
            token = str(token)
            entry = self._ledger.lookup(token)
            if entry is not None:       # a retry of a recorded commit
                return self._replay_commit(token, entry)
        remote = self._remote(conn_sessions, args)
        context = remote.session.context
        if context is None:
            remote.session._require_active()   # raises SessionStateError
        pid = remote.partition_id
        txn = context.txn
        if token is not None:
            # Recorded before any engine work: from here on, a token
            # the ledger does not know was certainly never applied.
            self._ledger.begin(token)
        try:
            txn_id = remote.session.commit()
        except SimulatedCrash as exc:
            if token is not None:
                self._ledger.resolve_failed(
                    token, f"power failed during the logical commit "
                           f"({exc})")
            self._after_crash()
            raise
        self._release_execution(remote)
        latency_ns = txn.commit_ns - txn.begin_ns
        try:
            await self._await_durable(remote, pid)
        except CrashedError as exc:
            if token is not None:
                self._ledger.resolve_failed(token, str(exc))
            raise
        result = {"txn": txn_id, "durable": True,
                  "latency_ns": latency_ns}
        if token is not None:
            self._ledger.resolve_durable(token, dict(result))
        self._observe_latency(remote, latency_ns)
        return result

    def _replay_commit(self, token: str, entry) -> Dict[str, Any]:
        """A commit frame whose token the ledger already knows: answer
        from the record — the engine never sees the retry."""
        self._commit_dedup.inc()
        self._ledger.dedup_hits += 1
        if entry.status == "pending":
            # The original commit coroutine is still parked on group
            # commit; tell the client to ask again shortly.
            raise RetryAfterError(
                f"commit {token} is still awaiting its durable point",
                retry_after_s=min(self.config.retry_after_s, 0.02))
        if entry.status == "durable":
            return dict(entry.result)
        raise CrashedError(f"commit not durable: {entry.reason}")

    async def _verb_commit_status(self, conn_sessions, args):
        token = str(args.get("token", ""))
        return self._ledger.status(token)

    async def _verb_abort(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        try:
            txn_id = remote.session.abort()
        except SimulatedCrash:
            self._after_crash()
            raise
        self._release_all(remote)
        return {"txn": txn_id, "aborted": True}

    async def _verb_call(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        procedure = self.procedures.get(str(args.get("name", "")))
        call_args = unwire_value(args.get("args", []))
        if not isinstance(call_args, list):
            raise ProtocolError("call args must be a list")
        pid = self._partition_id(args)
        remote.session._require_open()
        self.database._require_alive()
        await self._admit(remote, pid)
        try:
            context = remote.session.begin(partition=pid)
        except SimulatedCrash:
            self._after_crash()
            raise
        except BaseException:
            self._release_all(remote)
            raise
        txn = context.txn
        try:
            result = procedure(context, *call_args)
        except SimulatedCrash:
            # Power failure mid-procedure: no rollback — recovery
            # decides the transaction's fate (one-shot semantics).
            remote.session.invalidate()
            if not (self.database.closed or self.database.crashed):
                self.database.crash()
            self._after_crash()
            raise
        except Exception:
            try:
                remote.session.abort()
            except SimulatedCrash:
                self._after_crash()
                raise
            self._release_all(remote)
            raise
        try:
            txn_id = remote.session.commit()
        except SimulatedCrash:
            self._after_crash()
            raise
        self._release_execution(remote)
        latency_ns = txn.commit_ns - txn.begin_ns
        await self._await_durable(remote, pid)
        self._observe_latency(remote, latency_ns)
        return {"txn": txn_id, "result": wire_value(result),
                "latency_ns": latency_ns}

    async def _verb_procedures(self, conn_sessions, args):
        return {"procedures": list(self.procedures.names())}

    # -- in-transaction table operations --------------------------------

    async def _verb_insert(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        self._crashable(remote, remote.session.insert,
                        str(args.get("table", "")),
                        unwire_value(args.get("values")))
        return {}

    async def _verb_update(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        self._crashable(remote, remote.session.update,
                        str(args.get("table", "")),
                        unwire_value(args.get("key")),
                        unwire_value(args.get("changes")))
        return {}

    async def _verb_delete(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        self._crashable(remote, remote.session.delete,
                        str(args.get("table", "")),
                        unwire_value(args.get("key")))
        return {}

    async def _verb_get(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        row = self._crashable(remote, remote.session.get,
                              str(args.get("table", "")),
                              unwire_value(args.get("key")))
        return {"row": wire_value(row)}

    async def _verb_get_secondary(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        keys = self._crashable(remote, remote.session.get_secondary,
                               str(args.get("table", "")),
                               str(args.get("index", "")),
                               unwire_value(args.get("key")))
        return {"keys": wire_value(keys)}

    async def _verb_scan(self, conn_sessions, args):
        remote = self._remote(conn_sessions, args)
        rows = self._crashable(remote, remote.session.scan,
                               str(args.get("table", "")),
                               unwire_value(args.get("lo")),
                               unwire_value(args.get("hi")))
        return {"rows": [[wire_value(key), wire_value(row)]
                         for key, row in rows]}

    def _crashable(self, remote: _RemoteSession, op, *args):
        """Run one engine operation; a mid-operation power failure has
        already crashed the database (Session._op) — clean up server
        state before re-raising."""
        try:
            return op(*args)
        except SimulatedCrash:
            self._after_crash()
            raise

    # -- admin ----------------------------------------------------------

    async def _verb_flush(self, conn_sessions, args):
        self.database._require_alive()
        flushed = 0
        for stage in self._stages.values():
            flushed += stage.flush("explicit")
        if self.database.crashed:
            raise CrashedError("power failed during the durable point")
        return {"flushed": flushed}

    async def _verb_checkpoint(self, conn_sessions, args):
        try:
            self.database.checkpoint()
        except SimulatedCrash:
            self._after_crash()
            raise
        return {}

    async def _verb_crash(self, conn_sessions, args):
        if self.database.closed:
            raise DatabaseClosedError("cannot crash a closed database")
        if not self.database.crashed:
            self.database.crash()
        lost = self._after_crash()
        return {"crashed": True, "lost_commits": lost}

    async def _verb_recover(self, conn_sessions, args):
        try:
            seconds = self.database.recover()
        except SimulatedCrash:
            self._after_crash()
            raise
        self._crashed_at = None
        return {"seconds": seconds,
                "committed_txns": self.database.committed_txns}

    async def _verb_stats(self, conn_sessions, args):
        latency = {
            name: hist.percentiles((50, 95, 99))
            for name, hist in sorted(self._latency_hists.items())
        }
        return {
            "engine": self.database.engine_name,
            "partitions": len(self.database.partitions),
            "crashed": self.database.crashed,
            "committed_txns": self.database.committed_txns,
            "aborted_txns": self.database.aborted_txns,
            "sessions": [
                {"session": remote.session.session_id,
                 "name": remote.session.name,
                 "state": remote.session.state.value,
                 "committed": remote.session.txns_committed,
                 "aborted": remote.session.txns_aborted,
                 "awaiting": remote.awaiting,
                 "busy": remote.busy > 0}
                for remote in self._sessions.values()
            ],
            "group_commit": [stage.stats()
                             for _, stage in sorted(self._stages.items())],
            "latency_ns": latency,
            "admission": {
                "max_inflight": self.config.max_inflight,
                "in_flight": self._inflight,
                "queue": self._admission_queue,
                "queue_limit": self.config.max_admission_queue,
                "waits": int(self._admission_waits.value),
                "shed": int(self._shed_count.value),
            },
            "locks_held": [pid for pid, lock
                           in sorted(self._locks.items())
                           if lock.locked()],
            "reaper": {
                "lease_s": self.config.session_lease_s,
                "expired": int(self._reaped_count.value),
            },
            "watchdog": {
                "recover_s": self.config.watchdog_recover_s,
                "recoveries": int(self._watchdog_recoveries.value),
            },
            "ledger": self._ledger.stats(),
            "frames": int(self._frames.value),
            "errors": int(self._error_count.value),
        }

    async def _verb_shutdown(self, conn_sessions, args):
        self._loop.call_soon(self.request_shutdown)
        return {"stopping": True}

    _HANDLERS = {
        "hello": _verb_hello,
        "ping": _verb_ping,
        "open_session": _verb_open_session,
        "close_session": _verb_close_session,
        "create_table": _verb_create_table,
        "schema": _verb_schema,
        "begin": _verb_begin,
        "commit": _verb_commit,
        "commit_status": _verb_commit_status,
        "abort": _verb_abort,
        "call": _verb_call,
        "procedures": _verb_procedures,
        "insert": _verb_insert,
        "update": _verb_update,
        "delete": _verb_delete,
        "get": _verb_get,
        "get_secondary": _verb_get_secondary,
        "scan": _verb_scan,
        "flush": _verb_flush,
        "checkpoint": _verb_checkpoint,
        "crash": _verb_crash,
        "recover": _verb_recover,
        "stats": _verb_stats,
        "shutdown": _verb_shutdown,
    }


class ServerThread:
    """Run a :class:`DatabaseServer` on a background thread — the
    loopback harness used by tests, the closed-loop driver, and the CI
    smoke job."""

    def __init__(self, config: Optional[ServerConfig] = None, *,
                 database: Optional[Database] = None,
                 procedures: Optional[ProcedureRegistry] = None) -> None:
        self.server = DatabaseServer(config, database=database,
                                     procedures=procedures)
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None

    def start(self) -> Tuple[str, int]:
        """Start serving; returns the bound ``(host, port)``."""
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True)
        self._thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return self.server.address

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:    # surface startup failures
            if not self._ready.is_set():
                self._startup_error = exc
                self._ready.set()
            else:
                raise

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        try:
            await self.server.start()
        finally:
            self._ready.set()
        await self.server.serve_forever()

    def stop(self, timeout: float = 10.0) -> None:
        """Request a graceful shutdown and join the thread."""
        if self._loop is not None and self._thread is not None \
                and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        if self._thread is not None:
            self._thread.join(timeout)

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()
