"""Wire protocol for the network tier.

Frames are length-prefixed JSON: a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON encoding one object. Requests
carry ``{"id", "verb", "args"}``; responses carry ``{"id", "ok":
true, "result"}`` or ``{"id", "ok": false, "error": {"code",
"message"}}`` where ``code`` is the exception class name from
:mod:`repro.errors` (so the client re-raises the same type). An error
may carry structured ``data`` (e.g. ``retry_after_s`` on a shed
request); exception classes opt in with ``wire_data()`` /
``from_wire()``.

The codec is deliberately defensive: an oversized length prefix, a
zero-length frame, a body that is not valid UTF-8 JSON, or a payload
that is not a JSON object all raise
:class:`~repro.errors.ProtocolError` — the server answers with an
error frame and drops the connection rather than guessing.

Values cross the wire JSON-encoded with one extension: tuples (used
for composite keys and scan results) become ``{"__t__": [...]}``. The
key ``__t__`` is therefore reserved — a column may not use it.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, List, Optional

from .. import errors as _errors
from ..core.schema import Column, ColumnType, Schema
from ..errors import ProtocolError, SchemaError, ServerError

__all__ = [
    "PROTOCOL_VERSION", "MAX_FRAME_BYTES", "VERBS",
    "encode_frame", "FrameDecoder", "read_frame",
    "request", "ok_response", "error_response", "error_to_exception",
    "wire_value", "unwire_value", "schema_to_wire", "schema_from_wire",
]

#: Version spoken by this module; the ``hello`` handshake reports it.
#: Version 2 adds commit tokens, ``commit_status``, and structured
#: error data (load-shedding ``retry_after_s``).
PROTOCOL_VERSION = 2

#: Default upper bound on one frame body (1 MiB). Scan responses are
#: the largest legitimate frames; anything bigger is a corrupt prefix.
MAX_FRAME_BYTES = 1 << 20

_HEADER = struct.Struct(">I")

#: Every verb the server understands, in rough lifecycle order.
VERBS = (
    "hello", "ping",
    "open_session", "close_session",
    "create_table", "schema",
    "begin", "commit", "commit_status", "abort",
    "insert", "update", "delete", "get", "get_secondary", "scan",
    "call", "procedures",
    "flush", "checkpoint", "crash", "recover",
    "stats", "shutdown",
)

_TUPLE_TAG = "__t__"


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def encode_frame(payload: Dict[str, Any], *,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Serialize one payload object into a length-prefixed frame."""
    body = json.dumps(payload, separators=(",", ":"),
                      ensure_ascii=False).encode("utf-8")
    if len(body) > max_frame_bytes:
        raise ProtocolError(
            f"frame body of {len(body)} bytes exceeds the "
            f"{max_frame_bytes}-byte frame limit")
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") \
            from None
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, "
            f"got {type(payload).__name__}")
    return payload


class FrameDecoder:
    """Incremental frame decoder for byte streams.

    Feed arbitrary chunks; complete payloads come back in order. Used
    by the synchronous client and directly testable against truncated,
    oversized, and garbage input (the asyncio server uses
    :func:`read_frame`, which shares the same body decoding).
    """

    def __init__(self, *, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._max_frame_bytes = max_frame_bytes
        self._buffer = bytearray()

    @property
    def buffered_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        """Absorb ``data``; return every frame it completed."""
        self._buffer.extend(data)
        payloads = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return payloads
            (length,) = _HEADER.unpack_from(self._buffer)
            if length == 0:
                raise ProtocolError("zero-length frame")
            if length > self._max_frame_bytes:
                raise ProtocolError(
                    f"frame length {length} exceeds the "
                    f"{self._max_frame_bytes}-byte frame limit")
            if len(self._buffer) < _HEADER.size + length:
                return payloads
            body = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            payloads.append(_decode_body(body))

    def eof(self) -> None:
        """Signal end of stream; raises if a partial frame is buffered."""
        if self._buffer:
            raise ProtocolError(
                f"stream ended mid-frame with {len(self._buffer)} "
                "bytes buffered (truncated frame)")


async def read_frame(reader: asyncio.StreamReader, *,
                     max_frame_bytes: int = MAX_FRAME_BYTES
                     ) -> Dict[str, Any]:
    """Read one frame from an asyncio stream.

    Raises :class:`asyncio.IncompleteReadError` on a clean or mid-frame
    disconnect and :class:`~repro.errors.ProtocolError` on a corrupt
    frame.
    """
    header = await reader.readexactly(_HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length == 0:
        raise ProtocolError("zero-length frame")
    if length > max_frame_bytes:
        raise ProtocolError(
            f"frame length {length} exceeds the "
            f"{max_frame_bytes}-byte frame limit")
    body = await reader.readexactly(length)
    return _decode_body(body)


# ----------------------------------------------------------------------
# Requests / responses
# ----------------------------------------------------------------------

def request(request_id: int, verb: str,
            **args: Any) -> Dict[str, Any]:
    return {"id": request_id, "verb": verb, "args": args}


def ok_response(request_id: Optional[int],
                result: Any = None) -> Dict[str, Any]:
    return {"id": request_id, "ok": True, "result": result}


def error_response(request_id: Optional[int],
                   exc: BaseException) -> Dict[str, Any]:
    """Structured error frame; ``code`` is the exception class name.
    Exceptions exposing ``wire_data()`` ship that dict as ``data``
    (rebuilt client-side by the class's ``from_wire``)."""
    error: Dict[str, Any] = {"code": type(exc).__name__,
                             "message": str(exc)}
    wire_data = getattr(exc, "wire_data", None)
    if callable(wire_data):
        data = wire_data()
        if data:
            error["data"] = data
    return {"id": request_id, "ok": False, "error": error}


#: Exception classes a ``code`` may name (everything in repro.errors).
_ERROR_TYPES: Dict[str, type] = {
    name: obj for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, Exception)
}


def error_to_exception(error: Dict[str, Any]) -> Exception:
    """Rebuild the server-side exception from an error frame. Unknown
    codes degrade to :class:`~repro.errors.ServerError`."""
    if not isinstance(error, dict):
        return ServerError(f"malformed error frame: {error!r}")
    cls = _ERROR_TYPES.get(error.get("code", ""), ServerError)
    message = str(error.get("message", ""))
    from_wire = getattr(cls, "from_wire", None)
    if callable(from_wire):
        data = error.get("data")
        return from_wire(message, data if isinstance(data, dict)
                         else {})
    return cls(message)


# ----------------------------------------------------------------------
# Value codec
# ----------------------------------------------------------------------

def wire_value(value: Any) -> Any:
    """JSON-encodable form of a key/row/result value."""
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [wire_value(item) for item in value]}
    if isinstance(value, list):
        return [wire_value(item) for item in value]
    if isinstance(value, dict):
        return {name: wire_value(item) for name, item in value.items()}
    return value


def unwire_value(value: Any) -> Any:
    """Inverse of :func:`wire_value`."""
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(unwire_value(item) for item in value[_TUPLE_TAG])
        return {name: unwire_value(item) for name, item in value.items()}
    if isinstance(value, list):
        return [unwire_value(item) for item in value]
    return value


# ----------------------------------------------------------------------
# Schema codec
# ----------------------------------------------------------------------

def schema_to_wire(schema: Schema) -> Dict[str, Any]:
    return {
        "table": schema.table,
        "columns": [{"name": column.name, "type": column.type.value,
                     "capacity": column.capacity}
                    for column in schema.columns],
        "primary_key": list(schema.primary_key),
        "secondary_indexes": {name: list(columns)
                              for name, columns
                              in schema.secondary_indexes.items()},
    }


def schema_from_wire(obj: Dict[str, Any]) -> Schema:
    """Rebuild a :class:`Schema`; malformed input raises
    :class:`~repro.errors.ProtocolError`."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"schema must be an object, got {obj!r}")
    try:
        columns = [Column(spec["name"], ColumnType(spec["type"]),
                          spec.get("capacity", 8))
                   for spec in obj["columns"]]
        return Schema.build(obj["table"], columns, obj["primary_key"],
                            obj.get("secondary_indexes") or {})
    except SchemaError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed schema on the wire: {exc!r}") \
            from None
