"""Server-side group commit: coalescing durability rounds.

The engines already split commit into a cheap logical step
(:meth:`StorageEngine.commit`) and a durable point
(:meth:`StorageEngine.flush_commits` — the WAL fsync or master-record
flip). In-process, the engine auto-flushes every
``EngineConfig.group_commit_size`` commits. The server takes that
cadence over: it builds its database with engine auto-flush disabled
(a huge ``group_commit_size``) and runs one :class:`GroupCommitStage`
per partition that decides when the durable point happens.

A committing connection enqueues a future after the logical commit and
awaits it; the stage flushes — resolving every waiter in the batch —
when the first of these fires:

* **size** — ``batch_size`` commits are waiting;
* **hold** — the partition's simulated clock moved ``max_hold_ns``
  past the batch's first commit (checked at each enqueue, so it is
  deterministic for a deterministic workload);
* **timer** — ``max_hold_wall_s`` of wall time passed (liveness
  backstop: the last batch of a closed-loop run has no later commit
  to trip the size/hold checks);
* an explicit ``flush`` verb or server shutdown.

With batching ``enabled=False`` every commit flushes immediately —
one durability round per transaction — which is the baseline the
loopback benchmark compares against.

Accounting: each flush measures the simulated durability rounds it
spent (delta of ``fs.fsyncs`` + ``cache.sfence``, i.e. WAL fsyncs plus
flush+fence trains) and the stage feeds a per-partition batch-size
histogram into the server's metrics registry.

A :class:`~repro.errors.SimulatedCrash` raised by the engine's flush
is a power failure: the stage reports it through the ``on_crash``
callback (the server crashes the whole database) and fails every
waiter with :class:`~repro.errors.CrashedError` — exactly the group
commit contract, where a logically-committed transaction may be lost
if power fails before its batch is durable.
"""

from __future__ import annotations

import asyncio
from collections import Counter
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import CrashedError, SimulatedCrash

__all__ = ["GroupCommitConfig", "GroupCommitStage"]


@dataclass(frozen=True)
class GroupCommitConfig:
    """Tunables of the server's commit-batching stage."""

    #: Batch durability at all (False = flush every commit).
    enabled: bool = True
    #: Flush when this many commits are waiting.
    batch_size: int = 8
    #: Flush when the partition's simulated clock moved this far past
    #: the batch's first commit.
    max_hold_ns: float = 200_000.0
    #: Wall-clock liveness backstop for the final, never-filled batch.
    max_hold_wall_s: float = 0.002

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ValueError("group commit batch_size must be >= 1")
        if self.max_hold_ns < 0 or self.max_hold_wall_s <= 0:
            raise ValueError("group commit hold times must be positive")


class GroupCommitStage:
    """One partition's commit-batching stage (event-loop confined)."""

    def __init__(self, partition, config: GroupCommitConfig,
                 loop: asyncio.AbstractEventLoop, *,
                 on_crash: Optional[Callable[[], None]] = None,
                 batch_histogram=None) -> None:
        self._partition = partition
        self._config = config
        self._loop = loop
        self._on_crash = on_crash
        self._batch_histogram = batch_histogram
        self._waiters: List[asyncio.Future] = []
        self._batch_open_ns: Optional[float] = None
        self._timer: Optional[asyncio.TimerHandle] = None
        # Accounting (exposed by the ``stats`` verb).
        self.txns = 0
        self.batches = 0
        self.durability_rounds = 0
        self.max_batch = 0
        self.flush_reasons: Counter = Counter()

    # ------------------------------------------------------------------

    def _rounds_now(self) -> int:
        """Cumulative durability rounds this partition has performed:
        filesystem fsyncs plus flush+fence trains."""
        stats = self._partition.platform.stats
        return stats.counter("fs.fsyncs") + stats.counter("cache.sfence")

    def enqueue(self) -> "asyncio.Future":
        """Register one logically-committed transaction. The returned
        future resolves when its batch reaches the durable point (or
        fails with :class:`CrashedError` if power fails first)."""
        future = self._loop.create_future()
        self._waiters.append(future)
        self.txns += 1
        if not self._config.enabled:
            self.flush("immediate")
            return future
        clock = self._partition.platform.clock
        if self._batch_open_ns is None:
            self._batch_open_ns = clock.now_ns
        if len(self._waiters) >= self._config.batch_size:
            self.flush("size")
        elif clock.now_ns - self._batch_open_ns >= self._config.max_hold_ns:
            self.flush("hold")
        elif self._timer is None:
            self._timer = self._loop.call_later(
                self._config.max_hold_wall_s, self._timer_fired)
        return future

    def _timer_fired(self) -> None:
        self._timer = None
        if self._waiters:
            self.flush("timer")

    def flush(self, reason: str = "explicit") -> int:
        """Run one durable point now; resolves every waiting commit.
        Returns the batch size. Never raises: a simulated power
        failure during the flush crashes the database (via
        ``on_crash``) and fails the waiters instead."""
        self._cancel_timer()
        waiters, self._waiters = self._waiters, []
        self._batch_open_ns = None
        before = self._rounds_now()
        try:
            self._partition.engine.flush_commits()
        except SimulatedCrash as exc:
            if self._on_crash is not None:
                self._on_crash()
            self._fail(waiters,
                       f"power failed during the durable point ({exc})")
            return len(waiters)
        if waiters:
            self.batches += 1
            self.durability_rounds += self._rounds_now() - before
            self.max_batch = max(self.max_batch, len(waiters))
            self.flush_reasons[reason] += 1
            if self._batch_histogram is not None:
                self._batch_histogram.observe(len(waiters))
            for future in waiters:
                if not future.done():
                    future.set_result(True)
        return len(waiters)

    def fail_pending(self, reason: str) -> int:
        """Fail every waiting commit (power failed before their batch
        became durable). Returns how many were failed."""
        self._cancel_timer()
        waiters, self._waiters = self._waiters, []
        self._batch_open_ns = None
        self._fail(waiters, reason)
        return len(waiters)

    def _fail(self, waiters: List["asyncio.Future"], reason: str) -> None:
        for future in waiters:
            if not future.done():
                future.set_exception(CrashedError(
                    f"commit not durable: {reason}"))

    def _cancel_timer(self) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def close(self) -> None:
        self._cancel_timer()

    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """Accounting snapshot for the ``stats`` verb."""
        txns = self.txns or 1
        return {
            "partition": self._partition.partition_id,
            "enabled": self._config.enabled,
            "txns": self.txns,
            "batches": self.batches,
            "max_batch": self.max_batch,
            "mean_batch": self.txns / self.batches if self.batches else 0.0,
            "durability_rounds": self.durability_rounds,
            "rounds_per_txn": self.durability_rounds / txns,
            "flush_reasons": dict(self.flush_reasons),
            "pending": len(self._waiters),
        }
