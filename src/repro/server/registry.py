"""Stored-procedure registry for the network tier.

Remote clients cannot ship code; they invoke procedures **by name**
(the ``call`` verb), exactly like the paper's testbed executes
registered transactions serially at each partition. A procedure is any
callable taking a :class:`~repro.core.executor.TransactionContext`
first — the same signature :meth:`Database.execute` accepts in
process, so one function serves both tiers::

    registry = ProcedureRegistry()

    @registry.procedure("accounts.deposit")
    def deposit(ctx, account_id, amount):
        row = ctx.get("accounts", account_id)
        ctx.update("accounts", account_id,
                   {"balance": row["balance"] + amount})

    server = DatabaseServer(config, procedures=registry)
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from ..errors import ServerError

__all__ = ["ProcedureRegistry"]


class ProcedureRegistry:
    """Name -> stored procedure mapping with decorator registration."""

    def __init__(self) -> None:
        self._procedures: Dict[str, Callable] = {}

    def procedure(self, name: Optional[str] = None) -> Callable:
        """Decorator: register under ``name`` (default: ``__name__``)."""
        def wrap(fn: Callable) -> Callable:
            self.register(name or fn.__name__, fn)
            return fn
        return wrap

    def register(self, name: str, fn: Callable) -> None:
        if not name:
            raise ServerError("procedure name must be non-empty")
        if name in self._procedures:
            raise ServerError(f"procedure {name!r} already registered")
        self._procedures[name] = fn

    def get(self, name: str) -> Callable:
        try:
            return self._procedures[name]
        except KeyError:
            raise ServerError(
                f"unknown procedure {name!r}; registered: "
                f"{sorted(self._procedures) or 'none'}") from None

    def names(self) -> Iterable[str]:
        return sorted(self._procedures)

    def __contains__(self, name: str) -> bool:
        return name in self._procedures

    def __len__(self) -> int:
        return len(self._procedures)
