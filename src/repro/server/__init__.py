"""The network tier: serve the storage engines over a wire.

The paper's testbed is a single process; this package puts its
coordinator behind a socket so N independent clients can drive the
engines concurrently — which is what makes **group commit** (Sections
3.1-3.2's log-flush batching) observable as a systems effect rather
than a loop counter: concurrent commits coalesce into shared durable
points, and the per-transaction durability cost (WAL fsyncs,
flush+fence trains) drops with the batch size.

- :mod:`repro.server.protocol` — length-prefixed JSON frames.
- :mod:`repro.server.server` — the asyncio server (serial execution
  per partition, admission control, per-session state).
- :mod:`repro.server.groupcommit` — the commit-batching stage.
- :mod:`repro.server.ledger` — exactly-once commit-token memory.
- :mod:`repro.server.registry` — stored procedures callable by name.

See ``docs/server.md`` for the protocol specification.
"""

from .groupcommit import GroupCommitConfig, GroupCommitStage
from .ledger import CommitLedger
from .protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION
from .registry import ProcedureRegistry
from .server import DatabaseServer, ServerConfig, ServerThread

__all__ = [
    "DatabaseServer", "ServerConfig", "ServerThread",
    "GroupCommitConfig", "GroupCommitStage", "CommitLedger",
    "ProcedureRegistry", "PROTOCOL_VERSION", "MAX_FRAME_BYTES",
]
