"""Synchronous Python client for the network tier.

See :mod:`repro.client.client` for the connection object and
``docs/server.md`` for the wire protocol it speaks.
"""

from .client import ClientSession, ReproClient, RETRYABLE_VERBS

__all__ = ["ReproClient", "ClientSession", "RETRYABLE_VERBS"]
