"""Synchronous client for the repro database server.

A :class:`ReproClient` owns one TCP connection and speaks the
length-prefixed JSON protocol of :mod:`repro.server.protocol`. Server-
side errors come back as structured error frames and are re-raised
here as the same exception classes (:mod:`repro.errors`), so remote
code reads like in-process code::

    with ReproClient(host, port) as client:
        client.create_table(schema)
        with client.session("worker-0") as session:
            session.begin()
            session.insert("kv", {"k": 1, "v": "hello"})
            session.commit()        # returns once durable

**Retries.** A transient disconnect (server restart, dropped socket)
is retried transparently — reconnect with backoff, replay the frame —
but only for verbs that are safe to repeat (handshake, ping, stats,
flush, recover, ...). Verbs inside a transaction are *not* replayed:
the server closed the session with the connection, so the client
raises :class:`~repro.errors.ServerDisconnected` and the caller
decides (the closed-loop driver opens a fresh session and carries on).
"""

from __future__ import annotations

import socket
import time
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..core.schema import Schema
from ..errors import ProtocolError, ServerDisconnected
from ..server.protocol import (MAX_FRAME_BYTES, FrameDecoder,
                               encode_frame, error_to_exception, request,
                               schema_from_wire, schema_to_wire,
                               unwire_value, wire_value)

__all__ = ["ReproClient", "ClientSession", "RETRYABLE_VERBS"]

#: Verbs safe to replay on a fresh connection after a transient
#: disconnect: they carry no per-connection session state and are
#: idempotent (or, like ``flush``/``recover``, converge to the same
#: state when repeated).
RETRYABLE_VERBS = frozenset(
    {"hello", "ping", "stats", "procedures", "schema",
     "flush", "checkpoint", "recover"})


class ReproClient:
    """One connection to a :class:`~repro.server.DatabaseServer`."""

    def __init__(self, host: str, port: int, *,
                 timeout: float = 30.0,
                 retries: int = 2,
                 retry_backoff_s: float = 0.05,
                 max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff_s = retry_backoff_s
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._decoder = FrameDecoder(max_frame_bytes=max_frame_bytes)
        self._pending: List[Dict[str, Any]] = []
        self._request_ids = iter(range(1, 2 ** 62))
        self.server_info: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------

    def connect(self) -> Dict[str, Any]:
        """Connect (with retries) and handshake; returns the server's
        ``hello`` banner."""
        last_error: Optional[Exception] = None
        for attempt in range(self.retries + 1):
            try:
                self._open_socket()
                self.server_info = self.call("hello")
                return self.server_info
            except (ConnectionError, OSError, ServerDisconnected) as exc:
                last_error = exc
                self._drop_socket()
                if attempt < self.retries:
                    time.sleep(self.retry_backoff_s * 2 ** attempt)
        raise ServerDisconnected(
            f"could not connect to {self.host}:{self.port}: {last_error}")

    def _open_socket(self) -> None:
        self._drop_socket()
        self._sock = socket.create_connection(
            (self.host, self.port), timeout=self.timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._decoder = FrameDecoder(max_frame_bytes=self.max_frame_bytes)
        self._pending = []

    def _drop_socket(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    @property
    def connected(self) -> bool:
        return self._sock is not None

    def close(self) -> None:
        self._drop_socket()

    def __enter__(self) -> "ReproClient":
        if not self.connected:
            self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The wire
    # ------------------------------------------------------------------

    def call(self, verb: str, **args: Any) -> Any:
        """Send one request and wait for its response; server errors
        re-raise as their :mod:`repro.errors` class."""
        retryable = verb in RETRYABLE_VERBS
        attempts = (self.retries + 1) if retryable else 1
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if self._sock is None:
                # Reconnecting before anything was sent is always safe,
                # even for non-retryable verbs.
                self._open_socket()
            request_id = next(self._request_ids)
            frame = encode_frame(request(request_id, verb, **args),
                                 max_frame_bytes=self.max_frame_bytes)
            try:
                self._sock.sendall(frame)
                payload = self._read_frame()
            except (ConnectionError, OSError) as exc:
                last_error = exc
                self._drop_socket()
                if retryable and attempt < attempts - 1:
                    time.sleep(self.retry_backoff_s * 2 ** attempt)
                    continue
                raise ServerDisconnected(
                    f"connection to {self.host}:{self.port} lost during "
                    f"{verb!r}: {exc}") from None
            return self._unpack(payload, request_id, verb)
        raise ServerDisconnected(
            f"{verb!r} failed after {attempts} attempts: {last_error}")

    def _read_frame(self) -> Dict[str, Any]:
        while True:
            if self._pending:
                return self._pending.pop(0)
            data = self._sock.recv(65536)
            if not data:
                self._decoder.eof()     # raises on a truncated frame
                raise ConnectionError("server closed the connection")
            self._pending.extend(self._decoder.feed(data))

    @staticmethod
    def _unpack(payload: Dict[str, Any], request_id: int,
                verb: str) -> Any:
        if payload.get("ok"):
            if payload.get("id") != request_id:
                raise ProtocolError(
                    f"response id {payload.get('id')!r} does not match "
                    f"request id {request_id}")
            return payload.get("result")
        raise error_to_exception(payload.get("error"))

    # ------------------------------------------------------------------
    # Convenience surface
    # ------------------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.call("ping")

    def create_table(self, schema: Schema) -> None:
        self.call("create_table", schema=schema_to_wire(schema))

    def schema(self, table: str) -> Schema:
        return schema_from_wire(self.call("schema", table=table)["schema"])

    def procedures(self) -> List[str]:
        return list(self.call("procedures")["procedures"])

    def session(self, name: str = "") -> "ClientSession":
        result = self.call("open_session", name=name)
        return ClientSession(self, result["session"], result["name"])

    def flush(self) -> int:
        return self.call("flush")["flushed"]

    def checkpoint(self) -> None:
        self.call("checkpoint")

    def crash(self) -> Dict[str, Any]:
        """Simulated power failure; returns how many logically-
        committed transactions it caught before their durable point."""
        return self.call("crash")

    def recover(self) -> float:
        return self.call("recover")["seconds"]

    def stats(self) -> Dict[str, Any]:
        return self.call("stats")

    def shutdown_server(self) -> None:
        self.call("shutdown")


class ClientSession:
    """A remote session: the same begin/op/commit/abort lifecycle as
    :class:`repro.core.session.Session`, one round trip per verb."""

    def __init__(self, client: ReproClient, session_id: int,
                 name: str) -> None:
        self.client = client
        self.session_id = session_id
        self.name = name
        self._closed = False

    def _call(self, verb: str, **args: Any) -> Any:
        return self.client.call(verb, session=self.session_id, **args)

    # -- lifecycle ------------------------------------------------------

    def begin(self, partition: int = 0) -> int:
        return self._call("begin", partition=partition)["txn"]

    def commit(self) -> int:
        """Commit; returns once the transaction is *durable* (its
        group-commit batch flushed)."""
        return self._call("commit")["txn"]

    def abort(self) -> int:
        return self._call("abort")["txn"]

    def call(self, name: str, *args: Any, partition: int = 0) -> Any:
        """One-shot: run the registered stored procedure ``name`` as a
        single transaction on ``partition``."""
        result = self._call("call", name=name,
                            args=[wire_value(arg) for arg in args],
                            partition=partition)
        return unwire_value(result["result"])

    def close(self) -> None:
        if self._closed or not self.client.connected:
            self._closed = True
            return
        try:
            self._call("close_session")
        except ServerDisconnected:
            pass
        self._closed = True

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- table operations (inside the active transaction) ---------------

    def insert(self, table: str, values: Dict[str, Any]) -> None:
        self._call("insert", table=table, values=wire_value(values))

    def update(self, table: str, key: Any,
               changes: Dict[str, Any]) -> None:
        self._call("update", table=table, key=wire_value(key),
                   changes=wire_value(changes))

    def delete(self, table: str, key: Any) -> None:
        self._call("delete", table=table, key=wire_value(key))

    def get(self, table: str, key: Any) -> Optional[Dict[str, Any]]:
        return unwire_value(
            self._call("get", table=table, key=wire_value(key))["row"])

    def get_secondary(self, table: str, index: str,
                      key: Any) -> List[Any]:
        return unwire_value(self._call(
            "get_secondary", table=table, index=index,
            key=wire_value(key))["keys"])

    def scan(self, table: str, lo: Any = None, hi: Any = None
             ) -> List[Tuple[Any, Dict[str, Any]]]:
        rows = self._call("scan", table=table, lo=wire_value(lo),
                          hi=wire_value(hi))["rows"]
        return [(unwire_value(key), unwire_value(row))
                for key, row in rows]
